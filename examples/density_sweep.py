#!/usr/bin/env python3
"""Reproduce the paper's evaluation figures (6-9) from the command line.

By default this runs the ``quick`` profile (a reduced sweep with the same shape as the
paper's); pass ``--profile paper`` for the full 100-run evaluation (this takes hours) or
``--figure N`` to run a single figure.  The same functionality is installed as the
``repro-figures`` console script.

Run with:  python examples/density_sweep.py --figure 6 --profile quick
"""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
