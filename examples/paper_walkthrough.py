#!/usr/bin/env python3
"""Walk through the paper's worked examples (Figures 1, 2, 4 and 5) with this library.

Each section prints the quantities the paper discusses -- best-path first-hop sets, the
selected ANS, the loop of Figure 4 with and without the identifier guard -- so the output can
be read side by side with the paper.

Run with:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro import BandwidthMetric, FnbpSelector, LocalView, covering_relays
from repro.core import LoopGuardPolicy
from repro.localview import enumerate_best_paths, first_hops_to
from repro.papergraphs import (
    FIGURE2_OWNER,
    figure1_network,
    figure2_network,
    figure4_network,
    figure5_selections,
)
from repro.papergraphs.figure1 import V1, V3, best_two_hop_bandwidth
from repro.papergraphs.figure4 import A, B, D, E
from repro.routing import HopByHopRouter, advertise, optimal_route

BANDWIDTH = BandwidthMetric()


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def figure1() -> None:
    section("Figure 1 -- QOLSR misses the widest path")
    network = figure1_network()
    optimum = optimal_route(network, V1, V3, BANDWIDTH)
    print(f"Widest v1 -> v3 path: {' -> '.join(f'v{n}' for n in optimum.path)} "
          f"(bandwidth {optimum.value:g})")
    print(f"Best path of at most two hops (what QOLSR's heuristic considers): "
          f"bandwidth {best_two_hop_bandwidth(network, V1, V3):g}")
    fnbp_router = HopByHopRouter(network, advertise(network, FnbpSelector(), BANDWIDTH), BANDWIDTH)
    outcome = fnbp_router.link_state_route(V1, V3)
    print(f"Routing over the FNBP advertisements: bandwidth {outcome.value:g} "
          f"via {' -> '.join(f'v{n}' for n in outcome.path)}")


def figure2() -> None:
    section("Figure 2 -- FNBP's running example around node u")
    network = figure2_network()
    view = LocalView.from_network(network, FIGURE2_OWNER)
    fp_v3 = first_hops_to(view, 3, BANDWIDTH)
    print(f"fP_BW(u, v3) = {{{', '.join(f'v{n}' for n in sorted(fp_v3.first_hops))}}} "
          f"with B~W(u, v3) = {fp_v3.best_value:g}")
    print("Optimal paths to v3 inside G_u:",
          [" -> ".join("u" if n == FIGURE2_OWNER else f"v{n}" for n in path)
           for path in enumerate_best_paths(view.graph, FIGURE2_OWNER, 3, BANDWIDTH)])
    fp_v4 = first_hops_to(view, 4, BANDWIDTH)
    print(f"Reaching v4: direct bandwidth {view.direct_link_value(4, BANDWIDTH):g}, "
          f"best path value {fp_v4.best_value:g} starting at v{min(fp_v4.first_hops)}")
    fp_v9 = first_hops_to(view, 9, BANDWIDTH)
    global_v9 = optimal_route(network, FIGURE2_OWNER, 9, BANDWIDTH)
    print(f"Reaching v9: u's best localized value {fp_v9.best_value:g} "
          f"(u cannot see the link v8-v9), global optimum {global_v9.value:g}")
    selection = FnbpSelector().select(view, BANDWIDTH)
    print(f"Final ANS(u) = {{{', '.join(f'v{n}' for n in sorted(selection.selected))}}}")
    print(selection.explain())


def figure4() -> None:
    section("Figure 4 -- the limiting last link and the identifier guard")
    network = figure4_network()
    names = {A: "A", B: "B", D: "D", E: "E"}
    for policy in (LoopGuardPolicy.OFF, LoopGuardPolicy.ADJACENT_TO_TARGET):
        selector = FnbpSelector(loop_guard=policy)
        relays_a = covering_relays(selector.select(LocalView.from_network(network, A), BANDWIDTH))
        relays_b = covering_relays(selector.select(LocalView.from_network(network, B), BANDWIDTH))
        print(f"loop_guard={policy.value}: "
              f"A covers E through {names.get(relays_a[E], relays_a[E])}, "
              f"B covers E through {names.get(relays_b[E], relays_b[E])}")
    print("Without the guard A and B defer to each other and D is advertised by nobody; "
          "with the guard A (the smallest identifier) selects D, restoring E's reachability.")


def figure5() -> None:
    section("Figure 5 -- the three subset selections side by side")
    for name, result in figure5_selections().items():
        print(f"{name:>20}: {sorted(result.selected)} ({len(result.selected)} neighbors)")


def main() -> None:
    figure1()
    figure2()
    figure4()
    figure5()


if __name__ == "__main__":
    main()
