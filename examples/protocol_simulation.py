#!/usr/bin/env python3
"""Run the full discrete-event protocol stack and watch FNBP work inside OLSR.

The script simulates a 30-node network: every node periodically broadcasts HELLOs, learns
its two-hop neighborhood, runs FNBP (plus the RFC 3626 MPR selection used for flooding),
floods TC messages through the MPR backbone, builds its routing table from the advertised
topology and finally forwards a few data packets.  The same scenario is then repeated with
the original OLSR selection so the control-traffic and path-quality differences are visible.

Run with:  python examples/protocol_simulation.py
"""

from __future__ import annotations

from repro import BandwidthMetric, FnbpSelector, OlsrMprSelector
from repro.metrics import UniformWeightAssigner
from repro.routing import optimal_route
from repro.sim import OlsrSimulation
from repro.topology import FieldSpec, FixedCountNetworkGenerator

METRIC = BandwidthMetric()


def build_network():
    assigner = UniformWeightAssigner(metric=METRIC, low=1.0, high=10.0, seed=11)
    generator = FixedCountNetworkGenerator(
        field=FieldSpec(width=350.0, height=350.0, radius=100.0),
        node_count=30,
        seed=11,
        weight_assigners=(assigner,),
        restrict_to_largest_component=True,
    )
    return generator.generate()


def run_scenario(network, selector_factory, label: str):
    print(f"\n=== {label} ===")
    simulation = OlsrSimulation(network, METRIC, selector_factory=selector_factory, seed=3)
    simulation.run_until_converged(30.0)

    print(f"mean advertised-set size : {simulation.average_ans_size():.2f} neighbors/node")
    counts = simulation.control_message_counts()
    print(f"control traffic          : {counts['hellos_sent']} HELLOs, "
          f"{counts['tcs_sent']} TCs sent, {counts['tcs_forwarded']} TC retransmissions")

    nodes = network.nodes()
    pairs = [(nodes[0], nodes[-1]), (nodes[1], nodes[-2]), (nodes[2], nodes[-3])]
    for source, destination in pairs:
        report = simulation.send_data(source, destination)
        optimum = optimal_route(network, source, destination, METRIC)
        status = "delivered" if report.delivered else "LOST"
        print(f"data {source:>3} -> {destination:<3}: {status} over {report.hop_count} hops, "
              f"bandwidth {report.value:.2f} (optimal {optimum.value:.2f})")
    return simulation


def main() -> None:
    network = build_network()
    print("Network:", network.describe())
    run_scenario(network, FnbpSelector, "FNBP (QoS advertised neighbor set)")
    run_scenario(network, OlsrMprSelector, "Original OLSR (MPR set advertised)")


if __name__ == "__main__":
    main()
