#!/usr/bin/env python3
"""The paper's future-work extension: multi-criterion selection (bandwidth, then energy).

The conclusion of the paper announces "multi-criterion metrics, for example minimizing
energy-consumption while providing good bandwidth".  Because every algorithm in this library
is written against the generic Metric protocol, that extension is a one-liner: compose a
:class:`LexicographicMetric` whose primary criterion is bandwidth and whose tie-breaker is
the energy spent along the path, and hand it to FNBP unchanged.

The script compares, for a set of random source/destination pairs, the paths obtained with
plain bandwidth against the composite metric: both achieve the same bottleneck bandwidth, but
the composite one spends less energy.

Run with:  python examples/multi_criterion_energy.py
"""

from __future__ import annotations

from repro import BandwidthMetric, FnbpSelector, LexicographicMetric
from repro.metrics import DistanceProportionalAssigner, EnergyCostMetric, UniformWeightAssigner
from repro.routing import HopByHopRouter, advertise
from repro.topology import FieldSpec, FixedCountNetworkGenerator
from repro.utils.seeding import spawn_rng

BANDWIDTH = BandwidthMetric()
ENERGY = EnergyCostMetric()
COMPOSITE = LexicographicMetric([BANDWIDTH, ENERGY])


def build_network():
    assigners = (
        UniformWeightAssigner(metric=BANDWIDTH, low=1.0, high=10.0, seed=19),
        # Energy grows with link length: a simple physical transmission-cost model.
        DistanceProportionalAssigner(metric=ENERGY, scale=0.02, offset=0.5),
    )
    generator = FixedCountNetworkGenerator(
        field=FieldSpec(width=500.0, height=500.0, radius=100.0),
        node_count=60,
        seed=19,
        weight_assigners=assigners,
        restrict_to_largest_component=True,
    )
    network = generator.generate()
    # Quantize bandwidth into a few discrete rates (as real radios offer): this creates the
    # ties among equally wide paths that the secondary energy criterion then breaks.
    for u, v in network.links():
        raw = network.link_value(u, v, BANDWIDTH)
        network.set_link_weight(u, v, BANDWIDTH.name, float(min(5, max(1, round(raw / 2)))))
    return network


def path_energy(network, path) -> float:
    return sum(network.link_value(u, v, ENERGY) for u, v in zip(path, path[1:]))


def main() -> None:
    network = build_network()
    print("Network:", network.describe())

    routers = {}
    for label, metric in (("bandwidth only", BANDWIDTH), ("bandwidth then energy", COMPOSITE)):
        advertised = advertise(network, FnbpSelector(), metric)
        routers[label] = HopByHopRouter(network, advertised, metric)
        print(f"{label:>22}: mean advertised-set size {advertised.average_set_size():.2f}")

    rng = spawn_rng(19, "pairs")
    nodes = network.nodes()
    print("\npair            |  bandwidth-only path        |  multi-criterion path")
    print("-" * 78)
    total_energy = {label: 0.0 for label in routers}
    for _ in range(6):
        source, destination = rng.sample(nodes, 2)
        row = [f"{source:>4} -> {destination:<4}"]
        for label, router in routers.items():
            outcome = router.link_state_route(source, destination)
            bottleneck = outcome.value if not isinstance(outcome.value, tuple) else outcome.value[0]
            energy = path_energy(network, outcome.path)
            total_energy[label] += energy
            row.append(f"bw {bottleneck:5.2f}, energy {energy:6.2f}")
        print("  | ".join(row))
    print("-" * 78)
    for label, energy in total_energy.items():
        print(f"total energy with {label:>22}: {energy:.2f}")


if __name__ == "__main__":
    main()
