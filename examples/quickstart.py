#!/usr/bin/env python3
"""Quickstart: run FNBP at one node of a small QoS-weighted network and inspect the result.

The script builds a small random wireless network (unit-disk graph with uniform random
bandwidth and delay weights, exactly the paper's model), picks one node, shows its local
two-hop view, runs FNBP for both metrics and compares the advertised set with the classical
RFC 3626 MPR set.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BandwidthMetric,
    DelayMetric,
    FnbpSelector,
    LocalView,
    OlsrMprSelector,
    covering_relays,
)
from repro.metrics import UniformWeightAssigner
from repro.topology import FieldSpec, FixedCountNetworkGenerator


def build_demo_network():
    """A reproducible 40-node network in a 400 x 400 field with both metrics weighted."""
    bandwidth, delay = BandwidthMetric(), DelayMetric()
    assigners = (
        UniformWeightAssigner(metric=bandwidth, low=1.0, high=10.0, seed=7),
        UniformWeightAssigner(metric=delay, low=1.0, high=10.0, seed=8),
    )
    generator = FixedCountNetworkGenerator(
        field=FieldSpec(width=400.0, height=400.0, radius=100.0),
        node_count=40,
        seed=7,
        weight_assigners=assigners,
        restrict_to_largest_component=True,
    )
    return generator.generate()


def main() -> None:
    network = build_demo_network()
    print("Network:", network.describe())

    owner = network.nodes()[len(network) // 2]
    view = LocalView.from_network(network, owner)
    print(f"\nLocal view of node {owner}: "
          f"{len(view.one_hop)} one-hop and {len(view.two_hop)} two-hop neighbors")

    for metric in (BandwidthMetric(), DelayMetric()):
        selection = FnbpSelector().select(view, metric)
        mpr = OlsrMprSelector().select(view, metric)
        print(f"\n--- {metric.name} ---")
        print(f"RFC 3626 MPR set  ({len(mpr.selected)} nodes): {sorted(mpr.selected)}")
        print(f"FNBP advertised set ({len(selection.selected)} nodes): {sorted(selection.selected)}")
        relays = covering_relays(selection)
        rerouted = {target: relay for target, relay in relays.items() if relay != target and target in view.one_hop}
        if rerouted:
            print("One-hop neighbors better reached through a relay than directly:")
            for target, relay in sorted(rerouted.items()):
                direct = view.direct_link_value(target, metric)
                print(f"  {owner} -> {target}: direct {metric.name}={direct:.2f}, relayed via {relay}")
        print("\nDecision trace:")
        print(selection.explain())


if __name__ == "__main__":
    main()
