"""Generate ``docs/spec.md`` -- the ExperimentSpec schema reference -- from the dataclass.

The reference page is *generated, not written*: every field row (name, JSON type, default,
semantics) is derived from ``repro.experiments.spec.ExperimentSpec`` itself, the committed
example specs are embedded after being loaded through ``ExperimentSpec.load`` (so the page
can never show an example the code rejects), and the semantics prose lives in the
``SEMANTICS`` table below.  A field added to the dataclass without a ``SEMANTICS`` entry --
or a stale committed page -- fails the build::

    python docs/gen_spec_reference.py           # rewrite docs/spec.md
    python docs/gen_spec_reference.py --check   # exit 1 if docs/spec.md is stale (CI/tests)
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import MISSING, fields
from pathlib import Path

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.spec import ExperimentSpec  # noqa: E402
from repro.registry import ALL_REGISTRIES  # noqa: E402

OUTPUT = DOCS_DIR / "spec.md"

#: Per-field semantics, the only hand-maintained part of the page.  Every dataclass field
#: MUST have an entry here -- the generator refuses to run otherwise, which is the drift
#: guard that keeps this page honest when the spec grows a field.
SEMANTICS = {
    "experiment_id": (
        "Identifier used in progress lines, sink events and result keys. Required, "
        "non-empty."
    ),
    "title": "Human-readable title of the result table. Required.",
    "measure": (
        "What each trial measures and how trials aggregate — a `MEASURES` registry name. "
        "Static built-ins: `ans-size`, `overhead`; time-axis built-ins: `ans-churn`, "
        "`tc-overhead`, `route-stability`, plus the protocol-simulator measures "
        "`convergence-time`, `advertised-staleness`, `route-flaps` (all time-axis "
        "measures require `timesteps >= 1`)."
    ),
    "metric": (
        "QoS metric of the sweep — a `METRICS` registry name. The metric's name is also "
        "the edge attribute link weights are drawn into."
    ),
    "selectors": (
        "Selection algorithms to compare, in legend order — `SELECTORS` registry names. "
        "Default: the paper's legend (`qolsr-mpr2`, `topology-filtering`, `fnbp`)."
    ),
    "topology": (
        "Topology model trials are generated from — a `TOPOLOGY_MODELS` registry name. "
        "How `densities` is interpreted is the model's business: mean degree for "
        "`poisson`, node count for `fixed-count` and the mobility models, grid side for "
        "`grid`. Dynamic sweeps need a model exposing `dynamic(run_index, step_interval)` "
        "(`rwp`, `gauss-markov`, `churn`)."
    ),
    "densities": "The swept x axis, in sweep order. Must be non-empty to run.",
    "runs": "Independent topologies per density (the paper uses 100).",
    "pairs_per_run": (
        "Random source/destination pairs per topology in routing measures (`overhead`, "
        "`route-stability`)."
    ),
    "node_sample": (
        "In `ans-size`, how many nodes per topology to average over; `null` = every node "
        "(the paper's setting)."
    ),
    "field": (
        "Deployment area and radio range, nested as "
        '`{"width": …, "height": …, "radius": …}`. Default: the paper\'s 1000 x 1000 '
        "field at radius 100."
    ),
    "weight_low": "Lower end of the uniform interval link weights are drawn from.",
    "weight_high": "Upper end of the uniform interval link weights are drawn from.",
    "seed": (
        "Root seed. Every topology, weight, sampling and trajectory draw derives from it "
        "deterministically; equal specs give bit-identical results, serial or parallel."
    ),
    "timesteps": (
        "Number of timesteps each trial's topology is advanced through. `0` = static "
        "sweep (every paper figure). Time-axis measures require `>= 1` and reject the "
        "spec before any trial runs (`Measure.validate_spec`)."
    ),
    "step_interval": (
        "Simulated time units per timestep (mobility displacement per step scales with "
        "it). Must be `> 0`; only meaningful with `timesteps >= 1`."
    ),
    "loss_rate": (
        "Per-transmission control-packet loss probability of the protocol simulator's "
        "lossy channel (`0 <= loss_rate < 1`). Only the protocol measures "
        "(`convergence-time`, `advertised-staleness`, `route-flaps`) consume it; "
        "analytic measures ignore it."
    ),
    "hello_interval": (
        "HELLO emission period of the protocol simulator, in simulated time units. "
        "Neighbor entries live three periods (RFC 3626 shape). Must be `> 0`; only the "
        "protocol measures consume it."
    ),
    "tc_interval": (
        "TC emission period of the protocol simulator, in simulated time units. "
        "Topology entries live three periods (RFC 3626 shape). Must be `> 0`; only the "
        "protocol measures consume it."
    ),
}

#: JSON types as they appear on the wire, keyed by the dataclass annotation string.
JSON_TYPES = {
    "str": "string",
    "int": "integer",
    "float": "number",
    "Optional[int]": "integer or null",
    "Tuple[str, ...]": "list of strings",
    "Tuple[float, ...]": "list of numbers",
    "FieldSpec": "object",
}


def _default_cell(spec_field) -> str:
    if spec_field.default is not MISSING:
        default = spec_field.default
    elif spec_field.default_factory is not MISSING:  # type: ignore[misc]
        default = spec_field.default_factory()  # type: ignore[misc]
    else:
        return "*required*"
    if hasattr(default, "width"):  # the nested FieldSpec
        return (
            f'`{{"width": {default.width:g}, "height": {default.height:g}, '
            f'"radius": {default.radius:g}}}`'
        )
    if isinstance(default, tuple):
        return "`[" + ", ".join(f'"{entry}"' if isinstance(entry, str) else f"{entry!r}" for entry in default) + "]`"
    if default is None:
        return "`null`"
    return f"`{default!r}`"


def generate() -> str:
    rows = []
    for spec_field in fields(ExperimentSpec):
        if spec_field.name not in SEMANTICS:
            raise SystemExit(
                f"ExperimentSpec.{spec_field.name} has no SEMANTICS entry in "
                f"docs/gen_spec_reference.py -- document it and regenerate"
            )
        annotation = str(spec_field.type)
        json_type = JSON_TYPES.get(annotation, annotation)
        rows.append(
            f"| `{spec_field.name}` | {json_type} | {_default_cell(spec_field)} | "
            f"{SEMANTICS[spec_field.name]} |"
        )
    documented = set(SEMANTICS) - {spec_field.name for spec_field in fields(ExperimentSpec)}
    if documented:
        raise SystemExit(f"SEMANTICS documents non-existent spec field(s): {sorted(documented)}")

    example_static = (REPO_ROOT / "examples/specs/custom_delay_sweep.json").read_text().strip()
    example_dynamic = (REPO_ROOT / "examples/specs/mobility_churn_sweep.json").read_text().strip()
    example_protocol = (
        REPO_ROOT / "examples/specs/protocol_convergence_sweep.json"
    ).read_text().strip()
    ExperimentSpec.from_json(example_static)  # the page may not show a spec the code rejects
    ExperimentSpec.from_json(example_dynamic)
    ExperimentSpec.from_json(example_protocol)

    spec_registries = ("measures", "metrics", "selectors", "topology-models")
    registry_lines = "\n".join(
        f"* `{section}` — {', '.join(f'`{name}`' for name in ALL_REGISTRIES[section].names())}"
        for section in spec_registries
    )

    return f"""<!-- GENERATED by docs/gen_spec_reference.py -- edit that script, not this file. -->

# ExperimentSpec reference

An `ExperimentSpec` (`src/repro/experiments/spec.py`) is a frozen dataclass that fully
describes one sweep as plain data. Every ingredient is referred to by registry name, so
a spec round-trips JSON losslessly and the generic engine
(`repro.experiments.engine.run_experiment`) can execute any spec without
experiment-specific code:

```python
from repro.experiments.engine import run_experiment
from repro.experiments.spec import ExperimentSpec

spec = ExperimentSpec.load("examples/specs/custom_delay_sweep.json")
result = run_experiment(spec)
```

or, from the shell, `repro-sweep --spec my_sweep.json` (any spec field can also be
overridden per flag — `repro-sweep --preset fig8 --densities 12,18 --runs 10`).

Numeric constraints are validated at construction; registry names are validated by
`validate_names()` (called by `from_dict` / `from_json` and the engine), so a typo fails
fast with an error naming the registry and its known entries. Unknown JSON keys are
rejected by name.

## Fields

| Field | JSON type | Default | Semantics |
|-------|-----------|---------|-----------|
{chr(10).join(rows)}

## Registry names a spec can use

As of generation, the registries know (run `repro-sweep --list` for the live set):

{registry_lines}

## Example: a static sweep

The committed [custom_delay_sweep.json](../examples/specs/custom_delay_sweep.json)
(CI smoke-runs it):

```json
{example_static}
```

## Example: a dynamic sweep

A dynamic sweep sets `timesteps >= 1`, a dynamic `topology` model and a time-axis
`measure` — the committed
[mobility_churn_sweep.json](../examples/specs/mobility_churn_sweep.json):

```json
{example_dynamic}
```

## Example: a protocol-simulator sweep

The protocol measures (`convergence-time`, `advertised-staleness`, `route-flaps`) run an
event-driven OLSR simulator per trial — real jittered HELLO/TC traffic over a seeded
lossy channel — and consume `loss_rate`, `hello_interval` and `tc_interval`. The
committed
[protocol_convergence_sweep.json](../examples/specs/protocol_convergence_sweep.json)
(CI smoke-runs it; see [Protocol simulator](protocol.md)):

```json
{example_protocol}
```

All examples are loaded through `ExperimentSpec.from_json` at generation time, so this
page cannot show a spec the code would reject. See
[Extending the harness](extending.md) for registering new names, and
[Caches & invalidation](caches.md) for what the engine reuses while executing a spec.
"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when docs/spec.md is stale instead of rewriting it",
    )
    args = parser.parse_args(argv)
    content = generate()
    if args.check:
        if not OUTPUT.exists() or OUTPUT.read_text(encoding="utf-8") != content:
            print(
                "docs/spec.md is stale: run `python docs/gen_spec_reference.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/spec.md is up to date")
        return 0
    OUTPUT.write_text(content, encoding="utf-8")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
