"""Offline documentation builder: docs/*.md -> static HTML, warnings-as-errors.

The docs tree is laid out MkDocs-style (pages under ``docs/``, navigation in the root
``mkdocs.yml``), so environments that have MkDocs installed can use it directly -- but the
repository must be buildable *offline with the standard library only* (the CI image and the
development containers deliberately carry no documentation toolchain).  This script is that
builder: a small, dependency-free Markdown subset renderer plus the checks that keep the
suite from rotting::

    python docs/build.py --strict --site-dir site     # build, any warning = build failure
    python docs/build.py --check-only --strict        # link/nav/fence checks, no output

Checks (all fatal under ``--strict``):

* every page listed in the ``mkdocs.yml`` nav exists, and every ``docs/*.md`` page is
  reachable from the nav (no orphans);
* every internal link resolves: ``page.md`` targets must be known pages, ``#anchor``
  fragments must match a real heading slug of the target page, and relative file links
  (``../examples/...``) must exist in the repository;
* external links must carry an explicit ``http(s)://`` or ``mailto:`` scheme;
* code fences must be balanced.

The renderer covers the subset the suite uses: ATX headings (anchored with GitHub-style
slugs), fenced code blocks, pipe tables, nested unordered/ordered lists, blockquotes,
paragraphs, and inline code/bold/italics/links.  Unknown constructs degrade to plain
paragraphs rather than being silently dropped.
"""

from __future__ import annotations

import argparse
import html
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

_LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_NAV_ENTRY_RE = re.compile(r"^\s*-\s*(?:\"([^\"]+)\"|'([^']+)'|([^:]+))\s*:\s*(\S+\.md)\s*$")

PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title} — {site_name}</title>
<style>
body {{ margin: 0; font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       color: #1d2430; line-height: 1.55; }}
.layout {{ display: flex; min-height: 100vh; }}
nav {{ width: 230px; flex-shrink: 0; background: #f4f6f8; border-right: 1px solid #dde3ea;
      padding: 1.2rem 1rem; }}
nav .site {{ font-weight: 700; margin-bottom: 1rem; display: block; color: #1d2430;
            text-decoration: none; }}
nav a {{ display: block; padding: 0.25rem 0.4rem; color: #33415c; text-decoration: none;
        border-radius: 4px; }}
nav a:hover {{ background: #e6ebf1; }}
nav a.current {{ background: #dbe4f0; font-weight: 600; }}
main {{ max-width: 46rem; padding: 1.5rem 2.5rem 4rem; }}
h1, h2, h3, h4 {{ line-height: 1.25; }}
h2 {{ border-bottom: 1px solid #e3e8ee; padding-bottom: 0.25rem; margin-top: 2rem; }}
code {{ background: #f0f2f5; padding: 0.1rem 0.3rem; border-radius: 3px;
       font-size: 0.92em; }}
pre {{ background: #0f172a; color: #e2e8f0; padding: 0.9rem 1.1rem; border-radius: 6px;
      overflow-x: auto; }}
pre code {{ background: none; padding: 0; color: inherit; }}
table {{ border-collapse: collapse; margin: 1rem 0; }}
th, td {{ border: 1px solid #d5dce4; padding: 0.35rem 0.7rem; text-align: left;
         vertical-align: top; }}
th {{ background: #f4f6f8; }}
blockquote {{ border-left: 4px solid #c6d2e0; margin: 1rem 0; padding: 0.1rem 1rem;
             color: #46536a; background: #f8fafc; }}
a {{ color: #175fba; }}
</style>
</head>
<body>
<div class="layout">
<nav>
<a class="site" href="index.html">{site_name}</a>
{nav}
</nav>
<main>
{content}
</main>
</div>
</body>
</html>
"""


def github_slug(text: str, taken: Optional[Dict[str, int]] = None) -> str:
    """GitHub-style anchor slug of a heading (lowercase, punctuation stripped)."""
    slug = re.sub(r"[^\w\- ]", "", text.strip().lower()).replace(" ", "-")
    if taken is None:
        return slug
    count = taken.get(slug, 0)
    taken[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def _inline(text: str) -> str:
    """Render inline Markdown (code spans, links, bold, italics) to HTML."""
    placeholders: List[str] = []

    def protect(fragment: str) -> str:
        placeholders.append(fragment)
        return f"\x00{len(placeholders) - 1}\x00"

    text = html.escape(text, quote=False)
    text = re.sub(
        r"`([^`]+)`", lambda m: protect(f"<code>{m.group(1)}</code>"), text
    )

    def link(match: re.Match) -> str:
        label, target = match.group(1), match.group(2)
        if target.endswith(".md") or ".md#" in target:
            target = target.replace(".md", ".html", 1)
        return protect(f'<a href="{html.escape(target, quote=True)}">{label}</a>')

    text = _LINK_RE.sub(link, text)
    text = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", text)
    text = re.sub(r"(?<![\w*])\*([^*\s][^*]*)\*(?![\w*])", r"<em>\1</em>", text)
    return re.sub(r"\x00(\d+)\x00", lambda m: placeholders[int(m.group(1))], text)


class Page:
    """One parsed Markdown page: title, heading slugs, links, rendered body."""

    def __init__(self, path: Path, markdown: str) -> None:
        self.path = path
        self.markdown = markdown
        self.slugs: List[str] = []
        self.title = path.stem
        self.html = self._render()

    # ------------------------------------------------------------------ rendering

    def _render(self) -> str:
        out: List[str] = []
        lines = self.markdown.splitlines()
        taken: Dict[str, int] = {}
        i = 0
        saw_h1 = False
        while i < len(lines):
            line = lines[i]
            stripped = line.strip()
            if stripped.startswith("```"):
                language = stripped[3:].strip().split()[0] if stripped[3:].strip() else ""
                body: List[str] = []
                i += 1
                while i < len(lines) and not lines[i].strip().startswith("```"):
                    body.append(lines[i])
                    i += 1
                i += 1  # closing fence
                class_attr = f' class="language-{html.escape(language)}"' if language else ""
                out.append(f"<pre><code{class_attr}>{html.escape(chr(10).join(body))}</code></pre>")
                continue
            heading = _HEADING_RE.match(line)
            if heading:
                level = len(heading.group(1))
                text = heading.group(2)
                slug = github_slug(text, taken)
                self.slugs.append(slug)
                if level == 1 and not saw_h1:
                    self.title = text
                    saw_h1 = True
                out.append(f'<h{level} id="{slug}">{_inline(text)}</h{level}>')
                i += 1
                continue
            if stripped.startswith("|") and i + 1 < len(lines) and set(
                lines[i + 1].replace("|", "").replace(":", "").strip()
            ) <= {"-"} and "-" in lines[i + 1]:
                i = self._render_table(lines, i, out)
                continue
            if re.match(r"^\s*([-*]|\d+\.)\s+", line):
                i = self._render_list(lines, i, out)
                continue
            if stripped.startswith(">"):
                quoted: List[str] = []
                while i < len(lines) and lines[i].strip().startswith(">"):
                    quoted.append(lines[i].strip()[1:].strip())
                    i += 1
                out.append(f"<blockquote><p>{_inline(' '.join(quoted))}</p></blockquote>")
                continue
            if not stripped:
                i += 1
                continue
            paragraph: List[str] = []
            while i < len(lines) and lines[i].strip() and not _is_block_start(lines[i]):
                paragraph.append(lines[i].strip())
                i += 1
            if paragraph:
                out.append(f"<p>{_inline(' '.join(paragraph))}</p>")
            else:  # a block construct directly after a paragraph boundary
                i += 1
        return "\n".join(out)

    def _render_table(self, lines: List[str], i: int, out: List[str]) -> int:
        def cells(row: str) -> List[str]:
            return [cell.strip() for cell in row.strip().strip("|").split("|")]

        header = cells(lines[i])
        i += 2  # skip the separator row
        out.append("<table>")
        out.append("<tr>" + "".join(f"<th>{_inline(cell)}</th>" for cell in header) + "</tr>")
        while i < len(lines) and lines[i].strip().startswith("|"):
            out.append(
                "<tr>" + "".join(f"<td>{_inline(cell)}</td>" for cell in cells(lines[i])) + "</tr>"
            )
            i += 1
        out.append("</table>")
        return i

    def _render_list(self, lines: List[str], i: int, out: List[str]) -> int:
        item_re = re.compile(r"^(\s*)([-*]|\d+\.)\s+(.*)$")
        first = item_re.match(lines[i])
        ordered = first.group(2) not in "-*"
        base_indent = len(first.group(1))
        tag = "ol" if ordered else "ul"
        out.append(f"<{tag}>")
        open_item = False
        while i < len(lines):
            match = item_re.match(lines[i])
            if match and len(match.group(1)) == base_indent:
                if open_item:
                    out.append("</li>")
                out.append(f"<li>{_inline(match.group(3))}")
                open_item = True
                i += 1
            elif match and len(match.group(1)) > base_indent:
                i = self._render_list(lines, i, out)
            elif lines[i].strip() and lines[i].startswith(" " * (base_indent + 2)):
                out.append(f" {_inline(lines[i].strip())}")
                i += 1
            else:
                break
        if open_item:
            out.append("</li>")
        out.append(f"</{tag}>")
        return i


def _is_block_start(line: str) -> bool:
    stripped = line.strip()
    return bool(
        stripped.startswith(("```", "#", ">", "|"))
        or re.match(r"^\s*([-*]|\d+\.)\s+", line)
    )


# ---------------------------------------------------------------------- nav + checks


def parse_nav(mkdocs_yml: Path) -> Tuple[str, List[Tuple[str, str]]]:
    """The ``(site_name, [(title, page.md), ...])`` navigation of ``mkdocs.yml``.

    Parses the deliberately simple subset the committed file uses (flat ``- Title: page``
    entries under ``nav:``), so the one navigation definition serves both this builder and
    a real MkDocs install.
    """
    site_name = "documentation"
    entries: List[Tuple[str, str]] = []
    in_nav = False
    for line in mkdocs_yml.read_text(encoding="utf-8").splitlines():
        if line.startswith("site_name:"):
            site_name = line.split(":", 1)[1].strip().strip("\"'")
        if line.strip() == "nav:":
            in_nav = True
            continue
        if in_nav:
            match = _NAV_ENTRY_RE.match(line)
            if match:
                title = next(group for group in match.groups()[:3] if group)
                entries.append((title.strip(), match.group(4)))
            elif line.strip() and not line.startswith(" "):
                in_nav = False
    return site_name, entries


def check_links(pages: Dict[str, Page], docs_dir: Path) -> List[str]:
    """Every problem with every link of every page (empty = the suite is sound)."""
    problems: List[str] = []
    for name, page in pages.items():
        fenced = re.sub(r"```.*?```", "", page.markdown, flags=re.DOTALL)
        for match in _LINK_RE.finditer(fenced):
            target = match.group(2)
            where = f"{name}: link '{match.group(0)}'"
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if "://" in target:
                problems.append(f"{where}: unknown URL scheme")
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-page anchor
                if anchor not in page.slugs:
                    problems.append(f"{where}: no heading with anchor #{anchor} on this page")
                continue
            if path_part.endswith(".md"):
                if path_part not in pages:
                    problems.append(f"{where}: page {path_part} does not exist")
                elif anchor and anchor not in pages[path_part].slugs:
                    problems.append(f"{where}: {path_part} has no anchor #{anchor}")
                continue
            if not (docs_dir / path_part).resolve().exists():
                problems.append(f"{where}: file {path_part} does not exist")
    return problems


def check_fences(pages: Dict[str, Page]) -> List[str]:
    problems = []
    for name, page in pages.items():
        fences = sum(
            1 for line in page.markdown.splitlines() if line.strip().startswith("```")
        )
        if fences % 2:
            problems.append(f"{name}: unbalanced code fences ({fences} markers)")
    return problems


def build(
    docs_dir: Path = DOCS_DIR,
    site_dir: Optional[Path] = None,
    mkdocs_yml: Path = MKDOCS_YML,
) -> List[str]:
    """Run every check, render the site when ``site_dir`` is given, return the warnings."""
    site_name, nav = parse_nav(mkdocs_yml)
    warnings: List[str] = []
    pages: Dict[str, Page] = {}
    for path in sorted(docs_dir.glob("*.md")):
        pages[path.name] = Page(path, path.read_text(encoding="utf-8"))

    nav_pages = [target for _, target in nav]
    for target in nav_pages:
        if target not in pages:
            warnings.append(f"mkdocs.yml: nav entry {target} has no docs/{target}")
    for name in pages:
        if name not in nav_pages:
            warnings.append(f"{name}: page is not reachable from the mkdocs.yml nav")
    if "index.md" not in pages:
        warnings.append("docs/index.md is missing")

    warnings.extend(check_fences(pages))
    warnings.extend(check_links(pages, docs_dir))

    if site_dir is not None and not warnings:
        site_dir.mkdir(parents=True, exist_ok=True)
        for title, target in nav:
            if target not in pages:
                continue
            page = pages[target]
            nav_html = "\n".join(
                '<a href="{href}"{cls}>{title}</a>'.format(
                    href=entry.replace(".md", ".html"),
                    cls=' class="current"' if entry == target else "",
                    title=html.escape(entry_title),
                )
                for entry_title, entry in nav
            )
            (site_dir / target.replace(".md", ".html")).write_text(
                PAGE_TEMPLATE.format(
                    title=html.escape(page.title),
                    site_name=html.escape(site_name),
                    nav=nav_html,
                    content=page.html,
                ),
                encoding="utf-8",
            )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--site-dir", default=None, help="output directory for the HTML site")
    parser.add_argument(
        "--strict", action="store_true", help="treat every warning as a build failure"
    )
    parser.add_argument(
        "--check-only", action="store_true", help="run the checks without writing HTML"
    )
    args = parser.parse_args(argv)

    site_dir = None if args.check_only else Path(args.site_dir or REPO_ROOT / "site")
    warnings = build(site_dir=site_dir)
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    if warnings and args.strict:
        print(f"docs build failed: {len(warnings)} warning(s) with --strict", file=sys.stderr)
        return 1
    if site_dir is not None and not warnings:
        print(f"built {len(list(site_dir.glob('*.html')))} page(s) into {site_dir}")
    elif not warnings:
        print("docs checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
