"""Benchmark regenerating the paper's Figure 7: advertised-set size vs density (delay).

Reproduction status (see EXPERIMENTS.md): FNBP stays below the topology-filtering baseline,
but -- unlike the published figure -- the FNBP set for an *additive* metric grows with
density and overtakes the QOLSR MPR set, because shortest-delay paths to different targets
rarely share their first hop.  The assertions below encode what actually reproduces.
"""

from __future__ import annotations

from repro.experiments import figure7


def test_fig7_ans_size_delay(benchmark, delay_sweep_config):
    result = benchmark.pedantic(lambda: figure7(delay_sweep_config), rounds=1, iterations=1)
    print()
    print(result.to_table())

    densities = result.densities()
    fnbp = result.series["fnbp"]
    filtering = result.series["topology-filtering"]
    qolsr = result.series["qolsr-mpr2"]

    for density in densities:
        # Reproduced part of the ordering: FNBP below topology filtering.
        assert fnbp.mean_at(density) <= filtering.mean_at(density)
        # All sets stay far below the neighborhood size (they are genuine reductions).
        assert fnbp.mean_at(density) < density
        assert qolsr.mean_at(density) < density
