"""Benchmark regenerating the paper's Figure 8: bandwidth overhead vs the centralized optimum.

Expected shape: FNBP and topology filtering sit close together with a small overhead (the
paper reports under 2 % for FNBP at moderate densities) and original QOLSR is the worst of
the three.
"""

from __future__ import annotations

import math

from repro.experiments import figure8


def test_fig8_bandwidth_overhead(benchmark, bandwidth_sweep_config):
    result = benchmark.pedantic(lambda: figure8(bandwidth_sweep_config), rounds=1, iterations=1)
    print()
    print(result.to_table())

    densities = result.densities()
    fnbp = result.series["fnbp"]
    qolsr = result.series["qolsr-mpr2"]
    filtering = result.series["topology-filtering"]

    for density in densities:
        for series in (fnbp, qolsr, filtering):
            value = series.mean_at(density)
            if not math.isnan(value):
                assert -1e-9 <= value <= 1.0

    fnbp_mean = sum(v for v in fnbp.means() if not math.isnan(v)) / len(densities)
    qolsr_mean = sum(v for v in qolsr.means() if not math.isnan(v)) / len(densities)
    filtering_mean = sum(v for v in filtering.means() if not math.isnan(v)) / len(densities)

    # The QoS-aware advertised sets lose little bandwidth; original QOLSR loses the most.
    assert fnbp_mean <= qolsr_mean + 1e-9
    assert filtering_mean <= qolsr_mean + 1e-9
    assert fnbp_mean <= 0.10

    # Every routing attempt over the FNBP advertisements succeeded.
    for point in fnbp.points:
        assert point.extra["delivery_ratio"] == 1.0
