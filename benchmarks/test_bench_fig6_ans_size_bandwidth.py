"""Benchmark regenerating the paper's Figure 6: advertised-set size vs density (bandwidth).

Expected shape (checked by the assertions): FNBP advertises the fewest neighbors of the
three protocols and its set barely grows with density, while the QOLSR MPR set keeps
growing.
"""

from __future__ import annotations

from repro.experiments import figure6


def test_fig6_ans_size_bandwidth(benchmark, bandwidth_sweep_config):
    result = benchmark.pedantic(
        lambda: figure6(bandwidth_sweep_config), rounds=1, iterations=1
    )
    print()
    print(result.to_table())

    densities = result.densities()
    fnbp = result.series["fnbp"]
    qolsr = result.series["qolsr-mpr2"]
    filtering = result.series["topology-filtering"]

    # FNBP has the smallest advertised set at every density (the paper's headline).
    for density in densities:
        assert fnbp.mean_at(density) <= qolsr.mean_at(density)
        assert fnbp.mean_at(density) <= filtering.mean_at(density)

    # FNBP stays roughly flat while QOLSR grows with density.
    if len(densities) >= 2:
        fnbp_growth = fnbp.mean_at(densities[-1]) - fnbp.mean_at(densities[0])
        qolsr_growth = qolsr.mean_at(densities[-1]) - qolsr.mean_at(densities[0])
        assert fnbp_growth <= qolsr_growth
        assert fnbp_growth <= 2.0
