"""Shared configuration for the benchmark suite.

Every figure benchmark runs the same harness the paper's evaluation uses, on a reduced
profile by default so the whole suite finishes in a few minutes.

Profiles (``REPRO_BENCH_PROFILE`` environment variable):

* ``quick`` (default) -- trimmed densities, 1 run per density, sampled nodes; keeps the
  paper's x-axis shape while staying laptop-friendly.
* ``paper`` -- the full evaluation: 100 runs per density at the paper's densities (up to
  ~1100 nodes of degree 35).  This is the configuration recorded in ``EXPERIMENTS.md``'s
  "full profile" runs.
* ``smoke`` -- a seconds-long sanity pass (one tiny density, one run).

Parallelism (``REPRO_WORKERS`` environment variable): the sweep harness fans the
independent trials of each density out over that many worker processes (``0`` = one per
CPU; unset = serial).  Each trial is derived deterministically from its run index and the
results are aggregated in run order, so sweep outputs are bit-identical whatever the worker
count -- ``REPRO_WORKERS`` only changes the wall clock, which is what makes the ``paper``
profile routine on a multi-core machine.

``record.py`` (run directly, not collected by pytest) times the selection micro-benchmark
and writes ``BENCH_selection.json`` at the repository root so the perf trajectory stays
machine-readable across PRs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SweepConfig, config_for_profile
from repro.topology import FieldSpec

#: Densities used by the default (quick) benchmark profile, chosen to keep the paper's
#: x-axis shape (low / medium / high density) while staying laptop-friendly.
QUICK_BANDWIDTH_DENSITIES = (10.0, 15.0, 20.0)
QUICK_DELAY_DENSITIES = (5.0, 10.0, 15.0)


def bench_profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "quick")


def bench_config(metric_name: str) -> SweepConfig:
    """The sweep configuration the figure benchmarks run under the active profile."""
    profile = bench_profile()
    if profile == "paper":
        return config_for_profile("paper", metric_name)
    if profile == "smoke":
        return config_for_profile("smoke", metric_name)
    densities = QUICK_BANDWIDTH_DENSITIES if metric_name == "bandwidth" else QUICK_DELAY_DENSITIES
    return SweepConfig(
        densities=densities,
        runs=1,
        pairs_per_run=4,
        node_sample=60,
        field=FieldSpec(width=1000.0, height=1000.0, radius=100.0),
        seed=42,
    )


@pytest.fixture
def bandwidth_sweep_config() -> SweepConfig:
    return bench_config("bandwidth")


@pytest.fixture
def delay_sweep_config() -> SweepConfig:
    return bench_config("delay")
