"""Benchmark regenerating the paper's Figure 9: delay overhead vs the centralized optimum.

Expected shape: as for Figure 8 -- FNBP and topology filtering close together and small,
original QOLSR clearly worse.
"""

from __future__ import annotations

import math

from repro.experiments import figure9


def test_fig9_delay_overhead(benchmark, delay_sweep_config):
    result = benchmark.pedantic(lambda: figure9(delay_sweep_config), rounds=1, iterations=1)
    print()
    print(result.to_table())

    densities = result.densities()
    fnbp = result.series["fnbp"]
    qolsr = result.series["qolsr-mpr2"]

    for density in densities:
        for name, series in result.series.items():
            value = series.mean_at(density)
            if not math.isnan(value):
                assert value >= -1e-9, f"{name} reported a negative delay overhead"

    fnbp_mean = sum(v for v in fnbp.means() if not math.isnan(v)) / len(densities)
    qolsr_mean = sum(v for v in qolsr.means() if not math.isnan(v)) / len(densities)
    assert fnbp_mean <= qolsr_mean + 1e-9
    assert fnbp_mean <= 0.15

    for point in fnbp.points:
        assert point.extra["delivery_ratio"] == 1.0
