"""Micro-benchmarks: per-node selection cost of FNBP and each baseline on one dense view.

These are the inner loops of every density sweep, so their cost is what determines whether
the paper profile (100 runs, degree up to 35, about 1100 nodes) is feasible.
"""

from __future__ import annotations

import pytest

from repro.core import make_selector
from repro.localview import LocalView, all_first_hops
from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner
from repro.topology import FieldSpec, FixedCountNetworkGenerator


def _dense_view():
    metrics = (BandwidthMetric(), DelayMetric())
    assigners = tuple(
        UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=31 + i)
        for i, metric in enumerate(metrics)
    )
    network = FixedCountNetworkGenerator(
        field=FieldSpec(width=420.0, height=420.0, radius=100.0),
        node_count=220,
        seed=13,
        weight_assigners=assigners,
        restrict_to_largest_component=True,
    ).generate()
    owner = network.nodes()[len(network) // 2]
    return LocalView.from_network(network, owner)


VIEW = _dense_view()


@pytest.mark.parametrize(
    "selector_name", ["fnbp", "qolsr-mpr2", "topology-filtering", "olsr-mpr"]
)
def test_selection_speed_bandwidth(benchmark, selector_name):
    selector = make_selector(selector_name)
    metric = BandwidthMetric()
    result = benchmark(lambda: selector.select(VIEW, metric))
    assert result.selected <= VIEW.one_hop


@pytest.mark.parametrize("selector_name", ["fnbp", "qolsr-mpr2", "topology-filtering"])
def test_selection_speed_delay(benchmark, selector_name):
    selector = make_selector(selector_name)
    metric = DelayMetric()
    result = benchmark(lambda: selector.select(VIEW, metric))
    assert result.selected <= VIEW.one_hop


@pytest.mark.parametrize(
    "metric,method",
    [
        (BandwidthMetric(), "bottleneck-forest"),
        (BandwidthMetric(), "per-target"),
        (DelayMetric(), "owner-dijkstra"),
        (DelayMetric(), "per-target"),
    ],
    ids=["bw-forest", "bw-per-target", "delay-dijkstra", "delay-per-target"],
)
def test_first_hop_computation_speed(benchmark, metric, method):
    """The all-targets first-hop computation: fast single-pass methods vs the reference."""
    results = benchmark(lambda: all_first_hops(VIEW, metric, method=method))
    assert set(results) == set(VIEW.known_targets())
