"""Ablation benchmark: the FNBP loop-guard policies (DESIGN.md section 7).

Compares the advertised-set size and the reachability of the advertised topology under the
three guard policies: the default (``adjacent-to-target``), the printed pseudocode
(``literal``) and no guard at all.  The default costs a fraction of an extra neighbor per
node and is the only policy that provably leaves no destination uncovered (the Figure 4
situation).
"""

from __future__ import annotations

import pytest

from repro.core import FnbpSelector, LoopGuardPolicy
from repro.metrics import BandwidthMetric, UniformWeightAssigner
from repro.routing import HopByHopRouter, advertise
from repro.topology import FieldSpec, FixedCountNetworkGenerator


def _network():
    metric = BandwidthMetric()
    return FixedCountNetworkGenerator(
        field=FieldSpec(width=500.0, height=500.0, radius=100.0),
        node_count=120,
        seed=23,
        weight_assigners=(UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=23),),
        restrict_to_largest_component=True,
    ).generate()


NETWORK = _network()
METRIC = BandwidthMetric()


@pytest.mark.parametrize("policy", list(LoopGuardPolicy), ids=lambda p: p.value)
def test_loop_guard_ablation(benchmark, policy):
    selector_factory = lambda: FnbpSelector(loop_guard=policy)

    advertised = benchmark.pedantic(
        lambda: advertise(NETWORK, selector_factory(), METRIC), rounds=1, iterations=1
    )
    mean_size = advertised.average_set_size()
    print(f"\nloop_guard={policy.value}: mean ANS size = {mean_size:.2f}")
    assert mean_size > 0

    # Reachability over the advertised topology from one source to every destination.
    router = HopByHopRouter(NETWORK, advertised, METRIC)
    nodes = NETWORK.nodes()
    delivered = sum(
        1 for destination in nodes[1:] if router.link_state_route(nodes[0], destination).delivered
    )
    print(f"loop_guard={policy.value}: delivered {delivered}/{len(nodes) - 1}")
    if policy is LoopGuardPolicy.ADJACENT_TO_TARGET:
        assert delivered == len(nodes) - 1
