"""CI floor for telemetry overhead: the instrumented engine stays near the direct path.

``record.py`` tracks the full trajectory (``telemetry`` section of
``BENCH_selection.json``).  This test enforces only the regression floors the telemetry
layer promised when it landed: with metrics *off* the engine's ambient no-op hooks must
retain at least 0.98x of the legacy direct harness's throughput (<=2% overhead budget),
and with metrics *on* the full registry pipeline -- per-trial registries, snapshot
merges, ``on_metrics`` emission -- must retain at least 0.90x (<=10%).  Result equality
across all three paths is asserted before timing, so a telemetry change that perturbs
sweep output fails here too.

Samples are interleaved (direct/off/on per round, min over rounds) so slow-machine
drift hits every path alike.
"""

from __future__ import annotations

import time

from record import _legacy_ans_size_sweep

from repro.experiments.config import SweepConfig
from repro.experiments.engine import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.metrics import BandwidthMetric
from repro.topology import FieldSpec

ROUNDS = 5
OFF_FLOOR = 0.98
ON_FLOOR = 0.90


def _timings():
    """(direct_min_s, off_min_s, on_min_s) for the engine-dispatch benchmark sweep."""
    config = SweepConfig(
        densities=(8.0,),
        runs=1,
        pairs_per_run=2,
        node_sample=20,
        field=FieldSpec(width=400.0, height=400.0, radius=100.0),
        seed=42,
    )
    metric = BandwidthMetric()
    spec = ExperimentSpec.from_config(
        config,
        experiment_id="bench",
        title="Size of the advertised set",
        measure="ans-size",
        metric="bandwidth",
    )
    direct_result = _legacy_ans_size_sweep(config, metric)
    off_result = run_experiment(spec, metrics=False)
    on_result = run_experiment(spec, metrics=True)
    assert direct_result.to_dict() == off_result.to_dict() == on_result.to_dict(), (
        "telemetry perturbed the sweep results"
    )

    direct_s, off_s, on_s = [], [], []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        _legacy_ans_size_sweep(config, metric)
        direct_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_experiment(spec, metrics=False)
        off_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_experiment(spec, metrics=True)
        on_s.append(time.perf_counter() - t0)
    return min(direct_s), min(off_s), min(on_s)


def test_telemetry_overhead_stays_inside_its_floors():
    direct, off, on = _timings()
    off_throughput = direct / off
    on_throughput = direct / on
    assert off_throughput >= OFF_FLOOR, (
        f"metrics-off engine fell below {OFF_FLOOR:.2f}x of the direct path: "
        f"direct {direct:.4f}s vs off {off:.4f}s ({off_throughput:.3f}x)"
    )
    assert on_throughput >= ON_FLOOR, (
        f"metrics-on engine fell below {ON_FLOOR:.2f}x of the direct path: "
        f"direct {direct:.4f}s vs on {on:.4f}s ({on_throughput:.3f}x)"
    )
