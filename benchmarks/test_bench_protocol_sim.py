"""CI floor for the event-driven protocol simulator's event-queue throughput.

``record.py`` tracks the full trajectory (``protocol_sim`` section of
``BENCH_selection.json``: events/sec, per-step cost, and the cost ratio vs the analytic
``SelectionCache`` step path).  This smoke enforces only a conservative regression
floor -- the event queue must push control traffic at a rate no real sweep would notice
-- plus the semantic bar: on a lossless settled network the simulated agents must agree
with the analytic selections, so a throughput "fix" that breaks the protocol fails here
too.
"""

from __future__ import annotations

import time

from repro.metrics import BandwidthMetric, UniformWeightAssigner
from repro.mobility.models import LinkChurnGenerator
from repro.protocol import LossModel, ProtocolSimulator
from repro.topology import FieldSpec

ROUNDS = 3

#: Deliberately far below the recorded rate (tens of thousands of events/sec on the
#: benchmark machines) so only an order-of-magnitude regression trips the floor.
EVENTS_PER_SECOND_FLOOR = 2_000.0


def _generator(metric):
    return LinkChurnGenerator(
        field=FieldSpec(width=420.0, height=420.0, radius=100.0),
        node_count=40,
        seed=13,
        weight_assigners=(UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=31),),
    )


def test_event_queue_throughput_floor():
    metric = BandwidthMetric()
    generator = _generator(metric)
    rates = []
    for _ in range(ROUNDS):
        dynamic = generator.dynamic()
        sim = ProtocolSimulator(
            dynamic.network,
            metric,
            selector_name="fnbp",
            seed=7,
            hello_interval=1.0,
            tc_interval=1.0,
            loss_model=LossModel(seed=3, loss_rate=0.1),
        )
        sim.attach(dynamic)
        start = time.perf_counter()
        sim.run_until(4.0)
        for step in range(1, 4):
            dynamic.advance()
            sim.run_until(4.0 + step)
        elapsed = time.perf_counter() - start
        assert sim.simulator.processed_events > 0
        rates.append(sim.simulator.processed_events / elapsed)
    best = max(rates)
    assert best >= EVENTS_PER_SECOND_FLOOR, (
        f"protocol event queue regressed to {best:.0f} events/s "
        f"(floor {EVENTS_PER_SECOND_FLOOR:.0f})"
    )


def test_lossless_simulation_still_matches_analytic_selections():
    metric = BandwidthMetric()
    network = _generator(metric).generate(0)
    sim = ProtocolSimulator(
        network,
        metric,
        selector_name="fnbp",
        seed=7,
        hello_interval=1.0,
        tc_interval=1.0,
        loss_model=LossModel(seed=3, loss_rate=0.0),
    )
    sim.run_until(8.0)
    from repro.core.selection import make_selector
    from repro.localview import LocalView

    selector = make_selector("fnbp")
    analytic = {
        owner: frozenset(selector.select(view, metric).selected)
        for owner, view in LocalView.all_from_network(network).items()
    }
    assert sim.ans_snapshot() == analytic
