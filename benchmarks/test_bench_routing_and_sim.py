"""Benchmarks for the routing layer and the discrete-event protocol simulation."""

from __future__ import annotations

import pytest

from repro.core import FnbpSelector
from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner
from repro.routing import HopByHopRouter, advertise, optimal_route
from repro.sim import OlsrSimulation
from repro.topology import FieldSpec, FixedCountNetworkGenerator, GridNetworkGenerator


def _network(node_count=150, seed=17):
    metrics = (BandwidthMetric(), DelayMetric())
    assigners = tuple(
        UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=seed + i)
        for i, metric in enumerate(metrics)
    )
    return FixedCountNetworkGenerator(
        field=FieldSpec(width=600.0, height=600.0, radius=100.0),
        node_count=node_count,
        seed=seed,
        weight_assigners=assigners,
        restrict_to_largest_component=True,
    ).generate()


NETWORK = _network()
BANDWIDTH = BandwidthMetric()
ADVERTISED = advertise(NETWORK, FnbpSelector(), BANDWIDTH)


def test_bench_advertise_network_wide(benchmark):
    """Run FNBP at every node and assemble the advertised topology (one sweep trial's core)."""
    advertised = benchmark.pedantic(
        lambda: advertise(NETWORK, FnbpSelector(), BANDWIDTH), rounds=1, iterations=2
    )
    assert advertised.average_set_size() > 0


def test_bench_centralized_optimal_route(benchmark):
    nodes = NETWORK.nodes()
    source, destination = nodes[0], nodes[-1]
    route = benchmark(lambda: optimal_route(NETWORK, source, destination, BANDWIDTH))
    assert route.reachable


def test_bench_link_state_route(benchmark):
    router = HopByHopRouter(NETWORK, ADVERTISED, BANDWIDTH)
    nodes = NETWORK.nodes()
    source, destination = nodes[0], nodes[-1]
    outcome = benchmark(lambda: router.link_state_route(source, destination))
    assert outcome.delivered


def test_bench_protocol_simulation_convergence(benchmark):
    """Full stack: HELLO exchange, selection, TC flooding and route computation on a grid."""
    metric = DelayMetric()
    network = GridNetworkGenerator(
        rows=5,
        columns=5,
        spacing=80.0,
        radius=100.0,
        weight_assigners=(UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=3),),
    ).generate()

    def run_simulation():
        simulation = OlsrSimulation(network, metric, selector_factory=FnbpSelector, seed=1)
        simulation.run_until_converged(20.0)
        return simulation

    simulation = benchmark.pedantic(run_simulation, rounds=1, iterations=1)
    assert simulation.average_ans_size() > 0
    report = simulation.send_data(0, 24)
    assert report.delivered
