"""Record the selection micro-benchmark trajectory as machine-readable JSON.

Times the all-targets first-hop computation (the inner loop of every density sweep) on the
same dense local view as ``test_bench_micro_selection.py``, for every solver method and for
the legacy networkx implementations the compact-graph core replaced; additionally times the
concave bottleneck-forest solve cold vs warm (cold drops the per-view forest cache first,
so every run pays for Kruskal; warm answers from the cache) and the advertised-topology
construction as a full per-selector rebuild vs the incremental edge-set diff the sweeps
use.  Everything is written to ``BENCH_selection.json`` at the repository root.  Successive
PRs re-run this to keep the perf trajectory comparable across versions::

    PYTHONPATH=src python benchmarks/record.py            # writes BENCH_selection.json
    PYTHONPATH=src python benchmarks/record.py --rounds 60 --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.selection import SelectionCache, make_selector  # noqa: E402
from repro.experiments.config import SweepConfig  # noqa: E402
from repro.experiments.engine import run_experiment  # noqa: E402
from repro.experiments.measures import _ans_size_trial  # noqa: E402
from repro.experiments.results import ExperimentResult, SeriesPoint  # noqa: E402
from repro.experiments.runner import build_trial  # noqa: E402
from repro.experiments.spec import ExperimentSpec  # noqa: E402
from repro.experiments.stats import summarize  # noqa: E402
from repro.localview import LocalView, all_first_hops  # noqa: E402
from repro.localview.paths import (  # noqa: E402
    _all_first_hops_bottleneck_forest_nx,
    _all_first_hops_owner_dijkstra_nx,
    _first_hops_to_nx,
)
from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner  # noqa: E402
from repro.mobility.models import LinkChurnGenerator, RandomWaypointGenerator  # noqa: E402
from repro.protocol import LossModel, ProtocolSimulator  # noqa: E402
from repro.routing.advertised import (  # noqa: E402
    AdvertisedTopologyBuilder,
    build_advertised_topology,
    run_selection,
)
from repro.topology import FieldSpec, FixedCountNetworkGenerator  # noqa: E402

#: Selector cycle timed by the advertised-topology benchmark (the paper's legend order).
ADVERTISED_SELECTORS = ("qolsr-mpr2", "topology-filtering", "fnbp")


def dense_network():
    """The dense benchmark topology (mirrors ``test_bench_micro_selection._dense_view``)."""
    metrics = (BandwidthMetric(), DelayMetric())
    assigners = tuple(
        UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=31 + i)
        for i, metric in enumerate(metrics)
    )
    return FixedCountNetworkGenerator(
        field=FieldSpec(width=420.0, height=420.0, radius=100.0),
        node_count=220,
        seed=13,
        weight_assigners=assigners,
        restrict_to_largest_component=True,
    ).generate()


def dense_view() -> LocalView:
    """The dense benchmark view (the node in the middle of the id range)."""
    network = dense_network()
    owner = network.nodes()[len(network) // 2]
    return LocalView.from_network(network, owner)


def _cases(view: LocalView):
    bandwidth, delay = BandwidthMetric(), DelayMetric()
    return {
        "owner-dijkstra": lambda: all_first_hops(view, delay, method="owner-dijkstra"),
        "bottleneck-forest": lambda: all_first_hops(view, bandwidth, method="bottleneck-forest"),
        "per-target-delay": lambda: all_first_hops(view, delay, method="per-target"),
        "per-target-bandwidth": lambda: all_first_hops(view, bandwidth, method="per-target"),
        "owner-dijkstra-networkx": lambda: _all_first_hops_owner_dijkstra_nx(view, delay),
        "bottleneck-forest-networkx": lambda: _all_first_hops_bottleneck_forest_nx(view, bandwidth),
        "per-target-delay-networkx": lambda: {
            target: _first_hops_to_nx(view, target, delay) for target in view.known_targets()
        },
        "per-target-bandwidth-networkx": lambda: {
            target: _first_hops_to_nx(view, target, bandwidth) for target in view.known_targets()
        },
    }


def time_case(fn, rounds: int) -> dict:
    fn()  # warm-up (also populates the view's per-metric compact-graph cache)
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "rounds": rounds,
        "min_s": min(samples),
        "mean_s": sum(samples) / len(samples),
    }


def record_forest_cache(view: LocalView, rounds: int) -> dict:
    """Cold-vs-warm timings of the concave all-targets solve on one dense view.

    Cold drops the cached bottleneck forest before every run (the compact graph stays, so
    the delta is exactly the Kruskal the cache skips); warm answers from the cache.
    """
    bandwidth = BandwidthMetric()

    def cold():
        view._forest.clear()
        all_first_hops(view, bandwidth, method="bottleneck-forest")

    def warm():
        all_first_hops(view, bandwidth, method="bottleneck-forest")

    cold_timing = time_case(cold, rounds)
    warm_timing = time_case(warm, rounds)
    return {
        "cold": cold_timing,
        "warm": warm_timing,
        "warm_speedup": cold_timing["min_s"] / warm_timing["min_s"],
    }


def record_advertised_topology(rounds: int) -> dict:
    """Full-rebuild vs incremental-diff timings of the advertised topology construction.

    One timed round builds the topologies of all paper selectors on the dense benchmark
    network (the selections themselves are precomputed outside the timed region): the
    rebuild path assembles every graph from zero, the incremental path diffs one working
    graph from selector to selector exactly as the overhead sweep does.
    """
    network = dense_network()
    metric = BandwidthMetric()
    views = LocalView.all_from_network(network)
    selections = {
        name: run_selection(network, make_selector(name), metric, views=views)
        for name in ADVERTISED_SELECTORS
    }

    def rebuild():
        for name in ADVERTISED_SELECTORS:
            build_advertised_topology(network, selections[name])

    builder = AdvertisedTopologyBuilder(network)

    def incremental():
        for name in ADVERTISED_SELECTORS:
            builder.build(selections[name])

    rebuild_timing = time_case(rebuild, rounds)
    incremental_timing = time_case(incremental, rounds)
    return {
        "network": {"nodes": len(network), "links": network.number_of_links()},
        "selectors": list(ADVERTISED_SELECTORS),
        "rebuild": rebuild_timing,
        "incremental": incremental_timing,
        "incremental_speedup": rebuild_timing["min_s"] / incremental_timing["min_s"],
    }


def record_mobility(rounds: int) -> dict:
    """Incremental dynamic-topology stepping vs per-step regeneration.

    One timed round advances a dense random-waypoint network through several timesteps and,
    after each step, runs the all-targets first-hop solve on a fixed owner sample (the
    selection workload every dynamic measure funnels through).  The incremental path diffs
    link sets, rebuilds only the views a change touched and keeps every other view's
    compact-graph/forest caches warm; the regeneration baseline rebuilds the network and
    all views from scratch each step.  Both paths produce bit-identical networks and views
    (asserted by ``tests/test_mobility.py``); this records the speedup in two regimes:

    * ``clustered`` (the headline ``incremental_speedup``): 10% of nodes mobile (a static
      mesh serving mobile clients) -- changes localize, most views keep their caches, the
      batched affected-view rebuild carries the win;
    * ``full``: every node mobile -- a step touches most neighborhoods, the driver falls
      back to one wholesale batched view rebuild, and the (smaller) win is skipping the
      network regeneration and per-link weight redraws.
    """
    metric = BandwidthMetric()
    steps = 5

    def scenario(mobile_fraction: float) -> dict:
        # 110 nodes in a 420x420 field at radius 100 is mean degree ~20 -- the middle of
        # the paper's density range -- with pedestrian-scale movement per time unit.
        generator = RandomWaypointGenerator(
            field=FieldSpec(width=420.0, height=420.0, radius=100.0),
            node_count=110,
            seed=13,
            weight_assigners=(UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=31),),
            speed_low=1.0,
            speed_high=4.0,
            pause_high=0.5,
            mobile_fraction=mobile_fraction,
        )

        def run(incremental: bool) -> None:
            dynamic = generator.dynamic()
            dynamic.incremental = incremental
            views = dynamic.views()
            owners = dynamic.network.nodes()[::22]
            for owner in owners:
                all_first_hops(views[owner], metric)
            for _ in range(steps):
                dynamic.advance()
                views = dynamic.views()
                for owner in owners:
                    all_first_hops(views[owner], metric)

        incremental_timing = time_case(lambda: run(True), rounds)
        rebuild_timing = time_case(lambda: run(False), rounds)
        probe = generator.dynamic()
        return {
            "network": {"nodes": len(probe.network), "links": probe.network.number_of_links()},
            "mobile_fraction": mobile_fraction,
            "incremental": incremental_timing,
            "rebuild": rebuild_timing,
            "incremental_speedup": rebuild_timing["min_s"] / incremental_timing["min_s"],
        }

    clustered = scenario(0.1)
    full = scenario(1.0)
    return {
        "model": "rwp",
        "steps_per_round": steps,
        "clustered": clustered,
        "full": full,
        "incremental_speedup": clustered["incremental_speedup"],
    }


def record_incremental_selection(rounds: int) -> dict:
    """Dirty-set cached re-selection vs from-scratch per-step selection on the step path.

    One timed round advances a dense random-waypoint network through several timesteps and,
    after each step (plus once at time zero), computes every paper selector's advertised
    sets at every node -- the selection workload of the dynamic measures.  Both paths use
    the PR-4 incremental step path (diffed links, warm view caches); the difference is the
    selection layer on top:

    * ``from_scratch`` is the PR-4 behavior: every step re-runs every selector on every
      node, even in neighborhoods no link flip touched;
    * ``cached`` routes the same workload through a :class:`SelectionCache` invalidated by
      each step's ``StepDelta.dirty`` set, so only owners whose local view changed re-run
      the selector and everyone else reuses the previous step's results (bit-identical,
      pinned by ``tests/test_incremental_selection.py``).

    Recorded in the same two regimes as the ``mobility`` section: ``clustered`` (10% of
    nodes mobile; dirt localizes, most selections are reused -- the headline
    ``incremental_speedup``) and ``full`` (every node mobile; most views are dirtied each
    step, so the cache's win shrinks toward the cost of the bookkeeping).
    """
    metric = BandwidthMetric()
    steps = 5

    def scenario(mobile_fraction: float) -> dict:
        generator = RandomWaypointGenerator(
            field=FieldSpec(width=420.0, height=420.0, radius=100.0),
            node_count=110,
            seed=13,
            weight_assigners=(UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=31),),
            speed_low=1.0,
            speed_high=4.0,
            pause_high=0.5,
            mobile_fraction=mobile_fraction,
        )

        def run(cached: bool) -> None:
            dynamic = generator.dynamic()
            dynamic.views()
            if cached:
                cache = SelectionCache()
                dynamic.add_step_listener(cache.on_step)

                def select_everywhere() -> None:
                    views = dynamic.views()
                    for name in ADVERTISED_SELECTORS:
                        cache.select_all(name, metric, views, network=dynamic.network)

            else:

                def select_everywhere() -> None:
                    views = dynamic.views()
                    for name in ADVERTISED_SELECTORS:
                        selector = make_selector(name)
                        for view in views.values():
                            selector.select(view, metric)

            select_everywhere()
            for _ in range(steps):
                dynamic.advance()
                select_everywhere()

        cached_timing = time_case(lambda: run(True), rounds)
        scratch_timing = time_case(lambda: run(False), rounds)
        probe = generator.dynamic()
        return {
            "network": {"nodes": len(probe.network), "links": probe.network.number_of_links()},
            "mobile_fraction": mobile_fraction,
            "selectors": list(ADVERTISED_SELECTORS),
            "cached": cached_timing,
            "from_scratch": scratch_timing,
            "incremental_speedup": scratch_timing["min_s"] / cached_timing["min_s"],
        }

    clustered = scenario(0.1)
    full = scenario(1.0)
    return {
        "model": "rwp",
        "steps_per_round": steps,
        "clustered": clustered,
        "full": full,
        "incremental_speedup": clustered["incremental_speedup"],
    }


def _legacy_ans_size_sweep(config: SweepConfig, metric) -> ExperimentResult:
    """The pre-redesign direct-call harness, kept inline as the benchmark reference.

    This replicates what ``run_ans_size_experiment`` did before the spec/registry/sink
    redesign -- a hand-written loop with no spec validation, no registry resolution beyond
    the selector lookups the old code also performed, and no sink events -- playing the
    same role as the retained ``_*_nx`` solver implementations: a baseline that makes any
    dispatch overhead of the generic engine machine-visible.
    """
    result = ExperimentResult(
        experiment_id="bench",
        title="Size of the advertised set",
        metric_name=metric.name,
        x_label="density",
        y_label="advertised neighbors per node",
    )
    per_selector = {name: {density: [] for density in config.densities} for name in config.selectors}
    for density in config.densities:
        for run_index in range(config.runs):
            payload = _ans_size_trial(build_trial(config, metric, density, run_index))
            for selector_name, sizes in payload["sizes"].items():
                per_selector[selector_name][density].extend(sizes)
    for selector_name in config.selectors:
        for density in config.densities:
            summary = summarize(per_selector[selector_name][density])
            result.add_point(selector_name, SeriesPoint(density=density, summary=summary))
    if config.node_sample is not None:
        result.add_note(f"averaged over a sample of up to {config.node_sample} nodes per topology")
    result.add_note(f"{config.runs} run(s) per density; seed={config.seed}")
    return result


def record_csr_kernels(rounds: int) -> dict:
    """Network-wide first-hop solves: per-view scalar solvers vs the batched CSR kernels.

    One timed round produces every owner's all-targets first-hop sets on the dense
    benchmark network, starting from cold solver caches each time (the views
    themselves are pre-built once -- the adjacency bookkeeping is shared by both
    paths).  The scalar round rebuilds every view's compact graph and runs the
    per-view solvers (that per-link re-extraction cost is exactly what the shared
    CSR eliminates); the batched round builds one :class:`NetworkGraph` from
    scratch, attaches the views and primes them through the stacked numpy kernels
    (:func:`prime_first_hops`).  Both sides' results are asserted equal before
    timing.
    """
    from repro.localview import NetworkGraph, prime_first_hops

    network = dense_network()
    views = list(LocalView.all_from_network(network).values())
    sections = {}
    for metric in (DelayMetric(), BandwidthMetric()):
        token = metric.cache_token()

        def scalar():
            for view in views:
                view._compact = {}
                view._forest = {}
                view._first_hops = {}
            return {view.owner: all_first_hops(view, metric) for view in views}

        def batched():
            for view in views:
                view._first_hops = {}
            ng = NetworkGraph.from_network(network)
            for view in views:
                view.attach_network_graph(ng)
            prime_first_hops(views, metric)
            return {view.owner: view._first_hops[token] for view in views}

        if scalar() != batched():
            raise AssertionError(f"batched CSR kernels diverge from scalar ({metric.name})")
        scalar_timing = time_case(scalar, rounds)
        batched_timing = time_case(batched, rounds)
        sections[metric.name] = {
            "scalar_per_view": scalar_timing,
            "batched_csr": batched_timing,
            "batched_speedup": scalar_timing["min_s"] / batched_timing["min_s"],
        }
    sections["network"] = {
        "nodes": len(network),
        "edges": network.number_of_links(),
        "owners": len(network),
    }
    return sections


def record_engine_dispatch(rounds: int) -> dict:
    """Generic spec/registry engine vs the legacy direct-call harness on one small sweep.

    One timed round runs a complete single-density advertised-set sweep (trial generation
    dominates; the delta between the two paths is exactly the spec validation, registry
    resolution, measure indirection and sink event dispatch the redesign added).  The
    results of both paths are asserted identical before timing.
    """
    config = SweepConfig(
        densities=(8.0,),
        runs=1,
        pairs_per_run=2,
        node_sample=20,
        field=FieldSpec(width=400.0, height=400.0, radius=100.0),
        seed=42,
    )
    metric = BandwidthMetric()
    spec = ExperimentSpec.from_config(
        config,
        experiment_id="bench",
        title="Size of the advertised set",
        measure="ans-size",
        metric="bandwidth",
    )
    engine_result = run_experiment(spec)
    legacy_result = _legacy_ans_size_sweep(config, metric)
    if engine_result.to_dict() != legacy_result.to_dict():
        raise AssertionError("generic engine and legacy direct harness disagree")

    engine_timing = time_case(lambda: run_experiment(spec), rounds)
    direct_timing = time_case(lambda: _legacy_ans_size_sweep(config, metric), rounds)
    return {
        "config": {"densities": list(config.densities), "runs": config.runs, "node_sample": config.node_sample},
        "spec_engine": engine_timing,
        "direct": direct_timing,
        "dispatch_overhead_ratio": engine_timing["min_s"] / direct_timing["min_s"],
    }


def record_telemetry(rounds: int) -> dict:
    """Telemetry overhead on the engine-dispatch sweep: metrics off vs on vs direct.

    One timed round is the same complete single-density sweep ``engine_dispatch`` times.
    ``metrics_off`` is the default engine path (ambient no-op telemetry helpers only),
    ``metrics_on`` runs the full registry pipeline -- per-trial registries, snapshot
    merging, ``on_metrics`` emission -- and ``direct`` is the legacy harness baseline.
    All three paths are asserted result-identical before timing (telemetry observes, it
    never perturbs).  The throughput ratios are floor-guarded in CI by
    ``test_bench_metrics_overhead.py``: metrics off must retain >=0.98x of the direct
    path's speed, metrics on >=0.90x.
    """
    config = SweepConfig(
        densities=(8.0,),
        runs=1,
        pairs_per_run=2,
        node_sample=20,
        field=FieldSpec(width=400.0, height=400.0, radius=100.0),
        seed=42,
    )
    metric = BandwidthMetric()
    spec = ExperimentSpec.from_config(
        config,
        experiment_id="bench",
        title="Size of the advertised set",
        measure="ans-size",
        metric="bandwidth",
    )
    direct_result = _legacy_ans_size_sweep(config, metric)
    off_result = run_experiment(spec, metrics=False)
    on_result = run_experiment(spec, metrics=True)
    if not (direct_result.to_dict() == off_result.to_dict() == on_result.to_dict()):
        raise AssertionError("telemetry perturbed the sweep results")

    direct_timing = time_case(lambda: _legacy_ans_size_sweep(config, metric), rounds)
    off_timing = time_case(lambda: run_experiment(spec, metrics=False), rounds)
    on_timing = time_case(lambda: run_experiment(spec, metrics=True), rounds)
    return {
        "config": {"densities": list(config.densities), "runs": config.runs, "node_sample": config.node_sample},
        "direct": direct_timing,
        "metrics_off": off_timing,
        "metrics_on": on_timing,
        "off_throughput_vs_direct": direct_timing["min_s"] / off_timing["min_s"],
        "on_throughput_vs_direct": direct_timing["min_s"] / on_timing["min_s"],
        "on_overhead_ratio": on_timing["min_s"] / off_timing["min_s"],
    }


def record_protocol_sim(rounds: int) -> dict:
    """Event-driven protocol simulation throughput vs the analytic step pipeline.

    One timed round runs a :class:`ProtocolSimulator` (fnbp agents, 10% loss) over a
    churn network through its warmup plus ``steps`` step windows -- the workload of one
    protocol-measure trial, single selector.  The analytic baseline routes the same
    dynamic topology through the ``SelectionCache`` step path (what the mobility
    measures compute per step).  The protocol path is expected to cost *more* -- it
    simulates every HELLO/TC transmission -- so the recorded ratio is the price of
    protocol truth, and ``events_per_s`` is the event-queue throughput the price buys.
    """
    metric = BandwidthMetric()
    steps = 4
    hello_interval = tc_interval = 1.0
    warmup = 4.0 * max(hello_interval, tc_interval)
    generator = LinkChurnGenerator(
        field=FieldSpec(width=420.0, height=420.0, radius=100.0),
        node_count=60,
        seed=13,
        weight_assigners=(UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=31),),
    )

    last_events = {"count": 0}

    def run_protocol() -> None:
        dynamic = generator.dynamic()
        sim = ProtocolSimulator(
            dynamic.network,
            metric,
            selector_name="fnbp",
            seed=7,
            hello_interval=hello_interval,
            tc_interval=tc_interval,
            loss_model=LossModel(seed=3, loss_rate=0.1),
        )
        sim.attach(dynamic)
        sim.run_until(warmup)
        for step in range(1, steps + 1):
            dynamic.advance()
            sim.run_until(warmup + step * hello_interval)
        last_events["count"] = sim.simulator.processed_events

    def run_analytic() -> None:
        dynamic = generator.dynamic()
        cache = SelectionCache()
        dynamic.add_step_listener(cache.on_step)
        cache.select_all("fnbp", metric, dynamic.views(), network=dynamic.network)
        for _ in range(steps):
            dynamic.advance()
            cache.select_all("fnbp", metric, dynamic.views(), network=dynamic.network)

    protocol_timing = time_case(run_protocol, rounds)
    analytic_timing = time_case(run_analytic, rounds)
    probe = generator.dynamic()
    events = last_events["count"]
    return {
        "network": {"nodes": len(probe.network), "links": probe.network.number_of_links()},
        "selector": "fnbp",
        "loss_rate": 0.1,
        "steps_per_round": steps,
        "events_per_round": events,
        "protocol": protocol_timing,
        "analytic": analytic_timing,
        "events_per_s": events / protocol_timing["min_s"],
        "protocol_step_cost_s": protocol_timing["min_s"] / steps,
        "protocol_vs_analytic": protocol_timing["min_s"] / analytic_timing["min_s"],
    }


def record(rounds: int) -> dict:
    view = dense_view()
    targets = len(view.known_targets())
    results = {}
    for name, fn in _cases(view).items():
        timing = time_case(fn, rounds)
        timing["targets_per_s"] = targets / timing["min_s"]
        results[name] = timing

    speedups = {
        name: results[f"{name}-networkx"]["min_s"] / results[name]["min_s"]
        for name in ("owner-dijkstra", "bottleneck-forest", "per-target-delay", "per-target-bandwidth")
        if f"{name}-networkx" in results
    }
    return {
        "benchmark": "micro_selection.all_first_hops",
        "view": {
            "nodes": len(view.nodes),
            "one_hop": len(view.one_hop),
            "targets": targets,
            "edges": view.graph.number_of_edges(),
        },
        "python": platform.python_version(),
        "results": results,
        "speedup_vs_networkx": speedups,
        "forest_cache": record_forest_cache(view, rounds),
        "advertised_topology": record_advertised_topology(max(5, rounds // 4)),
        "engine_dispatch": record_engine_dispatch(max(5, rounds // 4)),
        "telemetry": record_telemetry(max(5, rounds // 4)),
        "mobility": record_mobility(max(3, rounds // 8)),
        "incremental_selection": record_incremental_selection(max(3, rounds // 8)),
        "csr_kernels": record_csr_kernels(max(3, rounds // 8)),
        "protocol_sim": record_protocol_sim(max(3, rounds // 8)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=40, help="timed rounds per method")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_selection.json"),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    payload = record(args.rounds)
    Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for name in sorted(payload["results"]):
        timing = payload["results"][name]
        print(f"{name:32s} min {timing['min_s'] * 1e3:8.3f} ms   {timing['targets_per_s']:10.0f} targets/s")
    for name, speedup in sorted(payload["speedup_vs_networkx"].items()):
        print(f"speedup vs networkx: {name:24s} {speedup:5.2f}x")
    forest = payload["forest_cache"]
    print(
        f"forest cache: cold {forest['cold']['min_s'] * 1e3:.3f} ms  "
        f"warm {forest['warm']['min_s'] * 1e3:.3f} ms  ({forest['warm_speedup']:.2f}x)"
    )
    advertised = payload["advertised_topology"]
    print(
        f"advertised topology: rebuild {advertised['rebuild']['min_s'] * 1e3:.3f} ms  "
        f"incremental {advertised['incremental']['min_s'] * 1e3:.3f} ms  "
        f"({advertised['incremental_speedup']:.2f}x)"
    )
    dispatch = payload["engine_dispatch"]
    print(
        f"engine dispatch: spec engine {dispatch['spec_engine']['min_s'] * 1e3:.3f} ms  "
        f"direct {dispatch['direct']['min_s'] * 1e3:.3f} ms  "
        f"(overhead {dispatch['dispatch_overhead_ratio']:.3f}x)"
    )
    telemetry = payload["telemetry"]
    print(
        f"telemetry: direct {telemetry['direct']['min_s'] * 1e3:.3f} ms  "
        f"off {telemetry['metrics_off']['min_s'] * 1e3:.3f} ms  "
        f"on {telemetry['metrics_on']['min_s'] * 1e3:.3f} ms  "
        f"(on/off {telemetry['on_overhead_ratio']:.3f}x)"
    )
    for regime in ("clustered", "full"):
        mobility = payload["mobility"][regime]
        print(
            f"mobility step path ({regime}, {mobility['mobile_fraction']:.0%} mobile): "
            f"rebuild {mobility['rebuild']['min_s'] * 1e3:.3f} ms  "
            f"incremental {mobility['incremental']['min_s'] * 1e3:.3f} ms  "
            f"({mobility['incremental_speedup']:.2f}x)"
        )
    for regime in ("clustered", "full"):
        selection = payload["incremental_selection"][regime]
        print(
            f"incremental selection ({regime}, {selection['mobile_fraction']:.0%} mobile): "
            f"from-scratch {selection['from_scratch']['min_s'] * 1e3:.3f} ms  "
            f"cached {selection['cached']['min_s'] * 1e3:.3f} ms  "
            f"({selection['incremental_speedup']:.2f}x)"
        )
    for name in ("delay", "bandwidth"):
        kernels = payload["csr_kernels"][name]
        print(
            f"csr kernels ({name}): scalar {kernels['scalar_per_view']['min_s'] * 1e3:.3f} ms  "
            f"batched {kernels['batched_csr']['min_s'] * 1e3:.3f} ms  "
            f"({kernels['batched_speedup']:.2f}x)"
        )
    protocol = payload["protocol_sim"]
    print(
        f"protocol sim: {protocol['events_per_s']:.0f} events/s  "
        f"step {protocol['protocol_step_cost_s'] * 1e3:.3f} ms  "
        f"({protocol['protocol_vs_analytic']:.1f}x the analytic step)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
