"""Record the selection micro-benchmark trajectory as machine-readable JSON.

Times the all-targets first-hop computation (the inner loop of every density sweep) on the
same dense local view as ``test_bench_micro_selection.py``, for every solver method and for
the legacy networkx implementations the compact-graph core replaced, and writes the results
(targets/sec per method plus the compact-vs-networkx speedups) to ``BENCH_selection.json``
at the repository root.  Successive PRs re-run this to keep the perf trajectory comparable
across versions::

    PYTHONPATH=src python benchmarks/record.py            # writes BENCH_selection.json
    PYTHONPATH=src python benchmarks/record.py --rounds 60 --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.localview import LocalView, all_first_hops  # noqa: E402
from repro.localview.paths import (  # noqa: E402
    _all_first_hops_bottleneck_forest_nx,
    _all_first_hops_owner_dijkstra_nx,
    _first_hops_to_nx,
)
from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner  # noqa: E402
from repro.topology import FieldSpec, FixedCountNetworkGenerator  # noqa: E402


def dense_view() -> LocalView:
    """The dense benchmark view (mirrors ``test_bench_micro_selection._dense_view``)."""
    metrics = (BandwidthMetric(), DelayMetric())
    assigners = tuple(
        UniformWeightAssigner(metric=metric, low=1.0, high=10.0, seed=31 + i)
        for i, metric in enumerate(metrics)
    )
    network = FixedCountNetworkGenerator(
        field=FieldSpec(width=420.0, height=420.0, radius=100.0),
        node_count=220,
        seed=13,
        weight_assigners=assigners,
        restrict_to_largest_component=True,
    ).generate()
    owner = network.nodes()[len(network) // 2]
    return LocalView.from_network(network, owner)


def _cases(view: LocalView):
    bandwidth, delay = BandwidthMetric(), DelayMetric()
    return {
        "owner-dijkstra": lambda: all_first_hops(view, delay, method="owner-dijkstra"),
        "bottleneck-forest": lambda: all_first_hops(view, bandwidth, method="bottleneck-forest"),
        "per-target-delay": lambda: all_first_hops(view, delay, method="per-target"),
        "per-target-bandwidth": lambda: all_first_hops(view, bandwidth, method="per-target"),
        "owner-dijkstra-networkx": lambda: _all_first_hops_owner_dijkstra_nx(view, delay),
        "bottleneck-forest-networkx": lambda: _all_first_hops_bottleneck_forest_nx(view, bandwidth),
        "per-target-delay-networkx": lambda: {
            target: _first_hops_to_nx(view, target, delay) for target in view.known_targets()
        },
        "per-target-bandwidth-networkx": lambda: {
            target: _first_hops_to_nx(view, target, bandwidth) for target in view.known_targets()
        },
    }


def time_case(fn, rounds: int) -> dict:
    fn()  # warm-up (also populates the view's per-metric compact-graph cache)
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "rounds": rounds,
        "min_s": min(samples),
        "mean_s": sum(samples) / len(samples),
    }


def record(rounds: int) -> dict:
    view = dense_view()
    targets = len(view.known_targets())
    results = {}
    for name, fn in _cases(view).items():
        timing = time_case(fn, rounds)
        timing["targets_per_s"] = targets / timing["min_s"]
        results[name] = timing

    speedups = {
        name: results[f"{name}-networkx"]["min_s"] / results[name]["min_s"]
        for name in ("owner-dijkstra", "bottleneck-forest", "per-target-delay", "per-target-bandwidth")
        if f"{name}-networkx" in results
    }
    return {
        "benchmark": "micro_selection.all_first_hops",
        "view": {
            "nodes": len(view.nodes),
            "one_hop": len(view.one_hop),
            "targets": targets,
            "edges": view.graph.number_of_edges(),
        },
        "python": platform.python_version(),
        "results": results,
        "speedup_vs_networkx": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=40, help="timed rounds per method")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_selection.json"),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    payload = record(args.rounds)
    Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for name in sorted(payload["results"]):
        timing = payload["results"][name]
        print(f"{name:32s} min {timing['min_s'] * 1e3:8.3f} ms   {timing['targets_per_s']:10.0f} targets/s")
    for name, speedup in sorted(payload["speedup_vs_networkx"].items()):
        print(f"speedup vs networkx: {name:24s} {speedup:5.2f}x")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
