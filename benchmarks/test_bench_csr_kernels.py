"""CI floor for the batched CSR kernels: never slower than the per-view scalar path.

``record.py`` tracks the full speedup trajectory (``csr_kernels`` section of
``BENCH_selection.json``; ~3x on the dense benchmark network at the time of writing).
This test enforces only the regression floor -- the batched kernels must not fall
below parity with the scalar solvers they replace -- plus the result-equality bar,
so a speedup that silently becomes a slowdown (or a divergence) fails the smoke run.
"""

from __future__ import annotations

import time

from record import dense_network

from repro.localview import LocalView, NetworkGraph, all_first_hops, prime_first_hops
from repro.metrics import BandwidthMetric, DelayMetric

ROUNDS = 3


def _solve_rounds(metric):
    """(scalar_min_s, batched_min_s) for cold-cache full-network first-hop solves."""
    network = dense_network()
    views = list(LocalView.all_from_network(network).values())
    token = metric.cache_token()

    def scalar():
        for view in views:
            view._compact = {}
            view._forest = {}
            view._first_hops = {}
        return {view.owner: all_first_hops(view, metric) for view in views}

    def batched():
        for view in views:
            view._first_hops = {}
        ng = NetworkGraph.from_network(network)
        for view in views:
            view.attach_network_graph(ng)
        prime_first_hops(views, metric)
        return {view.owner: view._first_hops[token] for view in views}

    assert scalar() == batched(), "batched CSR kernels diverge from the scalar solvers"
    scalar_s = []
    batched_s = []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        scalar()
        scalar_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched()
        batched_s.append(time.perf_counter() - t0)
    return min(scalar_s), min(batched_s)


def test_batched_delay_kernel_at_least_matches_scalar():
    scalar_s, batched_s = _solve_rounds(DelayMetric())
    assert batched_s <= scalar_s, (
        f"batched delay kernel regressed below 1.0x of the scalar path: "
        f"scalar {scalar_s:.4f}s vs batched {batched_s:.4f}s"
    )


def test_batched_bandwidth_kernel_at_least_matches_scalar():
    scalar_s, batched_s = _solve_rounds(BandwidthMetric())
    assert batched_s <= scalar_s, (
        f"batched bandwidth kernel regressed below 1.0x of the scalar path: "
        f"scalar {scalar_s:.4f}s vs batched {batched_s:.4f}s"
    )
