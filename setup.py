"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so that the package
can be installed editable (``pip install -e . --no-use-pep517 --no-build-isolation``) in
offline environments whose setuptools/pip lack PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
