"""The event-driven protocol simulator's contract suite.

Four guarantees:

* **Zero-loss anchor.**  With a lossless channel and settled timers, every node's
  table-implied ANS selection equals the analytic per-node selections, and every node's
  topology table (united with its own advertised links -- a node never processes its own
  TCs) equals the analytic advertised link set of its connected component.  This pins
  the simulator to the same ground truth the analytic ``tc-overhead``/advertised-topology
  pipeline reports, for every built-in selector.
* **Determinism.**  Equal seeds give bit-identical runs in any process: the jsonl stream
  of a protocol sweep is byte-identical serial and under ``REPRO_WORKERS=2``, and the
  loss model reproduces its draws across process boundaries.
* **Protocol behaviour.**  Losses actually happen on a lossy channel (and never on a
  lossless one), triggered TCs fire when MPR-selector sets change, and the convergence
  series counts windows the way the measure documents.
* **Engine integration.**  All three protocol measures run through ``run_experiment``
  unchanged, reject static specs fast, and the CLI/spec plumbing round-trips the three
  protocol fields.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import networkx as nx
import pytest

from repro.experiments import sweep_cli
from repro.experiments.config import SweepConfig
from repro.experiments.engine import run_experiment
from repro.experiments.runner import build_trial
from repro.experiments.sinks import JsonlSink
from repro.experiments.spec import ExperimentSpec
from repro.metrics import BandwidthMetric, DelayMetric
from repro.metrics.assignment import canonical_edge
from repro.protocol import LossModel, ProtocolSimulator
from repro.protocol.measures import _convergence_series, warmup_time
from repro.registry import PRESETS, SELECTORS
from repro.topology.generators import FieldSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

FIELD = FieldSpec(width=400.0, height=400.0, radius=100.0)


def _anchor_trial(metric):
    config = SweepConfig(
        densities=(20.0,),
        runs=1,
        topology="churn",
        field=FIELD,
        timesteps=4,
        hello_interval=1.0,
        tc_interval=1.0,
    )
    return build_trial(config, metric, 20.0, 0)


def _components(network):
    return [frozenset(component) for component in nx.connected_components(network.graph)]


def _tiny_protocol_spec(**overrides) -> ExperimentSpec:
    base = ExperimentSpec(
        experiment_id="protocol-test",
        title="Protocol sweep test",
        measure="convergence-time",
        metric="bandwidth",
        selectors=("fnbp", "qolsr-mpr2"),
        topology="churn",
        densities=(20.0,),
        runs=2,
        pairs_per_run=3,
        timesteps=3,
        step_interval=1.0,
        hello_interval=1.0,
        tc_interval=1.0,
        loss_rate=0.1,
        field=FIELD,
        seed=11,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestZeroLossAnchor:
    """The simulated protocol converges to exactly the analytic pipeline's truth."""

    @pytest.mark.parametrize("selector_name", SELECTORS.names())
    def test_tables_converge_to_the_analytic_selections(self, selector_name):
        metric = BandwidthMetric()
        trial = _anchor_trial(metric)
        sim = ProtocolSimulator(
            trial.network,
            metric,
            selector_name=selector_name,
            seed=7,
            hello_interval=1.0,
            tc_interval=1.0,
            loss_model=LossModel(seed=3, loss_rate=0.0),
        )
        sim.run_until(8.0)

        analytic = {node: frozenset(r.selected) for node, r in trial.selections(selector_name).items()}
        assert sim.ans_snapshot() == analytic

        truth_edges = {
            canonical_edge(node, relay) for node, sel in analytic.items() for relay in sel
        }
        component_of = {node: comp for comp in _components(trial.network) for node in comp}
        for node, links in sim.advertised_link_sets().items():
            own = {canonical_edge(node, relay) for relay in analytic[node]}
            component_truth = {edge for edge in truth_edges if edge[0] in component_of[node]}
            # A node never processes its own TCs, and flooding cannot cross a component
            # boundary: table + own advertised links = the component's advertised set.
            assert set(links) | own == component_truth, f"node {node} ({selector_name})"

    def test_anchor_holds_for_an_additive_metric_too(self):
        metric = DelayMetric()
        trial = _anchor_trial(metric)
        sim = ProtocolSimulator(
            trial.network,
            metric,
            selector_name="fnbp",
            seed=5,
            hello_interval=1.0,
            tc_interval=1.0,
            loss_model=LossModel(seed=2, loss_rate=0.0),
        )
        sim.run_until(8.0)
        analytic = {node: frozenset(r.selected) for node, r in trial.selections("fnbp").items()}
        assert sim.ans_snapshot() == analytic

    def test_lossless_channel_loses_nothing(self):
        metric = BandwidthMetric()
        trial = _anchor_trial(metric)
        sim = ProtocolSimulator(
            trial.network, metric, seed=1, hello_interval=1.0, tc_interval=1.0,
            loss_model=LossModel(seed=1, loss_rate=0.0),
        )
        sim.run_until(6.0)
        counts = sim.control_message_counts()
        assert counts["losses"] == 0
        assert counts["deliveries"] == counts["transmissions"] > 0


class TestDeterminism:
    def test_serial_and_parallel_protocol_sweeps_stream_identical_bytes(self, tmp_path):
        spec = _tiny_protocol_spec()
        streams = {}
        for workers in (1, 2):
            path = tmp_path / f"events_w{workers}.jsonl"
            run_experiment(spec, sinks=[JsonlSink(path)], workers=workers)
            streams[workers] = path.read_bytes()
        assert streams[1] == streams[2]
        last_line = streams[1].decode().strip().splitlines()[-1]
        assert json.loads(last_line)["event"] == "result"

    def test_loss_model_draws_reproduce_across_processes(self):
        model = LossModel(seed=5, loss_rate=0.3, propagation_delay=0.001, delay_jitter=0.002)
        local = [
            (model.delivered(src, dst, seq), round(model.delay(src, dst, seq), 12))
            for src in range(3)
            for dst in range(3)
            for seq in range(4)
        ]
        script = (
            "from repro.protocol import LossModel\n"
            "m = LossModel(seed=5, loss_rate=0.3, propagation_delay=0.001, delay_jitter=0.002)\n"
            "print([(m.delivered(s, d, q), round(m.delay(s, d, q), 12))"
            " for s in range(3) for d in range(3) for q in range(4)])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == repr(local)

    def test_equal_seeds_give_identical_traces(self):
        metric = BandwidthMetric()
        trial = _anchor_trial(metric)

        def trace_key():
            sim = ProtocolSimulator(
                trial.network, metric, seed=13, hello_interval=1.0, tc_interval=1.0,
                loss_model=LossModel(seed=4, loss_rate=0.2),
            )
            sim.run_until(5.0)
            return [(e.time, e.kind, e.node) for e in sim.trace], sim.control_message_counts()

        assert trace_key() == trace_key()


class TestProtocolBehaviour:
    def test_lossy_channel_drops_and_accounts_for_packets(self):
        metric = BandwidthMetric()
        trial = _anchor_trial(metric)
        sim = ProtocolSimulator(
            trial.network, metric, seed=9, hello_interval=1.0, tc_interval=1.0,
            loss_model=LossModel(seed=9, loss_rate=0.5),
        )
        sim.run_until(6.0)
        counts = sim.control_message_counts()
        assert counts["losses"] > 0
        assert counts["deliveries"] + counts["losses"] == counts["transmissions"]

    def test_cold_start_triggers_tcs_on_mpr_selector_changes(self):
        metric = BandwidthMetric()
        trial = _anchor_trial(metric)
        sim = ProtocolSimulator(
            trial.network, metric, seed=7, hello_interval=1.0, tc_interval=1.0,
            loss_model=LossModel(seed=3, loss_rate=0.0),
        )
        sim.run_until(4.0)
        counts = sim.trace.counts()
        assert counts.get("tc-triggered", 0) >= 1
        assert counts.get("hello-sent", 0) >= len(trial.network)

    def test_attach_records_churn_steps_and_rejects_foreign_networks(self):
        metric = BandwidthMetric()
        trial = _anchor_trial(metric)
        dynamic = trial.dynamic_topology()
        sim = ProtocolSimulator(
            dynamic.network, metric, seed=3, hello_interval=1.0, tc_interval=1.0,
            loss_model=LossModel(seed=3, loss_rate=0.0),
        )
        sim.attach(dynamic)
        churned = 0
        for _ in range(6):
            delta = dynamic.advance()
            churned += 1 if delta.link_churn else 0
        assert len(sim.churn_steps) == churned
        assert sim.trace.counts().get("topology-step", 0) == 6

        other = _anchor_trial(metric)
        with pytest.raises(ValueError):
            sim.attach(other.dynamic_topology())

    def test_convergence_series_counts_windows_from_each_event(self):
        # Event at step 0 matching at step 1 -> 2 windows; event at step 2 never
        # matching -> censored (None); non-event steps carry no sample.
        assert _convergence_series([1.0, 0.0, 2.0], [False, True, False]) == [2.0, None, None]
        assert _convergence_series([1.0], [True]) == [1.0]
        assert _convergence_series([0.0, 0.0], [True, True]) == [None, None]

    def test_warmup_scales_with_the_slowest_period(self):
        assert warmup_time(1.0, 1.0) == 4.0
        assert warmup_time(2.0, 5.0) == 20.0

    def test_loss_model_validates_its_parameters(self):
        with pytest.raises(ValueError):
            LossModel(seed=1, loss_rate=1.0)
        with pytest.raises(ValueError):
            LossModel(seed=1, loss_rate=-0.1)
        with pytest.raises(ValueError):
            LossModel(seed=1, propagation_delay=-1.0)


class TestMeasuresThroughTheEngine:
    @pytest.mark.parametrize("measure", ["convergence-time", "advertised-staleness", "route-flaps"])
    def test_protocol_measures_run_end_to_end(self, measure):
        spec = _tiny_protocol_spec(measure=measure, selectors=("fnbp",), runs=1)
        result = run_experiment(spec, workers=1)
        series = result.series["fnbp"]
        assert len(series.points) == 1
        point = series.points[0]
        per_step = point.to_dict()["per_step_mean"]
        assert len(per_step) == spec.timesteps

    def test_staleness_is_zero_on_a_frozen_lossless_world(self):
        # No churn, no loss: after warmup the tables track truth exactly, so no stale
        # links ever appear and every next hop holds.
        from repro.experiments.runner import Trial
        from repro.metrics import UniformWeightAssigner
        from repro.mobility import LinkChurnGenerator
        from repro.protocol.measures import _protocol_trial

        spec = _tiny_protocol_spec(selectors=("fnbp",), runs=1, loss_rate=0.0)
        config = spec.sweep_config()
        generator = LinkChurnGenerator(
            field=spec.field,
            node_count=20,
            seed=4,
            weight_assigners=(UniformWeightAssigner(metric=BandwidthMetric(), seed=9),),
            reweight_probability=0.0,
            outage_probability=0.0,
        )
        trial = Trial(
            config=config,
            metric=BandwidthMetric(),
            density=20.0,
            run_index=0,
            network=generator.generate(0),
            generator=generator,
        )
        payload = _protocol_trial(trial)
        assert payload["link_churn"] == [0.0] * spec.timesteps
        assert payload["staleness"]["fnbp"] == [0.0] * spec.timesteps
        assert payload["flaps"]["fnbp"] == [0.0] * spec.timesteps

    def test_protocol_measures_reject_static_specs_fast(self):
        from repro.registry import MEASURES

        spec = _tiny_protocol_spec(timesteps=0)
        with pytest.raises(ValueError, match="dynamic"):
            MEASURES.create("convergence-time").validate_spec(spec)

    def test_preset_is_a_valid_protocol_spec(self):
        spec = PRESETS.create("protocol-convergence").validate_names()
        assert spec.measure == "convergence-time"
        assert spec.loss_rate == 0.1
        assert spec.timesteps >= 1


class TestSpecAndCliPlumbing:
    def test_spec_round_trips_the_protocol_fields(self):
        spec = _tiny_protocol_spec(loss_rate=0.25, hello_interval=0.5, tc_interval=2.0)
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        payload = spec.to_dict()
        assert payload["loss_rate"] == 0.25
        assert payload["hello_interval"] == 0.5
        assert payload["tc_interval"] == 2.0

    def test_cli_flags_reach_the_spec(self):
        args = sweep_cli.build_parser().parse_args(
            [
                "--preset",
                "protocol-convergence",
                "--loss-rate",
                "0.25",
                "--hello-interval",
                "0.5",
                "--tc-interval",
                "2.0",
            ]
        )
        spec = sweep_cli._apply_overrides(
            sweep_cli._base_spec(args, sweep_cli.build_parser()), args
        )
        assert spec.loss_rate == 0.25
        assert spec.hello_interval == 0.5
        assert spec.tc_interval == 2.0

    def test_invalid_protocol_fields_are_rejected(self):
        with pytest.raises(ValueError):
            _tiny_protocol_spec(loss_rate=1.0)
        with pytest.raises(ValueError):
            _tiny_protocol_spec(hello_interval=0.0)
        with pytest.raises(ValueError):
            _tiny_protocol_spec(tc_interval=-1.0)

    def test_example_spec_is_committed_and_loads(self):
        spec = ExperimentSpec.load(REPO_ROOT / "examples/specs/protocol_convergence_sweep.json")
        spec.validate_names()
        assert spec.measure == "convergence-time"
        assert spec.loss_rate == 0.05
        assert spec.step_interval == 2.0
