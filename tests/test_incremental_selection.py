"""Differential + property suite for dirty-set incremental selection across timesteps.

The load-bearing guarantees, in the style of the suites locking down every other fast path:

* **Cached == from-scratch.**  Selections served by the :class:`SelectionCache` of a
  dynamic trial (re-running the selector only at each step's ``StepDelta.dirty`` owners)
  are bit-identical -- selected sets *and* decision traces -- to running every registered
  selector from scratch on every node after every step, across seeded topologies of all
  three mobility models and all metric families (additive, concave, lexicographic
  composite), serial and under ``REPRO_WORKERS=2``.
* **The dirty set is exact.**  ``StepDelta.dirty`` equals the view neighborhood
  ``{u, v} ∪ N(u) ∪ N(v)`` unioned over the symmetric difference of the pre- and
  post-step link sets (over both adjacencies) plus the same neighborhood of every
  reweighted link -- no more, no less -- and is identical in incremental and rebuild mode.
* **A frozen world is free.**  A zero-movement dynamic trial produces an empty dirty set
  after step 0, so a fully warm selection cache re-runs *nothing*.
"""

from __future__ import annotations

import json

import pytest

from repro.core.selection import SelectionCache, make_selector
from repro.experiments.engine import run_experiment
from repro.experiments.runner import Trial
from repro.experiments.spec import ExperimentSpec
from repro.metrics import (
    BandwidthMetric,
    DelayMetric,
    LexicographicMetric,
    UniformWeightAssigner,
)
from repro.mobility import (
    GaussMarkovGenerator,
    LinkChurnGenerator,
    RandomWaypointGenerator,
)
from repro.registry import SELECTORS
from repro.topology.generators import FieldSpec

FIELD = FieldSpec(width=400.0, height=400.0, radius=100.0)

#: One representative per metric family: additive, concave, and the non-prefix-optimal
#: lexicographic composite that forces the generic solver paths.
METRIC_FAMILIES = [
    ("delay", DelayMetric()),
    ("bandwidth", BandwidthMetric()),
    ("lex-composite", LexicographicMetric([DelayMetric(), BandwidthMetric()])),
]

MODELS = [
    ("rwp-clustered", RandomWaypointGenerator, dict(mobile_fraction=0.2, pause_high=0.5)),
    ("gauss-markov", GaussMarkovGenerator, {}),
    ("churn", LinkChurnGenerator, dict(reweight_probability=0.3, outage_probability=0.15)),
]


def _assigners(seed: int = 9):
    return (
        UniformWeightAssigner(metric=BandwidthMetric(), seed=seed),
        UniformWeightAssigner(metric=DelayMetric(), seed=seed),
    )


def _generator(cls, kwargs, seed: int, node_count: int = 30):
    return cls(
        field=FIELD, node_count=node_count, seed=seed, weight_assigners=_assigners(), **kwargs
    )


def _adjacency_snapshot(network):
    return {node: set(network.neighbors(node)) for node in network.nodes()}


def _expected_dirty(pre_adj, post_adj, delta):
    """The spec of ``StepDelta.dirty``, computed independently from adjacency snapshots."""
    expected = set()
    for u, v in delta.added + delta.removed:
        expected |= {u, v} | pre_adj[u] | pre_adj[v] | post_adj[u] | post_adj[v]
    for u, v in delta.reweighted:
        expected |= {u, v} | post_adj[u] | post_adj[v]
    return expected


class TestStepDeltaDirtySet:
    @pytest.mark.parametrize("model_name,cls,kwargs", MODELS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_dirty_is_exactly_the_flipped_link_neighborhood(self, model_name, cls, kwargs, seed):
        dynamic = _generator(cls, kwargs, seed).dynamic()
        dynamic.views()  # exercise the view-maintaining path, not just the link diff
        for _ in range(5):
            pre_adj = _adjacency_snapshot(dynamic.network)
            delta = dynamic.advance()
            post_adj = _adjacency_snapshot(dynamic.network)
            assert set(delta.dirty) == _expected_dirty(pre_adj, post_adj, delta)

    @pytest.mark.parametrize("model_name,cls,kwargs", MODELS)
    def test_rebuild_mode_reports_the_same_dirty_set(self, model_name, cls, kwargs):
        generator = _generator(cls, kwargs, seed=7)
        incremental, rebuild = generator.dynamic(), generator.dynamic()
        rebuild.incremental = False
        incremental.views()
        for _ in range(4):
            assert incremental.advance().dirty == rebuild.advance().dirty

    def test_zero_movement_trial_has_an_empty_dirty_set(self):
        generator = _generator(
            LinkChurnGenerator, dict(reweight_probability=0.0, outage_probability=0.0), seed=5
        )
        dynamic = generator.dynamic()
        dynamic.views()
        for _ in range(4):
            delta = dynamic.advance()
            assert delta.dirty == frozenset()

    def test_step_listeners_receive_every_delta_in_order(self):
        dynamic = _generator(RandomWaypointGenerator, {}, seed=1).dynamic()
        seen = []
        dynamic.add_step_listener(seen.append)
        deltas = [dynamic.advance() for _ in range(3)]
        assert seen == deltas


def _fresh_dynamic_trial(generator, spec, metric, run_index: int = 0) -> Trial:
    return Trial(
        config=spec.sweep_config(),
        metric=metric,
        density=float(len(generator.generate(run_index))),
        run_index=run_index,
        network=generator.generate(run_index),
        generator=generator,
    )


def _spec(**overrides) -> ExperimentSpec:
    base = ExperimentSpec(
        experiment_id="incremental-selection-test",
        title="Incremental selection test",
        measure="ans-churn",
        metric="bandwidth",
        selectors=("fnbp", "topology-filtering", "qolsr-mpr2"),
        topology="rwp",
        densities=(25.0,),
        runs=2,
        timesteps=3,
        field=FIELD,
        seed=17,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestCachedSelectionEqualsFromScratch:
    @pytest.mark.parametrize("model_name,cls,kwargs", MODELS)
    @pytest.mark.parametrize("metric_name,metric", METRIC_FAMILIES)
    def test_all_selectors_bit_identical_across_steps(
        self, model_name, cls, kwargs, metric_name, metric
    ):
        """The differential anchor: cache-served results equal from-scratch selection --
        full SelectionResult equality, decision traces included -- for every registered
        selector, after every step of a seeded dynamic trial."""
        selector_names = SELECTORS.names()
        generator = _generator(cls, kwargs, seed=11)
        spec = _spec(metric="bandwidth")
        trial = _fresh_dynamic_trial(generator, spec, metric)
        dynamic = trial.dynamic_topology()

        def assert_cache_matches_scratch():
            views = dynamic.views()
            for name in selector_names:
                cached = trial.selection_cache().select_all(
                    name, metric, views, network=trial.network
                )
                selector = make_selector(name)
                scratch = {node: selector.select(view, metric) for node, view in views.items()}
                assert cached == scratch

        assert_cache_matches_scratch()
        for _ in range(3):
            dynamic.advance()
            assert_cache_matches_scratch()

    def test_interleaved_and_lagging_keys_accumulate_invalidations(self):
        """A (selector, metric) key consulted only every other step must re-run the union
        of everything dirtied since its own last selection, not just the last delta."""
        metric = BandwidthMetric()
        generator = _generator(RandomWaypointGenerator, dict(mobile_fraction=0.3), seed=2)
        trial = _fresh_dynamic_trial(generator, _spec(), metric)
        dynamic = trial.dynamic_topology()
        trial.step_selections("fnbp")
        trial.step_selections("qolsr-mpr2")
        for step in range(4):
            dynamic.advance()
            trial.step_selections("fnbp")  # consulted every step
            if step % 2 == 1:  # consulted every other step: pending dirt accumulates
                lagging = trial.step_selections("qolsr-mpr2")
                selector = make_selector("qolsr-mpr2")
                views = dynamic.views()
                scratch = {node: selector.select(view, metric) for node, view in views.items()}
                assert lagging == scratch

    def test_zero_movement_trial_reruns_no_selector_after_warmup(self, monkeypatch):
        """The cache-fully-warm anchor: on a frozen topology, steps after the first
        selection trigger zero selector invocations."""
        from repro.core import fnbp

        metric = BandwidthMetric()
        generator = _generator(
            LinkChurnGenerator, dict(reweight_probability=0.0, outage_probability=0.0), seed=5
        )
        trial = _fresh_dynamic_trial(generator, _spec(), metric)
        calls = []
        original = fnbp.FnbpSelector.select

        def counting_select(self, view, m):
            calls.append(view.owner)
            return original(self, view, m)

        monkeypatch.setattr(fnbp.FnbpSelector, "select", counting_select)
        warm = trial.step_selections("fnbp")
        assert len(calls) == len(trial.network)
        calls.clear()
        dynamic = trial.dynamic_topology()
        for _ in range(3):
            dynamic.advance()
            assert trial.step_selections("fnbp") == warm
        assert calls == []

    def test_incremental_runs_batch_prime_only_the_owners_that_rerun(self, monkeypatch):
        """select_all's shared-CSR priming covers exactly the views whose selector will
        actually re-run: all owners on a from-scratch run, only dirty-or-new owners on
        an incremental one (priming the rest would be pure waste -- their previous
        SelectionResult is reused verbatim)."""
        from repro.core import selection as selection_module
        from repro.localview import paths as paths_module

        metric = BandwidthMetric()
        generator = _generator(RandomWaypointGenerator, dict(mobile_fraction=0.3), seed=4)
        trial = _fresh_dynamic_trial(generator, _spec(), metric)
        dynamic = trial.dynamic_topology()
        primed_batches = []

        def recording_prime(views, m):
            views = list(views)
            primed_batches.append({view.owner for view in views})
            return paths_module.prime_first_hops(views, m)

        monkeypatch.setattr(selection_module, "prime_first_hops", recording_prime)
        trial.step_selections("fnbp")
        assert primed_batches.pop() == set(dynamic.views())  # from-scratch: everyone
        delta = dynamic.advance()
        assert delta.dirty  # the step really invalidated someone
        trial.step_selections("fnbp")
        # RWP keeps the node set stable, so "re-runs" is exactly the dirty set.
        assert primed_batches.pop() == set(delta.dirty)
        assert primed_batches == []

    def test_select_all_rejects_previous_without_dirty(self):
        metric = BandwidthMetric()
        generator = _generator(RandomWaypointGenerator, {}, seed=0)
        network = generator.generate(0)
        selector = make_selector("fnbp")
        results = selector.select_all(network, metric)
        with pytest.raises(ValueError, match="together"):
            selector.select_all(network, metric, previous=results)
        with pytest.raises(ValueError, match="together"):
            selector.select_all(network, metric, dirty=set())

    def test_cache_clear_forces_a_from_scratch_run(self, monkeypatch):
        from repro.core import fnbp

        metric = BandwidthMetric()
        generator = _generator(
            LinkChurnGenerator, dict(reweight_probability=0.0, outage_probability=0.0), seed=5
        )
        trial = _fresh_dynamic_trial(generator, _spec(), metric)
        calls = []
        original = fnbp.FnbpSelector.select

        def counting_select(self, view, m):
            calls.append(view.owner)
            return original(self, view, m)

        monkeypatch.setattr(fnbp.FnbpSelector, "select", counting_select)
        trial.step_selections("fnbp")
        trial.selection_cache().clear()
        trial.step_selections("fnbp")
        assert len(calls) == 2 * len(trial.network)


class TestDynamicSweepsStayBitIdentical:
    @pytest.mark.parametrize("measure", ["ans-churn", "tc-overhead", "route-stability"])
    def test_serial_and_parallel_runs_agree_with_the_cache_in_play(self, measure):
        """The engine-level half of the differential: the cache is per-trial and therefore
        per-worker, so dynamic sweeps stay bit-identical serial vs REPRO_WORKERS=2."""
        spec = _spec(measure=measure, pairs_per_run=3)
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_cache_free_reference_measurement_is_unchanged(self):
        """The measure outputs with the cache in play equal a cache-free reference that
        re-selects from scratch every step (the pre-cache behavior of the measures)."""
        from repro.metrics.assignment import canonical_edge
        from repro.mobility.measures import _selection_churn_trial

        metric = BandwidthMetric()
        spec = _spec(timesteps=4)
        generator = _generator(RandomWaypointGenerator, dict(mobile_fraction=0.3), seed=23)
        cached_payload = _selection_churn_trial(_fresh_dynamic_trial(generator, spec, metric))

        # Cache-free reference: same stepping, selections recomputed from scratch.
        trial = _fresh_dynamic_trial(generator, spec, metric)
        dynamic = trial.dynamic_topology()

        def scratch_state(name):
            selector = make_selector(name)
            sets = {n: selector.select(v, metric).selected for n, v in dynamic.views().items()}
            edges = {canonical_edge(n, r) for n, sel in sets.items() for r in sel}
            return sets, edges

        previous = {name: scratch_state(name) for name in spec.selectors}
        churn = {name: [] for name in spec.selectors}
        tc = {name: [] for name in spec.selectors}
        node_count = len(dynamic.network)
        for _ in range(spec.timesteps):
            dynamic.advance()
            for name in spec.selectors:
                sets, edges = scratch_state(name)
                churn[name].append(float(len(edges ^ previous[name][1])))
                re_advertised = sum(
                    len(sel) for n, sel in sets.items() if sel != previous[name][0].get(n)
                )
                tc[name].append(re_advertised / node_count)
                previous[name] = (sets, edges)
        assert cached_payload["churn"] == churn
        assert cached_payload["tc"] == tc


class TestSelectionCacheUnit:
    def test_invalidate_only_touches_cached_keys(self):
        cache = SelectionCache()
        metric = BandwidthMetric()
        generator = _generator(RandomWaypointGenerator, {}, seed=4)
        network = generator.generate(0)
        from repro.localview.view import LocalView

        views = LocalView.all_from_network(network)
        first = cache.select_all("fnbp", metric, views, network=network)
        cache.invalidate([network.nodes()[0]])
        # A key selected for the first time after invalidations runs from scratch anyway.
        second = cache.select_all("topology-filtering", metric, views, network=network)
        assert set(first) == set(second) == set(views)
        # Re-selecting the invalidated key with unchanged views is still bit-identical.
        assert cache.select_all("fnbp", metric, views, network=network) == first
