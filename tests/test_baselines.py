"""Tests for the baseline selections: RFC 3626 MPR, QOLSR MPR-1/MPR-2, topology filtering."""

from __future__ import annotations

import pytest

from repro.baselines import (
    OlsrMprSelector,
    QolsrMpr1Selector,
    QolsrMpr2Selector,
    TopologyFilteringSelector,
)
from repro.core import FnbpSelector
from repro.localview import LocalView
from repro.metrics import BandwidthMetric, DelayMetric
from repro.olsr.mpr import coverage_map, mpr_selectors, rfc3626_mpr
from repro.topology import Network


@pytest.fixture
def star_with_fringe() -> Network:
    """Node 0 with three neighbors; only neighbor 1 reaches the fringe nodes 7 and 8."""
    return Network.from_links(
        {
            (0, 1): {"bandwidth": 2.0, "delay": 5.0},
            (0, 2): {"bandwidth": 9.0, "delay": 1.0},
            (0, 3): {"bandwidth": 5.0, "delay": 2.0},
            (1, 7): {"bandwidth": 4.0, "delay": 1.0},
            (1, 8): {"bandwidth": 4.0, "delay": 1.0},
            (2, 7): {"bandwidth": 6.0, "delay": 3.0},
        }
    )


@pytest.fixture
def qos_choice_network() -> Network:
    """Two relays (1 strong, 2 weak) both covering the same two-hop fringe {7, 8}."""
    return Network.from_links(
        {
            (0, 1): {"bandwidth": 9.0, "delay": 1.0},
            (0, 2): {"bandwidth": 2.0, "delay": 6.0},
            (1, 7): {"bandwidth": 5.0, "delay": 2.0},
            (1, 8): {"bandwidth": 5.0, "delay": 2.0},
            (2, 7): {"bandwidth": 5.0, "delay": 2.0},
            (2, 8): {"bandwidth": 5.0, "delay": 2.0},
        }
    )


class TestRfc3626Mpr:
    def test_sole_providers_are_always_selected(self, star_with_fringe):
        view = LocalView.from_network(star_with_fringe, 0)
        mpr = rfc3626_mpr(view)
        assert 1 in mpr  # only cover of node 8
        assert 3 not in mpr  # covers nothing

    def test_greedy_covers_all_two_hop_neighbors(self, random_network_factory):
        network = random_network_factory(30, seed=5)
        for owner in list(network.nodes())[:10]:
            view = LocalView.from_network(network, owner)
            mpr = rfc3626_mpr(view)
            covered = set()
            for relay in mpr:
                covered |= view.neighbors_of(relay) & view.two_hop
            assert covered == view.two_hop
            assert mpr <= view.one_hop

    def test_empty_two_hop_neighborhood_selects_nothing(self):
        network = Network.from_links({(0, 1): {"bandwidth": 1.0}, (0, 2): {"bandwidth": 1.0}})
        view = LocalView.from_network(network, 0)
        assert rfc3626_mpr(view) == frozenset()

    def test_coverage_map(self, star_with_fringe):
        view = LocalView.from_network(star_with_fringe, 0)
        cover = coverage_map(view)
        assert cover[1] == {7, 8}
        assert cover[2] == {7}
        assert cover[3] == set()

    def test_mpr_selectors_inversion(self):
        selectors = mpr_selectors({1: frozenset({2, 3}), 4: frozenset({2})})
        assert selectors[2] == frozenset({1, 4})
        assert selectors[3] == frozenset({1})

    def test_olsr_selector_wrapper_ignores_metric(self, star_with_fringe, bandwidth, delay):
        view = LocalView.from_network(star_with_fringe, 0)
        by_bandwidth = OlsrMprSelector().select(view, bandwidth)
        by_delay = OlsrMprSelector().select(view, delay)
        assert by_bandwidth.selected == by_delay.selected == rfc3626_mpr(view)


class TestQolsrHeuristics:
    def test_phase_one_is_shared_with_rfc3626(self, star_with_fringe, bandwidth):
        view = LocalView.from_network(star_with_fringe, 0)
        for selector in (QolsrMpr1Selector(), QolsrMpr2Selector()):
            result = selector.select(view, bandwidth)
            assert 1 in result.selected  # sole provider of 8

    def test_mpr2_prefers_the_best_direct_link(self, qos_choice_network, bandwidth):
        view = LocalView.from_network(qos_choice_network, 0)
        result = QolsrMpr2Selector().select(view, bandwidth)
        assert result.selected == frozenset({1})

    def test_mpr2_with_delay_prefers_the_smallest_delay(self, qos_choice_network, delay):
        view = LocalView.from_network(qos_choice_network, 0)
        result = QolsrMpr2Selector().select(view, delay)
        assert result.selected == frozenset({1})

    def test_mpr1_breaks_coverage_ties_by_qos(self, qos_choice_network, bandwidth):
        view = LocalView.from_network(qos_choice_network, 0)
        result = QolsrMpr1Selector().select(view, bandwidth)
        assert result.selected == frozenset({1})

    def test_mpr1_prefers_coverage_over_qos(self, bandwidth):
        # Relay 1 covers both fringe nodes with a weak link; relays 2 and 3 each cover one
        # fringe node, so nobody is a sole provider.  MPR-1 (coverage first) picks just 1;
        # MPR-2 (QoS first) starts with the strong link to 2 and then still needs 1 for 8.
        network = Network.from_links(
            {
                (0, 1): {"bandwidth": 2.0},
                (0, 2): {"bandwidth": 9.0},
                (0, 3): {"bandwidth": 1.0},
                (1, 7): {"bandwidth": 5.0},
                (1, 8): {"bandwidth": 5.0},
                (2, 7): {"bandwidth": 5.0},
                (3, 8): {"bandwidth": 5.0},
            }
        )
        view = LocalView.from_network(network, 0)
        mpr1 = QolsrMpr1Selector().select(view, bandwidth)
        mpr2 = QolsrMpr2Selector().select(view, bandwidth)
        assert mpr1.selected == frozenset({1})
        assert mpr2.selected == frozenset({1, 2})

    def test_qolsr_covers_every_two_hop_neighbor(self, random_network_factory, bandwidth):
        network = random_network_factory(30, seed=6)
        for owner in list(network.nodes())[:10]:
            view = LocalView.from_network(network, owner)
            for selector in (QolsrMpr1Selector(), QolsrMpr2Selector()):
                result = selector.select(view, bandwidth)
                covered = set()
                for relay in result.selected:
                    covered |= view.neighbors_of(relay) & view.two_hop
                assert covered == view.two_hop


class TestTopologyFiltering:
    def test_advertises_all_best_first_hops(self, bandwidth):
        # Two equally good 2-hop detours to node 9: both relays are advertised (the set-size
        # weakness the paper points out), whereas FNBP keeps only one.
        network = Network.from_links(
            {
                (0, 1): {"bandwidth": 5.0},
                (0, 2): {"bandwidth": 5.0},
                (1, 9): {"bandwidth": 5.0},
                (2, 9): {"bandwidth": 5.0},
            }
        )
        view = LocalView.from_network(network, 0)
        filtering = TopologyFilteringSelector().select(view, bandwidth)
        fnbp = FnbpSelector().select(view, bandwidth)
        assert filtering.selected == frozenset({1, 2})
        assert len(fnbp.selected) == 1

    def test_direct_link_kept_when_optimal(self, bandwidth):
        network = Network.from_links(
            {(0, 1): {"bandwidth": 9.0}, (0, 2): {"bandwidth": 9.0}, (1, 2): {"bandwidth": 1.0}}
        )
        view = LocalView.from_network(network, 0)
        result = TopologyFilteringSelector().select(view, bandwidth)
        assert result.selected == frozenset()

    def test_two_hop_detour_used_for_a_weak_direct_link(self, diamond_network, bandwidth):
        view = LocalView.from_network(diamond_network, 0)
        result = TopologyFilteringSelector().select(view, bandwidth)
        assert 1 in result.selected

    def test_reduction_ablation_flag(self, random_network_factory, bandwidth):
        network = random_network_factory(25, seed=9)
        sizes_with, sizes_without = [], []
        for owner in list(network.nodes())[:8]:
            view = LocalView.from_network(network, owner)
            sizes_with.append(len(TopologyFilteringSelector().select(view, bandwidth).selected))
            sizes_without.append(
                len(TopologyFilteringSelector(apply_reduction=False).select(view, bandwidth).selected)
            )
        assert sum(sizes_with) <= sum(sizes_without)

    def test_covers_every_two_hop_neighbor_with_a_two_hop_path(self, random_network_factory, delay):
        network = random_network_factory(25, seed=10)
        for owner in list(network.nodes())[:8]:
            view = LocalView.from_network(network, owner)
            result = TopologyFilteringSelector().select(view, delay)
            for target in view.two_hop:
                relays = view.common_relays(target)
                assert relays & result.selected, f"two-hop neighbor {target} left uncovered"
