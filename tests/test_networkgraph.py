"""The shared network-level CSR: windowing invariants and batched-kernel bit-identity.

Two families of pins.  First, :class:`NetworkGraph` windowing: a :class:`LocalView`
attached to a shared graph slices it by *index* (rows and slots into the parent arrays),
so in-place weight patches must be visible through existing windows, structural rebuilds
must invalidate them, and the sanctioned per-view mutation (``update_link``) must detach
exactly the touched view.  Second, the canonical-summation-order guarantee of the batched
additive kernel: its distance labels are compared against the scalar Dijkstra's with
exact ``==`` -- not ``approx`` -- on genuinely non-representable float weights, because
both accumulate every path cost as the same left-to-right fold of single additions (the
batched side never substitutes a reduction with a different association order).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.localview import LocalView, NetworkGraph, all_first_hops, prime_first_hops
from repro.localview.batched import batched_additive_labels, batched_all_first_hops
from repro.localview.compactgraph import best_values
from repro.metrics import BandwidthMetric, DelayMetric, LexicographicMetric
from repro.topology import FieldSpec, FixedCountNetworkGenerator

BANDWIDTH = BandwidthMetric()
DELAY = DelayMetric()
COMPOSITE = LexicographicMetric([DelayMetric(), BandwidthMetric()])


def float_weighted_network(seed: int, node_count: int = 24):
    """A seeded unit-disk network with *irrational-ish* float weights.

    ``rng.uniform`` draws are almost never exactly representable sums of each other, so
    any reassociation of a path's additions would move the accumulated cost by an ulp --
    exactly what the exact-equality pins below are designed to catch.
    """
    network = FixedCountNetworkGenerator(
        field=FieldSpec(width=320.0, height=320.0, radius=110.0),
        node_count=node_count,
        seed=seed,
        restrict_to_largest_component=True,
    ).generate()
    rng = random.Random(seed * 6007 + 3)
    for u, v in sorted(network.links()):
        network.add_link(u, v, bandwidth=rng.uniform(0.5, 9.5), delay=rng.uniform(0.05, 7.5))
    return network


class TestWindowing:
    def test_window_members_match_the_view_and_hold_indices_only(self):
        network = float_weighted_network(0)
        ng = NetworkGraph.from_network(network)
        views = LocalView.all_from_network(network, network_graph=ng)
        for owner, view in views.items():
            window = view.window()
            assert window is not None and window.is_current()
            members = window.member_nodes()
            assert members[0] == owner
            assert members[1 : 1 + window.one_hop_count] == sorted(view.one_hop)
            assert members[1 + window.one_hop_count :] == sorted(view.two_hop)
            # Indices only: the arrays index into the parent, they carry no weights.
            assert window.members.dtype == np.int64 and window.slots.dtype == np.int64
            assert window.slots.size == 0 or window.slots.max() < ng.indices.size

    def test_weight_patches_are_visible_through_existing_windows(self):
        """patch_weights rewrites the shared arrays in place: windows cut before the
        patch read the new values without being re-cut, and stay current."""
        network = float_weighted_network(1)
        ng = NetworkGraph.from_network(network)
        u, v = sorted(network.links())[0]
        owner = u
        window = ng.window(owner)
        slot_array_before = ng.slot_values(DELAY)
        before = window.weights(DELAY).copy()
        network.set_link_weight(u, v, DELAY.name, 123.456)
        ng.patch_weights(network, [(u, v)])
        assert window.is_current()  # weight patches do not invalidate windows
        # Same array object, patched in place -- references held by kernels stay valid.
        assert ng.slot_values(DELAY) is slot_array_before
        after = window.weights(DELAY)
        assert 123.456 in after.tolist()
        assert not np.array_equal(before, after)

    def test_rebuild_invalidates_every_outstanding_window(self):
        network = float_weighted_network(2)
        ng = NetworkGraph.from_network(network)
        windows = [ng.window(node) for node in network.nodes()[:5]]
        generation = ng.generation
        ng.rebuild(network)
        assert ng.generation == generation + 1
        assert all(not w.is_current() for w in windows)
        assert ng.window(network.nodes()[0]).is_current()

    def test_snapshot_isolation_from_later_network_mutations(self):
        """The build snapshots attribute dicts: mutating the source network afterwards
        must not leak into already-extracted weight arrays until patch_weights."""
        network = float_weighted_network(3)
        ng = NetworkGraph.from_network(network)
        values = ng.edge_values(DELAY).copy()
        u, v = sorted(network.links())[0]
        network.set_link_weight(u, v, DELAY.name, 999.0)
        assert np.array_equal(ng.edge_values(DELAY), values)  # unchanged until patched
        ng.patch_weights(network, [(u, v)])
        assert not np.array_equal(ng.edge_values(DELAY), values)

    def test_update_link_detaches_exactly_the_touched_view(self):
        network = float_weighted_network(4)
        ng = NetworkGraph.from_network(network)
        views = LocalView.all_from_network(network, network_graph=ng)
        u, v = sorted(network.links())[0]
        views[u].update_link(u, v, delay=3.25)
        assert views[u].network_graph() is None and views[u].window() is None
        for owner, view in views.items():
            if owner != u:
                assert view.network_graph() is ng, owner

    def test_composite_metrics_are_never_materialized(self):
        network = float_weighted_network(5)
        ng = NetworkGraph.from_network(network)
        assert ng.edge_values(COMPOSITE) is None
        assert ng.slot_values(COMPOSITE) is None
        assert ng.sorted_edges(COMPOSITE) is None
        views = LocalView.all_from_network(network, network_graph=ng)
        assert batched_all_first_hops(ng, list(views.values()), COMPOSITE) is None


class TestPriming:
    def test_primed_views_answer_auto_solves_from_the_batch(self):
        network = float_weighted_network(6)
        ng = NetworkGraph.from_network(network)
        views = LocalView.all_from_network(network, network_graph=ng)
        primed = prime_first_hops(views.values(), DELAY)
        assert primed == len(views)
        view = views[network.nodes()[0]]
        cached = view._first_hops[DELAY.cache_token()]
        assert all_first_hops(view, DELAY) is cached  # auto dispatch serves the batch
        # Explicit-method calls bypass the cache (method comparisons stay honest).
        assert all_first_hops(view, DELAY, method="owner-dijkstra") is not cached

    def test_priming_is_idempotent_and_skips_detached_views(self):
        network = float_weighted_network(7)
        ng = NetworkGraph.from_network(network)
        views = LocalView.all_from_network(network, network_graph=ng)
        u, v = sorted(network.links())[0]
        views[u].update_link(u, v, delay=1.125)  # detached: must be skipped, not crash
        assert prime_first_hops(views.values(), BANDWIDTH) == len(views) - 1
        assert prime_first_hops(views.values(), BANDWIDTH) == 0  # already primed

    def test_scalar_solves_never_populate_the_prime_cache(self):
        network = float_weighted_network(8)
        ng = NetworkGraph.from_network(network)
        views = LocalView.all_from_network(network, network_graph=ng)
        view = views[network.nodes()[0]]
        all_first_hops(view, DELAY)
        assert DELAY.cache_token() not in view._first_hops


class TestCanonicalSummationOrder:
    @pytest.mark.parametrize("seed", range(8))
    def test_batched_additive_labels_equal_scalar_dijkstra_exactly(self, seed):
        """Exact ``==`` on every label, no tolerance: the batched kernel must reproduce
        the scalar solver's float path costs bit-for-bit (same per-edge fold of single
        additions, candidates combined only through exact min)."""
        network = float_weighted_network(seed)
        ng = NetworkGraph.from_network(network)
        owners = network.nodes()
        labels = batched_additive_labels(ng, owners, DELAY)
        assert labels is not None
        for owner in owners:
            view = LocalView.from_network(network, owner)
            cg = view.compact_graph(DELAY)
            scalar = {
                cg.nodes[i]: value
                for i, value in best_values(cg, cg.index[owner], DELAY).items()
            }
            assert labels[owner] == scalar, owner  # exact, not approx

    @pytest.mark.parametrize("seed", range(8))
    def test_batched_first_hops_equal_scalar_on_float_weights(self, seed):
        network = float_weighted_network(seed)
        ng = NetworkGraph.from_network(network)
        views = LocalView.all_from_network(network, network_graph=ng)
        for metric in (BANDWIDTH, DELAY):
            batch = batched_all_first_hops(ng, list(views.values()), metric)
            for owner in views:
                fresh = LocalView.from_network(network, owner)
                assert batch[owner] == all_first_hops(fresh, metric), (owner, metric.name)
