"""Tests for the lexicographic multi-criterion metric and the ``≺`` preference operator."""

from __future__ import annotations

import math

import pytest

from repro.metrics import (
    BandwidthMetric,
    DelayMetric,
    EnergyCostMetric,
    LexicographicMetric,
    preference_key,
    preferred_neighbor,
    rank_neighbors,
)


@pytest.fixture
def bw_then_energy():
    return LexicographicMetric([BandwidthMetric(), EnergyCostMetric()])


class TestLexicographicMetric:
    def test_requires_at_least_one_criterion(self):
        with pytest.raises(ValueError):
            LexicographicMetric([])

    def test_default_name_mentions_components(self, bw_then_energy):
        assert bw_then_energy.name == "lex(bandwidth,energy_cost)"

    def test_identity_and_worst_are_componentwise(self, bw_then_energy):
        assert bw_then_energy.identity == (math.inf, 0.0)
        assert bw_then_energy.worst == (0.0, math.inf)

    def test_combine_is_componentwise(self, bw_then_energy):
        assert bw_then_energy.combine((5.0, 2.0), (3.0, 4.0)) == (3.0, 6.0)

    def test_primary_criterion_dominates(self, bw_then_energy):
        assert bw_then_energy.is_better((5.0, 100.0), (4.0, 1.0))

    def test_secondary_breaks_primary_ties(self, bw_then_energy):
        assert bw_then_energy.is_better((5.0, 1.0), (5.0, 3.0))
        assert not bw_then_energy.is_better((5.0, 3.0), (5.0, 1.0))

    def test_values_equal_requires_all_components(self, bw_then_energy):
        assert bw_then_energy.values_equal((5.0, 2.0), (5.0, 2.0))
        assert not bw_then_energy.values_equal((5.0, 2.0), (5.0, 3.0))

    def test_path_value_over_links(self, bw_then_energy):
        value = bw_then_energy.path_value([(5.0, 1.0), (3.0, 2.0), (4.0, 1.0)])
        assert value == (3.0, 4.0)

    def test_usability_follows_the_primary_criterion(self, bw_then_energy):
        assert bw_then_energy.is_usable((2.0, math.inf))
        assert not bw_then_energy.is_usable((0.0, 1.0))

    def test_link_value_from_attributes_builds_tuple(self, bw_then_energy):
        value = bw_then_energy.link_value_from_attributes({"bandwidth": 4.0, "energy_cost": 2.0})
        assert value == (4.0, 2.0)

    def test_arity_mismatch_raises(self, bw_then_energy):
        with pytest.raises(TypeError):
            bw_then_energy.is_better((1.0,), (2.0, 3.0))

    def test_sort_key_orders_lexicographically(self, bw_then_energy):
        better = bw_then_energy.sort_key((5.0, 1.0))
        worse = bw_then_energy.sort_key((5.0, 2.0))
        much_worse = bw_then_energy.sort_key((4.0, 0.5))
        assert better < worse < much_worse

    def test_composite_drives_path_solver(self, bw_then_energy):
        """The composite metric plugs into the generic best-path machinery unchanged."""
        import networkx as nx

        from repro.localview.paths import best_value_between

        graph = nx.Graph()
        graph.add_edge(0, 1, bandwidth=5.0, energy_cost=5.0)
        graph.add_edge(1, 3, bandwidth=5.0, energy_cost=5.0)
        graph.add_edge(0, 2, bandwidth=5.0, energy_cost=1.0)
        graph.add_edge(2, 3, bandwidth=5.0, energy_cost=1.0)
        value = best_value_between(graph, 0, 3, bw_then_energy)
        assert value == (5.0, 2.0)


class TestPreferenceOperator:
    def test_preferred_neighbor_picks_best_link(self):
        metric = BandwidthMetric()
        links = {1: 3.0, 2: 7.0, 3: 5.0}
        assert preferred_neighbor(links, metric, links.__getitem__) == 2

    def test_preferred_neighbor_breaks_ties_by_smaller_id(self):
        metric = BandwidthMetric()
        links = {4: 5.0, 2: 5.0, 9: 5.0}
        assert preferred_neighbor(links, metric, links.__getitem__) == 2

    def test_preferred_neighbor_for_delay_prefers_smaller_values(self):
        metric = DelayMetric()
        links = {1: 3.0, 2: 7.0}
        assert preferred_neighbor(links, metric, links.__getitem__) == 1

    def test_preferred_neighbor_empty_returns_none(self):
        assert preferred_neighbor([], BandwidthMetric(), lambda n: 1.0) is None

    def test_rank_neighbors_full_order(self):
        metric = BandwidthMetric()
        links = {1: 3.0, 2: 7.0, 3: 7.0, 4: 1.0}
        assert list(rank_neighbors(links, metric, links.__getitem__)) == [2, 3, 1, 4]

    def test_preference_key_is_sortable(self):
        metric = DelayMetric()
        assert preference_key(metric, 1.0, 5) < preference_key(metric, 2.0, 1)
        assert preference_key(metric, 2.0, 1) < preference_key(metric, 2.0, 2)
