"""Tests for the link-weight assigners (uniform random as in the paper, and the others)."""

from __future__ import annotations

import pytest

from repro.metrics import (
    BandwidthMetric,
    ConstantWeightAssigner,
    DelayMetric,
    DistanceProportionalAssigner,
    ExplicitWeightAssigner,
    UniformWeightAssigner,
    canonical_edge,
)


EDGES = [(1, 2), (2, 3), (3, 1)]
POSITIONS = {1: (0.0, 0.0), 2: (30.0, 40.0), 3: (0.0, 100.0)}


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)


class TestUniformAssigner:
    def test_weights_within_interval(self):
        assigner = UniformWeightAssigner(metric=BandwidthMetric(), low=2.0, high=4.0, seed=1)
        weights = assigner.assign(EDGES, POSITIONS)
        assert set(weights) == {canonical_edge(*edge) for edge in EDGES}
        assert all(2.0 <= value <= 4.0 for value in weights.values())

    def test_deterministic_per_seed_and_edge_order_independent(self):
        assigner = UniformWeightAssigner(metric=DelayMetric(), low=1.0, high=10.0, seed=3)
        forward = assigner.assign(EDGES, POSITIONS)
        backward = assigner.assign([(b, a) for a, b in reversed(EDGES)], POSITIONS)
        assert forward == backward

    def test_different_seeds_give_different_weights(self):
        first = UniformWeightAssigner(metric=DelayMetric(), seed=1).assign(EDGES, POSITIONS)
        second = UniformWeightAssigner(metric=DelayMetric(), seed=2).assign(EDGES, POSITIONS)
        assert first != second

    def test_different_metrics_get_independent_draws(self):
        bandwidth = UniformWeightAssigner(metric=BandwidthMetric(), seed=1).assign(EDGES, POSITIONS)
        delay = UniformWeightAssigner(metric=DelayMetric(), seed=1).assign(EDGES, POSITIONS)
        assert bandwidth != delay

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            UniformWeightAssigner(metric=BandwidthMetric(), low=5.0, high=2.0)


class TestOtherAssigners:
    def test_constant_assigner(self):
        weights = ConstantWeightAssigner(metric=DelayMetric(), value=2.5).assign(EDGES, POSITIONS)
        assert set(weights.values()) == {2.5}

    def test_distance_proportional_assigner(self):
        assigner = DistanceProportionalAssigner(metric=DelayMetric(), scale=0.1, offset=1.0)
        weights = assigner.assign([(1, 2)], POSITIONS)
        assert weights[(1, 2)] == pytest.approx(1.0 + 0.1 * 50.0)

    def test_explicit_assigner_uses_table(self):
        table = {(2, 1): 3.0, (2, 3): 4.0, (1, 3): 5.0}
        weights = ExplicitWeightAssigner(metric=BandwidthMetric(), weights=table).assign(EDGES, POSITIONS)
        assert weights[(1, 2)] == 3.0
        assert weights[(2, 3)] == 4.0

    def test_explicit_assigner_missing_edge(self):
        with pytest.raises(ValueError):
            ExplicitWeightAssigner(metric=BandwidthMetric(), weights={(1, 2): 3.0}).assign(EDGES, POSITIONS)

    def test_explicit_assigner_requires_table(self):
        with pytest.raises(ValueError):
            ExplicitWeightAssigner(metric=BandwidthMetric()).assign(EDGES, POSITIONS)
