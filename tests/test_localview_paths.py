"""Tests for the best-path solver, the first-hop sets and the RNG reduction."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.localview import (
    LocalView,
    all_first_hops,
    best_value_between,
    best_values_from,
    dominated_links,
    enumerate_best_paths,
    first_hops_to,
    path_value,
    qos_rng_reduce,
)
from repro.metrics import BandwidthMetric, DelayMetric
from repro.papergraphs import FIGURE2_OWNER, figure2_network


def _figure2_view():
    return LocalView.from_network(figure2_network(), FIGURE2_OWNER)


class TestBestValues:
    def test_delay_matches_networkx_dijkstra(self, grid_network, delay):
        graph = grid_network.graph
        ours = best_values_from(graph, 0, delay)
        reference = nx.single_source_dijkstra_path_length(graph, 0, weight="delay")
        assert set(ours) == set(reference)
        for node, value in reference.items():
            assert ours[node] == pytest.approx(value)

    def test_bandwidth_is_widest_path(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, bandwidth=2.0)
        graph.add_edge(1, 3, bandwidth=9.0)
        graph.add_edge(0, 2, bandwidth=5.0)
        graph.add_edge(2, 3, bandwidth=4.0)
        values = best_values_from(graph, 0, BandwidthMetric())
        assert values[3] == 4.0  # via 2, bottleneck 4 beats via 1 (bottleneck 2)

    def test_excluded_nodes_are_not_traversed(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, delay=1.0)
        graph.add_edge(1, 2, delay=1.0)
        values = best_values_from(graph, 0, DelayMetric(), excluded=(1,))
        assert 2 not in values
        assert values == {0: 0.0}

    def test_source_excluded_or_missing_gives_empty(self, delay):
        graph = nx.Graph()
        graph.add_edge(0, 1, delay=1.0)
        assert best_values_from(graph, 0, delay, excluded=(0,)) == {}
        assert best_values_from(graph, 9, delay) == {}

    def test_best_value_between_unreachable_is_worst(self, delay, bandwidth):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_node(1)
        assert best_value_between(graph, 0, 1, delay) == math.inf
        assert best_value_between(graph, 0, 1, bandwidth) == 0.0

    def test_path_value_evaluates_true_weights(self, line_network, bandwidth, delay):
        assert path_value(line_network.graph, [0, 1, 2, 3], bandwidth) == 3.0
        assert path_value(line_network.graph, [0, 1, 2, 3], delay) == 4.0

    def test_path_value_rejects_broken_paths(self, line_network, delay):
        with pytest.raises(KeyError):
            path_value(line_network.graph, [0, 2], delay)
        with pytest.raises(ValueError):
            path_value(line_network.graph, [], delay)


class TestFirstHops:
    def test_paper_example_fp_u_v3(self, bandwidth):
        """The paper: fP_BW(u, v3) = {v1, v2} with value 4."""
        result = first_hops_to(_figure2_view(), 3, bandwidth)
        assert result.best_value == 4.0
        assert result.first_hops == frozenset({1, 2})
        assert not result.direct_link_is_optimal()

    def test_paper_example_v4_reached_through_three_hop_path(self, bandwidth):
        """The paper: u should reach v4 through u-v1-v5-v4 (bandwidth 5), not directly (3)."""
        result = first_hops_to(_figure2_view(), 4, bandwidth)
        assert result.best_value == 5.0
        assert result.first_hops == frozenset({1})

    def test_paper_example_direct_link_optimal_for_v7(self, bandwidth):
        result = first_hops_to(_figure2_view(), 7, bandwidth)
        assert result.direct_link_is_optimal()

    def test_paper_example_invisible_link_limits_v9(self, bandwidth):
        """u cannot see (v8, v9), so its best path to v9 has bandwidth 3 (via v7)."""
        result = first_hops_to(_figure2_view(), 9, bandwidth)
        assert result.best_value == 3.0
        assert result.first_hops == frozenset({7})

    def test_owner_as_target_rejected(self, bandwidth):
        with pytest.raises(ValueError):
            first_hops_to(_figure2_view(), FIGURE2_OWNER, bandwidth)

    def test_unknown_target_is_unreachable(self, bandwidth):
        result = first_hops_to(_figure2_view(), 999, bandwidth)
        assert not result.reachable
        assert result.best_value == bandwidth.worst

    def test_all_first_hops_covers_every_known_target(self, bandwidth):
        view = _figure2_view()
        results = all_first_hops(view, bandwidth)
        assert set(results) == set(view.known_targets())
        assert all(results[target].reachable for target in view.known_targets())

    def test_all_first_hops_fast_methods_match_reference(self, grid_network, bandwidth, delay):
        for node in (0, 5, 10, 15):
            view = LocalView.from_network(grid_network, node)
            for metric in (bandwidth, delay):
                fast = all_first_hops(view, metric, method="auto")
                reference = all_first_hops(view, metric, method="per-target")
                assert fast == reference

    def test_all_first_hops_method_validation(self, bandwidth, delay):
        view = _figure2_view()
        with pytest.raises(ValueError):
            all_first_hops(view, bandwidth, method="owner-dijkstra")
        with pytest.raises(ValueError):
            all_first_hops(view, delay, method="bottleneck-forest")
        with pytest.raises(ValueError):
            all_first_hops(view, bandwidth, method="nonsense")

    def test_first_hops_are_always_one_hop_neighbors(self, random_network_factory, bandwidth):
        network = random_network_factory(25, seed=3)
        for node in list(network.nodes())[:10]:
            view = LocalView.from_network(network, node)
            for result in all_first_hops(view, bandwidth).values():
                assert result.first_hops <= view.one_hop


class TestEnumerateBestPaths:
    def test_enumerates_all_optimal_paths(self, bandwidth):
        view = _figure2_view()
        paths = enumerate_best_paths(view.graph, FIGURE2_OWNER, 3, bandwidth)
        assert [FIGURE2_OWNER, 1, 3] in paths
        assert [FIGURE2_OWNER, 2, 3] in paths
        assert all(path[0] == FIGURE2_OWNER and path[-1] == 3 for path in paths)

    def test_every_enumerated_path_has_the_optimal_value(self, grid_network, delay):
        best = best_value_between(grid_network.graph, 0, 15, delay)
        for path in enumerate_best_paths(grid_network.graph, 0, 15, delay):
            assert path_value(grid_network.graph, path, delay) == pytest.approx(best)

    def test_unreachable_gives_empty_list(self, delay):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_node(1)
        assert enumerate_best_paths(graph, 0, 1, delay) == []

    def test_max_paths_guard(self, bandwidth):
        graph = nx.Graph()
        # A ladder of parallel equal-bandwidth two-hop segments: optimal paths multiply.
        for level in range(6):
            graph.add_edge((level, "a"), (level + 1, "a"), bandwidth=5.0)
        # add parallel alternatives
        for level in range(6):
            graph.add_edge((level, "a"), (level, "b"), bandwidth=5.0)
            graph.add_edge((level, "b"), (level + 1, "a"), bandwidth=5.0)
        with pytest.raises(RuntimeError):
            enumerate_best_paths(graph, (0, "a"), (6, "a"), bandwidth, max_paths=3)


class TestRngReduction:
    def test_dominated_link_removed_for_bandwidth(self, bandwidth):
        graph = nx.Graph()
        graph.add_edge(1, 2, bandwidth=1.0)
        graph.add_edge(1, 3, bandwidth=5.0)
        graph.add_edge(3, 2, bandwidth=4.0)
        reduced = qos_rng_reduce(graph, bandwidth)
        assert not reduced.has_edge(1, 2)
        assert reduced.has_edge(1, 3) and reduced.has_edge(3, 2)
        assert dominated_links(graph, bandwidth) == {(1, 2)}

    def test_dominated_link_removed_for_delay(self, delay):
        graph = nx.Graph()
        graph.add_edge(1, 2, delay=10.0)
        graph.add_edge(1, 3, delay=2.0)
        graph.add_edge(3, 2, delay=3.0)
        reduced = qos_rng_reduce(graph, delay)
        assert not reduced.has_edge(1, 2)

    def test_link_kept_when_no_witness_dominates_both_legs(self, bandwidth):
        graph = nx.Graph()
        graph.add_edge(1, 2, bandwidth=4.0)
        graph.add_edge(1, 3, bandwidth=5.0)
        graph.add_edge(3, 2, bandwidth=3.0)  # second leg is worse than the direct link
        reduced = qos_rng_reduce(graph, bandwidth)
        assert reduced.has_edge(1, 2)

    def test_reduction_preserves_widest_path_values(self, random_network_factory, bandwidth):
        """A removed link is always the strict bottleneck of a triangle, so the maximum
        spanning tree survives the reduction and every pair's widest-path value is intact."""
        network = random_network_factory(25, seed=8)
        graph = network.graph
        reduced = qos_rng_reduce(graph, bandwidth)
        nodes = sorted(graph.nodes)
        source = nodes[0]
        original = best_values_from(graph, source, bandwidth)
        filtered = best_values_from(reduced, source, bandwidth)
        assert set(original) == set(filtered)
        for node, value in original.items():
            assert filtered[node] == pytest.approx(value)

    def test_input_graph_is_not_modified(self, bandwidth):
        graph = nx.Graph()
        graph.add_edge(1, 2, bandwidth=1.0)
        graph.add_edge(1, 3, bandwidth=5.0)
        graph.add_edge(3, 2, bandwidth=4.0)
        qos_rng_reduce(graph, bandwidth)
        assert graph.has_edge(1, 2)
