"""Tests for the evaluation harness: configs, statistics, result containers and sweeps."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments import (
    BANDWIDTH_DENSITIES,
    DELAY_DENSITIES,
    ExperimentResult,
    SeriesPoint,
    Summary,
    SweepConfig,
    build_trial,
    config_for_profile,
    paper_config,
    qos_overhead,
    quick_config,
    render_report,
    run_ans_size_experiment,
    run_overhead_experiment,
    smoke_config,
    summarize,
    write_json,
    write_report,
)
from repro.metrics import BandwidthMetric, DelayMetric


class TestConfig:
    def test_paper_config_matches_the_evaluation_section(self):
        config = paper_config("bandwidth")
        assert config.densities == BANDWIDTH_DENSITIES
        assert config.runs == 100
        assert config.pairs_per_run == 1
        assert config.field.width == 1000.0 and config.field.radius == 100.0
        assert paper_config("delay").densities == DELAY_DENSITIES

    def test_profiles_resolve(self):
        assert config_for_profile("quick", "delay").runs < paper_config("delay").runs
        assert config_for_profile("smoke").runs == 1
        with pytest.raises(KeyError):
            config_for_profile("enormous")

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SweepConfig(densities=())
        with pytest.raises(ValueError):
            SweepConfig(densities=(10,), runs=0)
        with pytest.raises(ValueError):
            SweepConfig(densities=(10,), weight_low=5.0, weight_high=2.0)
        with pytest.raises(ValueError):
            SweepConfig(densities=(-3,))

    def test_with_overrides(self):
        config = quick_config().with_overrides(runs=7, seed=9)
        assert config.runs == 7 and config.seed == 9
        assert quick_config().runs != 7


class TestStats:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(1.2909944, rel=1e-6)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        low, high = summary.confidence_interval()
        assert low < summary.mean < high

    def test_summarize_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.stderr == 0.0

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert all(math.isnan(v) for v in summary.confidence_interval())


class TestOverheadDefinition:
    def test_bandwidth_overhead_is_fraction_of_optimal_lost(self):
        assert qos_overhead(BandwidthMetric(), achieved=8.0, optimal=10.0) == pytest.approx(0.2)
        assert qos_overhead(BandwidthMetric(), achieved=10.0, optimal=10.0) == 0.0

    def test_delay_overhead_is_fraction_of_optimal_added(self):
        assert qos_overhead(DelayMetric(), achieved=12.0, optimal=10.0) == pytest.approx(0.2)
        assert qos_overhead(DelayMetric(), achieved=10.0, optimal=10.0) == 0.0

    def test_zero_optimal_yields_nan(self):
        assert math.isnan(qos_overhead(DelayMetric(), achieved=1.0, optimal=0.0))


class TestResultContainers:
    def _result(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            metric_name="bandwidth",
            x_label="density",
            y_label="value",
        )
        result.add_point("fnbp", SeriesPoint(density=10.0, summary=summarize([1.0, 2.0])))
        result.add_point("fnbp", SeriesPoint(density=20.0, summary=summarize([3.0])))
        result.add_point("qolsr-mpr2", SeriesPoint(density=10.0, summary=summarize([4.0])))
        result.add_note("a note")
        return result

    def test_series_access(self):
        result = self._result()
        assert result.densities() == [10.0, 20.0]
        assert result.series["fnbp"].mean_at(10.0) == pytest.approx(1.5)
        assert math.isnan(result.series["qolsr-mpr2"].mean_at(20.0))
        assert result.series["fnbp"].densities() == [10.0, 20.0]

    def test_table_rendering(self):
        table = self._result().to_table()
        assert "figX" in table and "density" in table
        assert "fnbp" in table and "qolsr-mpr2" in table
        assert "a note" in table

    def test_to_dict_round_trips_through_json(self):
        payload = json.dumps(self._result().to_dict())
        parsed = json.loads(payload)
        assert parsed["experiment_id"] == "figX"
        assert len(parsed["series"]["fnbp"]) == 2

    def test_reporting_helpers(self, tmp_path):
        results = {6: self._result()}
        text = render_report(results, header="profile=test")
        assert text.startswith("profile=test")
        report_path = write_report(results, tmp_path / "report.txt")
        assert report_path.read_text().startswith("profile=test") or "figX" in report_path.read_text()
        json_path = write_json(results, tmp_path / "results.json")
        assert "figX" in json.loads(json_path.read_text())


class TestTrialsAndSweeps:
    def test_build_trial_is_deterministic_and_connected(self):
        config = smoke_config("bandwidth")
        metric = BandwidthMetric()
        first = build_trial(config, metric, config.densities[0], 0)
        second = build_trial(config, metric, config.densities[0], 0)
        assert first.network.nodes() == second.network.nodes()
        assert first.network.links() == second.network.links()
        assert first.network.is_connected()
        first.network.validate_metric_coverage(metric)

    def test_trial_caches_views_and_selections(self):
        config = smoke_config("bandwidth")
        trial = build_trial(config, BandwidthMetric(), config.densities[0], 0)
        assert trial.views() is trial.views()
        assert trial.selections("fnbp") is trial.selections("fnbp")
        assert trial.advertised_topology("fnbp") is trial.advertised_topology("fnbp")

    def test_sampling_helpers(self):
        config = smoke_config("bandwidth")
        trial = build_trial(config, BandwidthMetric(), config.densities[0], 0)
        nodes = trial.sample_nodes(5, "test")
        assert len(nodes) == min(5, len(trial.network))
        assert set(nodes) <= set(trial.network.nodes())
        pairs = trial.sample_pairs(3)
        assert len(pairs) == 3
        assert all(s != d for s, d in pairs)

    def test_ans_size_experiment_produces_a_full_grid(self):
        config = smoke_config("bandwidth")
        result = run_ans_size_experiment(config, BandwidthMetric(), experiment_id="fig6-test")
        assert set(result.series) == set(config.selectors)
        for series in result.series.values():
            assert [point.density for point in series.points] == list(config.densities)
            for point in series.points:
                assert point.summary.count > 0
                assert point.summary.mean >= 0.0

    def test_overhead_experiment_produces_bounded_overheads(self):
        config = smoke_config("delay")
        result = run_overhead_experiment(config, DelayMetric(), experiment_id="fig9-test")
        assert set(result.series) == set(config.selectors)
        for series in result.series.values():
            for point in series.points:
                if point.summary.count:
                    assert point.summary.mean >= -1e-9
                assert 0.0 <= point.extra["delivery_ratio"] <= 1.0

    def test_progress_callback_is_invoked(self):
        messages = []
        config = smoke_config("bandwidth")
        run_ans_size_experiment(config, BandwidthMetric(), progress=messages.append)
        assert messages and all("density" in message for message in messages)
