"""Tests of the FNBP loop guard: the paper's Figure 4 pathology and reachability properties."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import FnbpSelector, LoopGuardPolicy, covering_relays
from repro.localview import LocalView
from repro.metrics import BandwidthMetric, DelayMetric
from repro.papergraphs.figure4 import A, B, C, D, E, figure4_network
from repro.routing import HopByHopRouter, advertise
from tests.test_properties_first_hops import random_weighted_networks


def _select(network, owner, guard):
    view = LocalView.from_network(network, owner)
    return FnbpSelector(loop_guard=guard).select(view, BandwidthMetric())


class TestFigure4:
    def test_without_guard_a_and_b_defer_to_each_other(self):
        network = figure4_network()
        result_a = _select(network, A, LoopGuardPolicy.OFF)
        result_b = _select(network, B, LoopGuardPolicy.OFF)
        # Mutual deferral: A relies on B for E, B relies on A for E, and D is selected by
        # neither, which is exactly the loop the paper describes.
        assert covering_relays(result_a)[E] == B
        assert covering_relays(result_b)[E] == A
        assert D not in result_a.selected
        assert D not in result_b.selected

    def test_with_guard_the_smallest_id_node_selects_the_adjacent_relay(self):
        network = figure4_network()
        result_a = _select(network, A, LoopGuardPolicy.ADJACENT_TO_TARGET)
        result_b = _select(network, B, LoopGuardPolicy.ADJACENT_TO_TARGET)
        # A (smallest id among {A, B, D}) must take responsibility and select D.
        assert D in result_a.selected
        assert covering_relays(result_a)[E] == D
        # B keeps deferring (its id is not the smallest), exactly as in the paper.
        assert covering_relays(result_b)[E] == A

    def test_guard_only_fires_for_the_smallest_id(self):
        network = figure4_network()
        result_b = _select(network, B, LoopGuardPolicy.ADJACENT_TO_TARGET)
        reasons = {decision.reason for decision in result_b.decisions if decision.target == E}
        assert reasons == {"covered-by-existing-ans"}

    def test_literal_guard_does_not_select_the_adjacent_relay(self):
        """The printed pseudocode (ablation) cannot repair Figure 4: it never selects D."""
        network = figure4_network()
        result_a = _select(network, A, LoopGuardPolicy.LITERAL)
        assert D not in result_a.selected

    def test_guarded_advertised_topology_reaches_e(self):
        network = figure4_network()
        metric = BandwidthMetric()
        advertised = advertise(network, FnbpSelector(), metric)
        router = HopByHopRouter(network, advertised, metric)
        for source in (A, B, C):
            outcome = router.link_state_route(source, E)
            assert outcome.delivered
            assert outcome.path[-2] == D  # the only physical access to E


class TestReachabilityProperty:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(network=random_weighted_networks(max_nodes=10))
    def test_unreachable_destinations_are_never_in_the_two_hop_neighborhood(self, network):
        """What the identifier guard actually guarantees -- and what it does not.

        The guard makes every destination within two hops of a source reachable over the
        advertised topology (that is the Figure 4 repair).  It does *not* guarantee global
        reachability for concave metrics: two distant nodes can still defer to each other for
        a target further away when a third, smaller-id node on the tied best paths has no
        coverage problem of its own and therefore never takes responsibility.  This is a
        reproduction finding documented in EXPERIMENTS.md ("modelling notes"); on the paper's
        dense random topologies the situation is rare (the measured delivery ratio is 1.0).
        Here we assert the guaranteed part: any unreachable destination lies strictly beyond
        the source's two-hop neighborhood.
        """
        if not network.is_connected():
            network = network.largest_component()
        if len(network) < 2:
            return
        for metric in (BandwidthMetric(), DelayMetric()):
            advertised = advertise(network, FnbpSelector(), metric)
            router = HopByHopRouter(network, advertised, metric)
            nodes = network.nodes()
            source = nodes[0]
            near = network.neighbors(source) | network.two_hop_neighbors(source)
            for destination in nodes[1:]:
                outcome = router.link_state_route(source, destination)
                if destination in near:
                    assert outcome.delivered, (
                        f"{metric.name}: two-hop destination {destination} unreachable from "
                        f"{source} over the FNBP advertisements"
                    )

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(network=random_weighted_networks(max_nodes=10))
    def test_every_two_hop_target_is_covered_after_selection(self, network):
        """After FNBP runs, every one-/two-hop neighbor is covered: either its direct link is
        optimal or some selected ANS member starts an optimal path (the algorithm's
        invariant)."""
        from repro.localview import all_first_hops

        metric = BandwidthMetric()
        for owner in network.nodes():
            view = LocalView.from_network(network, owner)
            result = FnbpSelector().select(view, metric)
            first_hops = all_first_hops(view, metric)
            for target in view.known_targets():
                hops = first_hops[target]
                if not hops.reachable:
                    continue
                covered = (
                    target in hops.first_hops
                    or bool(hops.first_hops & result.selected)
                    or bool(view.common_relays(target) & result.selected)
                )
                assert covered
