"""Shared fixtures: metrics, small hand-built networks and random-network factories."""

from __future__ import annotations

import random

import pytest

from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner
from repro.topology import FieldSpec, FixedCountNetworkGenerator, GridNetworkGenerator, Network


@pytest.fixture
def bandwidth():
    return BandwidthMetric()


@pytest.fixture
def delay():
    return DelayMetric()


@pytest.fixture
def line_network() -> Network:
    """A 4-node line 0-1-2-3 with both bandwidth and delay weights."""
    network = Network()
    positions = {0: (0, 0), 1: (50, 0), 2: (100, 0), 3: (150, 0)}
    for node, pos in positions.items():
        network.add_node(node, pos)
    network.add_link(0, 1, bandwidth=5.0, delay=1.0)
    network.add_link(1, 2, bandwidth=3.0, delay=2.0)
    network.add_link(2, 3, bandwidth=4.0, delay=1.0)
    return network


@pytest.fixture
def diamond_network() -> Network:
    """A diamond 0-(1|2)-3 where the two middle relays differ in quality.

    Path 0-1-3: bandwidth 4, delay 6.  Path 0-2-3: bandwidth 2, delay 2.  Direct link 0-3
    exists but is weak (bandwidth 1, delay 10), so QoS-aware selection must prefer a relay.
    """
    network = Network()
    for node, pos in {0: (0, 0), 1: (50, 40), 2: (50, -40), 3: (100, 0)}.items():
        network.add_node(node, pos)
    network.add_link(0, 1, bandwidth=4.0, delay=3.0)
    network.add_link(1, 3, bandwidth=5.0, delay=3.0)
    network.add_link(0, 2, bandwidth=2.0, delay=1.0)
    network.add_link(2, 3, bandwidth=3.0, delay=1.0)
    network.add_link(0, 3, bandwidth=1.0, delay=10.0)
    return network


@pytest.fixture
def grid_network(bandwidth, delay) -> Network:
    """A 4x4 grid with seeded random weights for both metrics (connected, deterministic)."""
    assigners = (
        UniformWeightAssigner(metric=bandwidth, low=1.0, high=10.0, seed=11),
        UniformWeightAssigner(metric=delay, low=1.0, high=10.0, seed=12),
    )
    return GridNetworkGenerator(
        rows=4, columns=4, spacing=80.0, radius=100.0, weight_assigners=assigners
    ).generate()


@pytest.fixture
def random_network_factory(bandwidth, delay):
    """Factory producing connected random geometric networks with both metrics weighted."""

    def build(node_count: int = 30, seed: int = 0, radius: float = 120.0) -> Network:
        assigners = (
            UniformWeightAssigner(metric=bandwidth, low=1.0, high=10.0, seed=seed),
            UniformWeightAssigner(metric=delay, low=1.0, high=10.0, seed=seed + 1),
        )
        generator = FixedCountNetworkGenerator(
            field=FieldSpec(width=300.0, height=300.0, radius=radius),
            node_count=node_count,
            seed=seed,
            weight_assigners=assigners,
            restrict_to_largest_component=True,
        )
        return generator.generate()

    return build
