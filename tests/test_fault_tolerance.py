"""Fault-injection suite for the crash-resilient sweep engine.

Headline invariant: a sweep killed at an arbitrary density boundary and resumed via
``--resume`` produces final JSON/JSONL **byte-identical** to an uninterrupted run, both
serial and under ``REPRO_WORKERS=2``; a SIGKILLed worker is survived by respawn-and-retry
with the exact same trial payloads; a poisoned trial under ``--on-error skip`` becomes a
structured failure event instead of an abort.  Every fault here is injected
deterministically through :mod:`repro.testing.faults` -- nothing depends on timing luck.
"""

from __future__ import annotations

import json
import math
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import sweep_cli
from repro.experiments import cli as figures_cli
from repro.experiments.checkpoint import (
    CheckpointError,
    load_checkpoint,
    point_from_dict,
    spec_hash,
)
from repro.experiments.engine import run_experiment
from repro.experiments.results import SeriesPoint
from repro.experiments.runner import (
    TrialExecutionError,
    TrialFailure,
    _backoff_delay,
    resolve_max_retries,
    resolve_trial_timeout,
    resolve_workers,
)
from repro.experiments.sinks import JsonlSink, MemorySink, ResultSink
from repro.experiments.spec import ExperimentSpec
from repro.experiments.stats import summarize
from repro.testing.faults import (
    FaultPlan,
    FaultPlanError,
    FaultySink,
    InjectedFault,
    apply_trial_faults,
    parse_fault_plans,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLE_SPEC = REPO_ROOT / "examples" / "specs" / "custom_delay_sweep.json"


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """No fault/supervision configuration leaks between tests (or in from the outside)."""
    for variable in ("REPRO_FAULTS", "REPRO_WORKERS", "REPRO_MAX_RETRIES", "REPRO_TRIAL_TIMEOUT"):
        monkeypatch.delenv(variable, raising=False)
    # Keep the deadline fallback short: crash detection is PID-watch based, but a
    # pathological scheduling stall should fail a test in seconds, not minutes.
    monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "30")


def run_sweep(tmp_path: Path, tag: str, *extra: str) -> dict:
    """Run the committed example spec through the CLI; return its output file contents."""
    jsonl = tmp_path / f"{tag}.jsonl"
    json_out = tmp_path / f"{tag}.json"
    argv = ["--spec", str(EXAMPLE_SPEC), "--quiet", "--jsonl", str(jsonl), "--json", str(json_out)]
    argv += list(extra)
    exit_code = sweep_cli.main(argv)
    return {
        "exit_code": exit_code,
        "jsonl_path": jsonl,
        "jsonl": jsonl.read_text(),
        "json": json_out.read_text() if json_out.exists() else None,
    }


# ---------------------------------------------------------------------- fault plan parsing


class TestFaultPlans:
    def test_parse_round_trip(self):
        plans = parse_fault_plans("raise@density=9,run=0; kill@density=6.5,run=2,attempts=1")
        assert plans == [
            FaultPlan(kind="raise", density=9.0, run_index=0, attempts=None),
            FaultPlan(kind="kill", density=6.5, run_index=2, attempts=1),
        ]

    def test_unknown_kind_and_key_are_errors(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            parse_fault_plans("explode@density=1,run=0")
        with pytest.raises(FaultPlanError, match="unknown fault key"):
            parse_fault_plans("raise@density=1,run=0,worker=3")
        with pytest.raises(FaultPlanError, match="density"):
            parse_fault_plans("raise@run=0")

    def test_attempt_bounded_matching(self):
        plan = FaultPlan(kind="raise", density=9.0, run_index=1, attempts=2)
        assert plan.matches(9.0, 1, 0) and plan.matches(9.0, 1, 1)
        assert not plan.matches(9.0, 1, 2)  # recovered on the third attempt
        assert not plan.matches(9.0, 0, 0) and not plan.matches(6.0, 1, 0)
        unbounded = FaultPlan(kind="raise", density=9.0, run_index=1)
        assert unbounded.matches(9.0, 1, 99)

    def test_apply_trial_faults_is_a_no_op_without_the_env(self):
        apply_trial_faults(9.0, 0, 0)  # must not raise

    def test_apply_trial_faults_fires_on_address_match(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=9,run=1")
        apply_trial_faults(9.0, 0, 0)
        apply_trial_faults(6.0, 1, 0)
        with pytest.raises(InjectedFault):
            apply_trial_faults(9.0, 1, 0)


# ---------------------------------------------------------------------- kill-and-resume


class TestKillAndResume:
    @pytest.mark.parametrize("workers", [None, "2"], ids=["serial", "REPRO_WORKERS=2"])
    def test_killed_at_density_boundary_resumes_byte_identical(self, tmp_path, monkeypatch, workers):
        """The headline invariant: abort mid-sweep at a density boundary, resume, and the
        final JSONL and JSON are byte-for-byte the uninterrupted run's."""
        if workers is not None:
            monkeypatch.setenv("REPRO_WORKERS", workers)
        clean = run_sweep(tmp_path, "clean", "--runs", "2")
        assert clean["exit_code"] == 0

        # The run that dies: every attempt at (density=9, run=0) raises, on-error=fail.
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=9,run=0")
        with pytest.raises(TrialExecutionError):
            run_sweep(tmp_path, "killed", "--runs", "2")
        monkeypatch.delenv("REPRO_FAULTS")

        killed_events = [json.loads(line) for line in (tmp_path / "killed.jsonl").read_text().splitlines()]
        assert [event["event"] for event in killed_events if event["event"] == "density"] == ["density"]

        resumed = run_sweep(tmp_path, "killed", "--resume", str(tmp_path / "killed.jsonl"), "--runs", "2")
        assert resumed["exit_code"] == 0
        assert resumed["jsonl"] == clean["jsonl"]
        assert resumed["json"] == clean["json"]

    def test_sigkilled_process_resumes_byte_identical(self, tmp_path):
        """The literal acceptance scenario: SIGKILL the sweep *process* mid-density via an
        injected kill fault, then resume the orphaned stream."""
        clean = run_sweep(tmp_path, "clean")
        jsonl = tmp_path / "killed.jsonl"
        json_out = tmp_path / "killed.json"
        env = {
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "REPRO_FAULTS": "kill@density=9,run=0",
        }
        env.pop("REPRO_WORKERS", None)  # serial: the kill hits the sweep process itself
        process = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments.sweep_cli",
                "--spec",
                str(EXAMPLE_SPEC),
                "--quiet",
                "--jsonl",
                str(jsonl),
                "--json",
                str(json_out),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL
        assert not json_out.exists()  # buffered report sink never wrote a partial file
        checkpointed = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [e["event"] for e in checkpointed if e["event"] == "density"] == ["density"]

        resumed = run_sweep(tmp_path, "killed", "--resume", str(jsonl))
        assert resumed["exit_code"] == 0
        assert resumed["jsonl"] == clean["jsonl"]
        assert resumed["json"] == clean["json"]

    def test_resume_of_a_complete_stream_is_idempotent(self, tmp_path):
        clean = run_sweep(tmp_path, "clean")
        again = run_sweep(tmp_path, "clean", "--resume", str(tmp_path / "clean.jsonl"))
        assert again["exit_code"] == 0
        assert again["jsonl"] == clean["jsonl"] and again["json"] == clean["json"]

    def test_resume_alone_takes_the_spec_from_the_stream(self, tmp_path):
        clean = run_sweep(tmp_path, "clean")
        redo = tmp_path / "clean.jsonl"
        exit_code = sweep_cli.main(["--resume", str(redo), "--quiet"])
        assert exit_code == 0
        assert redo.read_text() == clean["jsonl"]

    def test_spec_hash_guard_refuses_a_mismatched_spec(self, tmp_path, capsys):
        run_sweep(tmp_path, "clean")
        with pytest.raises(SystemExit):
            sweep_cli.main(
                ["--resume", str(tmp_path / "clean.jsonl"), "--quiet", "--runs", "5"]
            )
        assert "refusing to resume" in capsys.readouterr().err

    def test_engine_level_guard_also_refuses(self, tmp_path):
        run_sweep(tmp_path, "clean")
        other = ExperimentSpec.load(EXAMPLE_SPEC).with_overrides(runs=5)
        with pytest.raises(ValueError, match="refusing to resume"):
            run_experiment(other, resume_from=tmp_path / "clean.jsonl")

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        """A SIGKILL mid-write leaves a torn last line; everything before it stands."""
        clean = run_sweep(tmp_path, "clean")
        stream = tmp_path / "clean.jsonl"
        lines = stream.read_text().splitlines()
        torn = "\n".join(lines[:2]) + '\n{"event": "densi'
        stream.write_text(torn)
        checkpoint = load_checkpoint(stream)
        assert checkpoint.densities == {} and not checkpoint.complete
        resumed = run_sweep(tmp_path, "clean", "--resume", str(stream))
        assert resumed["jsonl"] == clean["jsonl"]

    def test_stream_without_sweep_start_is_a_clean_error(self, tmp_path, capsys):
        stream = tmp_path / "not-a-checkpoint.jsonl"
        stream.write_text('{"event": "density", "density": 6.0, "series": {}}\n')
        with pytest.raises(CheckpointError, match="no sweep_start"):
            load_checkpoint(stream)
        with pytest.raises(SystemExit):
            sweep_cli.main(["--resume", str(stream), "--quiet"])
        assert "cannot resume" in capsys.readouterr().err

    def test_mid_stream_corruption_is_an_error(self, tmp_path):
        run_sweep(tmp_path, "clean")
        stream = tmp_path / "clean.jsonl"
        lines = stream.read_text().splitlines()
        lines[1] = "corrupt {{{"
        stream.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match=":2"):
            load_checkpoint(stream)

    def test_unfinished_density_trials_are_discarded(self, tmp_path):
        """Trial lines after the last density event belong to a density that never
        finished; the resume re-runs that density from scratch."""
        clean = run_sweep(tmp_path, "clean")
        stream = tmp_path / "clean.jsonl"
        events = [json.loads(line) for line in stream.read_text().splitlines()]
        density_indices = [i for i, e in enumerate(events) if e["event"] == "density"]
        # Cut after the first density's trial-of-the-second-density: keep everything up
        # to (and including) the second density's trial line, drop the rest.
        cut = [e for e in events[: density_indices[1]] if e["event"] != "result"]
        stream.write_text("".join(json.dumps(e, sort_keys=True) + "\n" for e in cut))
        checkpoint = load_checkpoint(stream)
        assert list(checkpoint.densities) == [6.0]
        assert checkpoint.densities[6.0].trials  # the finished density kept its trials
        resumed = run_sweep(tmp_path, "clean", "--resume", str(stream))
        assert resumed["jsonl"] == clean["jsonl"] and resumed["json"] == clean["json"]


# ---------------------------------------------------------------------- worker supervision


class TestWorkerSupervision:
    def test_sigkilled_worker_is_respawned_and_the_trial_retried(self, tmp_path, monkeypatch):
        """A worker process SIGKILLed mid-density must not take the sweep down, and the
        retried trial must reproduce the exact payload bytes of an undisturbed run."""
        clean = run_sweep(tmp_path, "clean", "--runs", "2")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_FAULTS", "kill@density=9,run=0,attempts=1")
        recovered = run_sweep(tmp_path, "recovered", "--runs", "2")
        assert recovered["exit_code"] == 0
        assert recovered["jsonl"] == clean["jsonl"]
        assert recovered["json"] == clean["json"]

    @pytest.mark.parametrize("workers", [None, "2"], ids=["serial", "REPRO_WORKERS=2"])
    def test_transient_raise_is_retried_to_bit_identity(self, tmp_path, monkeypatch, workers):
        clean = run_sweep(tmp_path, "clean", "--runs", "2")
        if workers is not None:
            monkeypatch.setenv("REPRO_WORKERS", workers)
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=9,run=1,attempts=2")
        recovered = run_sweep(tmp_path, "recovered", "--runs", "2")
        assert recovered["exit_code"] == 0
        assert recovered["jsonl"] == clean["jsonl"]
        assert recovered["json"] == clean["json"]

    @pytest.mark.parametrize("workers", [None, "2"], ids=["serial", "REPRO_WORKERS=2"])
    def test_poisoned_trial_aborts_under_fail(self, tmp_path, monkeypatch, workers):
        if workers is not None:
            monkeypatch.setenv("REPRO_WORKERS", workers)
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=6,run=0")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "1")
        with pytest.raises(TrialExecutionError) as caught:
            run_sweep(tmp_path, "poisoned", "--runs", "2")
        failure = caught.value.failure
        assert (failure.density, failure.run_index) == (6.0, 0)
        assert failure.error_type == "InjectedFault" and failure.attempts == 2

    @pytest.mark.parametrize("workers", [None, "2"], ids=["serial", "REPRO_WORKERS=2"])
    def test_on_error_skip_records_structured_failure(self, tmp_path, monkeypatch, workers):
        """The acceptance case: a poisoned trial under --on-error skip completes the sweep
        with a trial_error event and per-point failure counts instead of aborting."""
        if workers is not None:
            monkeypatch.setenv("REPRO_WORKERS", workers)
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=6,run=0")
        result = run_sweep(tmp_path, "skipped", "--runs", "2", "--on-error", "skip")
        assert result["exit_code"] == 0

        events = [json.loads(line) for line in result["jsonl"].splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds.count("trial_error") == 1 and kinds.count("density") == 2
        error = next(event for event in events if event["event"] == "trial_error")
        assert error["density"] == 6.0 and error["run"] == 0
        assert error["error_type"] == "InjectedFault" and error["attempts"] == 3

        spec = ExperimentSpec.load(EXAMPLE_SPEC)
        payload = json.loads(result["json"])[spec.experiment_id]
        for name in spec.selectors:
            by_density = {point["density"]: point for point in payload["series"][name]}
            assert by_density[6.0]["failed_trials"] == 1.0
            assert "failed_trials" not in by_density[9.0]

    def test_on_error_skip_is_bit_identical_serial_vs_parallel(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=6,run=0")
        serial = run_sweep(tmp_path, "serial", "--runs", "2", "--on-error", "skip")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = run_sweep(tmp_path, "parallel", "--runs", "2", "--on-error", "skip")
        assert parallel["jsonl"] == serial["jsonl"]
        assert parallel["json"] == serial["json"]

    def test_failure_stream_resumes_byte_identically(self, tmp_path, monkeypatch):
        """trial_error events are part of the checkpoint: replaying a stream that contains
        recorded failures reproduces it byte-for-byte."""
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=6,run=0")
        first = run_sweep(tmp_path, "failures", "--runs", "2", "--on-error", "skip")
        monkeypatch.delenv("REPRO_FAULTS")
        # Resume the complete stream without the fault: nothing re-runs, so the recorded
        # failure must be replayed, not recomputed away.
        again = run_sweep(
            tmp_path, "failures", "--resume", str(tmp_path / "failures.jsonl"),
            "--runs", "2", "--on-error", "skip",
        )
        assert again["jsonl"] == first["jsonl"] and again["json"] == first["json"]

    def test_backoff_is_bounded_exponential(self):
        delays = [_backoff_delay(attempt) for attempt in range(8)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.05)
        assert delays[1] == pytest.approx(0.10)
        assert max(delays) == 2.0  # bounded

    def test_on_error_rejects_unknown_modes(self):
        from repro.experiments.runner import map_trials

        spec = ExperimentSpec.load(EXAMPLE_SPEC)
        with pytest.raises(ValueError, match="on_error"):
            map_trials(spec.sweep_config(), None, 6.0, lambda t: t, on_error="explode")


# ---------------------------------------------------------------------- env validation


class TestSupervisionEnvValidation:
    @pytest.mark.parametrize("bad", ["0", "-1", "-8"])
    def test_repro_workers_rejects_non_positive(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_repro_workers_rejects_absurd_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "100000")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_repro_workers_rejects_garbage_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "two")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_workers_argument_keeps_its_documented_zero_meaning(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")  # env zero is an error ...
        assert resolve_workers(0) >= 1  # ... but the --workers 0 argument is per-CPU
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-2)
        with pytest.raises(ValueError, match="sanity cap"):
            resolve_workers(99999)

    def test_max_retries_parsing(self, monkeypatch):
        assert resolve_max_retries() == 2
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        assert resolve_max_retries() == 5
        assert resolve_max_retries(0) == 0
        monkeypatch.setenv("REPRO_MAX_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_MAX_RETRIES"):
            resolve_max_retries()
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ValueError, match="REPRO_MAX_RETRIES"):
            resolve_max_retries()

    def test_trial_timeout_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIAL_TIMEOUT", raising=False)
        assert resolve_trial_timeout() == 300.0
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "7.5")
        assert resolve_trial_timeout() == 7.5
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "0")
        assert resolve_trial_timeout() is None  # 0 disables the deadline
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "-3")
        with pytest.raises(ValueError, match="REPRO_TRIAL_TIMEOUT"):
            resolve_trial_timeout()
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_TRIAL_TIMEOUT"):
            resolve_trial_timeout()


# ---------------------------------------------------------------------- sink error paths


class _WarningRecorder(ResultSink):
    def __init__(self) -> None:
        self.warnings = []

    def on_warning(self, spec, message) -> None:
        self.warnings.append(message)


class TestSinkErrorPaths:
    def test_unwritable_jsonl_fails_fast_before_the_sweep(self, tmp_path, capsys, monkeypatch):
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("a regular file where a directory is needed")
        ran = []
        monkeypatch.setattr(sweep_cli, "run_experiment", lambda *a, **k: ran.append(1))
        with pytest.raises(SystemExit):
            sweep_cli.main(
                [
                    "--spec",
                    str(EXAMPLE_SPEC),
                    "--quiet",
                    "--jsonl",
                    str(blocker / "out.jsonl"),
                ]
            )
        assert "cannot write the JSONL stream" in capsys.readouterr().err
        assert not ran  # the error fired before any sweep work started

    def test_raising_sink_is_quarantined_not_fatal(self):
        spec = ExperimentSpec.load(EXAMPLE_SPEC)
        faulty = FaultySink(fail_on="on_density")
        memory = MemorySink()
        recorder = _WarningRecorder()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            result = run_experiment(spec, sinks=(faulty, memory, recorder))
        # The sweep completed, the healthy sinks saw everything...
        assert memory.results == [result]
        assert len(recorder.warnings) == 1 and "FaultySink" in recorder.warnings[0]
        # ...and the offender was dropped at its first raise, never called again.
        assert faulty.calls.count("on_density") == 1
        assert "on_result" not in faulty.calls

    def test_mid_run_oserror_in_jsonl_sink_is_quarantined(self, tmp_path):
        """The satellite case verbatim: an injected OSError on a sink write mid-run must
        quarantine the sink, not kill the sweep."""
        spec = ExperimentSpec.load(EXAMPLE_SPEC)
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        original_write = sink._write
        writes = []

        def failing_write(record):
            writes.append(record["event"])
            if len(writes) == 3:
                raise OSError("disk full (injected)")
            original_write(record)

        sink._write = failing_write
        recorder = _WarningRecorder()
        with pytest.warns(RuntimeWarning, match="JsonlSink"):
            result = run_experiment(spec, sinks=(sink, recorder))
        sink.close()
        assert result.series  # the sweep finished with data
        assert recorder.warnings and "quarantined" in recorder.warnings[0]
        on_disk = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(on_disk) == 2  # everything before the injected failure was flushed

    def test_keyboard_interrupt_is_not_quarantined(self):
        spec = ExperimentSpec.load(EXAMPLE_SPEC)

        class CtrlC(ResultSink):
            def on_density(self, spec, density, points):
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_experiment(spec, sinks=(CtrlC(),))

    def test_engine_with_zero_sinks_returns_a_correct_result(self):
        spec = ExperimentSpec.load(EXAMPLE_SPEC)
        memory = MemorySink()
        with_sinks = run_experiment(spec, sinks=(memory,))
        bare = run_experiment(spec)
        assert bare.to_dict() == with_sinks.to_dict() == memory.results[0].to_dict()


# ---------------------------------------------------------------------- interrupt handling


class TestKeyboardInterruptExits:
    def test_sweep_cli_exits_130_and_points_at_the_checkpoint(self, tmp_path, capsys, monkeypatch):
        jsonl = tmp_path / "events.jsonl"

        def interrupted_run(spec, sinks=(), **kwargs):
            for sink in sinks:
                sink.on_sweep_start(spec)
            raise KeyboardInterrupt

        monkeypatch.setattr(sweep_cli, "run_experiment", interrupted_run)
        exit_code = sweep_cli.main(
            ["--spec", str(EXAMPLE_SPEC), "--quiet", "--jsonl", str(jsonl)]
        )
        assert exit_code == 130
        err = capsys.readouterr().err
        assert str(jsonl) in err and "--resume" in err
        # The stream was flushed and closed: the events so far are on disk.
        events = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [event["event"] for event in events] == ["sweep_start"]

    def test_sweep_cli_exits_130_without_jsonl_too(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sweep_cli, "run_experiment", lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt())
        )
        exit_code = sweep_cli.main(["--spec", str(EXAMPLE_SPEC), "--quiet"])
        assert exit_code == 130
        assert "no --jsonl stream" in capsys.readouterr().err

    def test_figures_cli_exits_130_and_leaves_outputs_alone(self, tmp_path, capsys, monkeypatch):
        output = tmp_path / "report.txt"
        output.write_text("previous good report")
        monkeypatch.setattr(
            figures_cli, "run_figure", lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt())
        )
        exit_code = figures_cli.main(
            ["--figure", "6", "--profile", "smoke", "--quiet", "--output", str(output)]
        )
        assert exit_code == 130
        assert "interrupted" in capsys.readouterr().err
        assert output.read_text() == "previous good report"


# ---------------------------------------------------------------------- checkpoint pieces


class TestCheckpointModule:
    def test_spec_hash_is_stable_and_sensitive(self):
        spec = ExperimentSpec.load(EXAMPLE_SPEC)
        assert spec_hash(spec) == spec_hash(ExperimentSpec.from_dict(spec.to_dict()))
        assert spec_hash(spec) != spec_hash(spec.with_overrides(seed=spec.seed + 1))

    def test_point_round_trips_through_its_dict_form(self):
        point = SeriesPoint(
            density=9.0,
            summary=summarize([1.0, 2.0, 4.0]),
            extra={"delivery_ratio": 0.5, "per_step_mean": [0.1, 0.2]},
        )
        rebuilt = point_from_dict(point.to_dict())
        assert rebuilt.to_dict() == point.to_dict()
        assert math.isnan(rebuilt.summary.minimum)  # min/max are not serialized

    def test_loaded_checkpoint_carries_trials_and_points(self, tmp_path):
        run_sweep(tmp_path, "clean", "--runs", "2")
        checkpoint = load_checkpoint(tmp_path / "clean.jsonl")
        spec = ExperimentSpec.load(EXAMPLE_SPEC).with_overrides(runs=2)
        assert checkpoint.spec.to_dict() == spec.to_dict() and checkpoint.complete
        assert list(checkpoint.densities) == [6.0, 9.0]
        for density_checkpoint in checkpoint.densities.values():
            assert [run for run, _ in density_checkpoint.trials] == [0, 1]
            assert set(density_checkpoint.points) == set(spec.selectors)

    def test_failure_records_round_trip_as_trial_failures(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=6,run=1")
        run_sweep(tmp_path, "failing", "--runs", "2", "--on-error", "skip")
        checkpoint = load_checkpoint(tmp_path / "failing.jsonl")
        records = dict(checkpoint.densities[6.0].trials)
        assert isinstance(records[1], TrialFailure)
        assert records[1].error_type == "InjectedFault" and records[1].attempts == 3
