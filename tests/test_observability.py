"""The telemetry layer's contract suite.

Four guarantees, mirroring ``docs/observability.md``:

* **Registry semantics.**  Counters/gauges/histograms fold and merge exactly (merge of
  snapshots == one registry fed everything), spans nest and survive exceptions, and the
  worker envelope (:class:`TrialTelemetry`) round-trips through pickle.
* **Determinism.**  The deterministic sections (counters, gauges, histograms) of every
  ``on_metrics`` snapshot are bit-identical serial vs ``REPRO_WORKERS=2``, and with
  telemetry enabled the primary jsonl/result streams stay byte-identical to a
  telemetry-off run (telemetry observes; it never perturbs).
* **Off by default.**  No ``REPRO_METRICS``/``metrics=`` opt-in means no registry, no
  ``on_metrics`` events, and the classic byte-identical text report.
* **Failure containment.**  A raising metrics sink is quarantined like any other sink;
  injected trial faults under ``--on-error skip`` leave no open spans, count retries and
  failures, and ship telemetry only for attempts that succeeded.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import pytest

from repro.experiments import sweep_cli
from repro.experiments.engine import run_experiment
from repro.experiments.sinks import (
    MemorySink,
    MetricsCapture,
    MetricsJsonlSink,
    ProgressSink,
    TextReportSink,
    _format_duration,
)
from repro.experiments.spec import ExperimentSpec
from repro.obs import runtime as obs
from repro.obs.registry import (
    MetricsRegistry,
    TrialTelemetry,
    deterministic_sections,
    merge_trial,
    unwrap_payload,
)
from repro.obs.report import build_profile, render_metrics_summary
from repro.testing.faults import FaultySink
from repro.topology.generators import FieldSpec

EXAMPLE_SPEC = Path(__file__).resolve().parent.parent / "examples" / "specs" / "custom_delay_sweep.json"

FIELD = FieldSpec(width=400.0, height=400.0, radius=100.0)


@pytest.fixture(autouse=True)
def _clean_telemetry_env(monkeypatch):
    """No telemetry/fault/worker configuration leaks between tests (or in from outside)."""
    for variable in ("REPRO_METRICS", "REPRO_FAULTS", "REPRO_WORKERS", "REPRO_MAX_RETRIES"):
        monkeypatch.delenv(variable, raising=False)
    assert obs.current() is None


def _dynamic_spec(**overrides) -> ExperimentSpec:
    """A small mobility sweep exercising selection cache, kernels and the CSR patch path."""
    base = ExperimentSpec(
        experiment_id="obs-dynamic",
        title="Telemetry dynamic sweep",
        measure="ans-churn",
        metric="bandwidth",
        selectors=("fnbp", "topology-filtering"),
        topology="churn",
        densities=(16.0, 20.0),
        runs=2,
        pairs_per_run=2,
        timesteps=2,
        step_interval=1.0,
        field=FIELD,
        seed=11,
    )
    return base.with_overrides(**overrides) if overrides else base


def _protocol_spec(**overrides) -> ExperimentSpec:
    """A tiny protocol-simulator sweep (real HELLO/TC traffic over a lossy channel)."""
    base = ExperimentSpec(
        experiment_id="obs-protocol",
        title="Telemetry protocol sweep",
        measure="route-flaps",
        metric="bandwidth",
        selectors=("fnbp", "qolsr-mpr2"),
        topology="churn",
        densities=(20.0,),
        runs=1,
        pairs_per_run=3,
        timesteps=2,
        step_interval=1.0,
        hello_interval=1.0,
        tc_interval=1.0,
        loss_rate=0.1,
        field=FIELD,
        seed=11,
    )
    return base.with_overrides(**overrides) if overrides else base


# ------------------------------------------------------------------ registry semantics


class TestMetricsRegistry:
    def test_counters_gauges_histograms_fold(self):
        registry = MetricsRegistry()
        registry.count("hits")
        registry.count("hits", 4)
        registry.gauge("depth", 3.0)
        registry.gauge("depth", 7.0)
        for value in (2.0, 5.0, 3.0):
            registry.observe("dirty", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 5}
        assert snapshot["gauges"] == {"depth": 7.0}
        assert snapshot["histograms"]["dirty"] == {"count": 3, "total": 10.0, "min": 2.0, "max": 5.0}

    def test_snapshot_sections_are_key_sorted(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.count(name)
            registry.observe(name, 1.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "mid", "zeta"]
        assert list(snapshot["histograms"]) == ["alpha", "mid", "zeta"]

    def test_spans_nest_and_record_wall_clock(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            assert registry.active_spans() == ["outer"]
            with registry.span("inner"):
                assert registry.active_spans() == ["outer", "inner"]
        assert registry.active_spans() == []
        snapshot = registry.snapshot()
        assert set(snapshot["spans"]) == {"outer", "inner"}
        for stats in snapshot["spans"].values():
            assert stats["count"] == 1
            assert stats["total"] >= 0.0
            assert stats["mean"] == stats["total"]

    def test_a_raising_span_still_closes_and_records(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                with registry.span("inner"):
                    raise RuntimeError("boom")
        assert registry.active_spans() == []
        assert registry.spans["outer"]["count"] == 1
        assert registry.spans["inner"]["count"] == 1

    def test_merge_snapshot_equals_single_registry(self):
        """Folding two trial snapshots into a run registry == one registry fed everything."""
        one, two, whole = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for registry, values in ((one, (1.0, 9.0)), (two, (4.0,))):
            for value in values:
                registry.count("events")
                registry.observe("sizes", value)
                registry.gauge("last", value)
                whole.count("events")
                whole.observe("sizes", value)
                whole.gauge("last", value)
        merged = MetricsRegistry()
        merged.merge_snapshot(one.snapshot())
        merged.merge_snapshot(two.snapshot())
        assert deterministic_sections(merged.snapshot()) == deterministic_sections(whole.snapshot())

    def test_merge_snapshot_folds_span_stats(self):
        source = MetricsRegistry()
        with source.span("phase"):
            pass
        merged = MetricsRegistry()
        merged.merge_snapshot(source.snapshot())
        merged.merge_snapshot(source.snapshot())
        assert merged.snapshot()["spans"]["phase"]["count"] == 2

    def test_trial_telemetry_pickles_and_unwraps(self):
        envelope = TrialTelemetry({"value": 3}, {"counters": {"runner.trials": 1}})
        clone = pickle.loads(pickle.dumps(envelope))
        assert clone.payload == {"value": 3} and clone.snapshot == envelope.snapshot
        assert unwrap_payload(envelope) == {"value": 3}
        assert unwrap_payload({"bare": True}) == {"bare": True}

    def test_merge_trial_merges_exactly_the_envelope(self):
        registry = MetricsRegistry()
        envelope = TrialTelemetry({"value": 3}, {"counters": {"runner.trials": 1}})
        assert merge_trial(registry, envelope) == {"value": 3}
        assert registry.counters == {"runner.trials": 1}
        # Bare payloads (telemetry off) pass through without touching the registry.
        assert merge_trial(registry, {"bare": True}) == {"bare": True}
        assert registry.counters == {"runner.trials": 1}
        assert merge_trial(None, envelope) == {"value": 3}


class TestAmbientRuntime:
    def test_helpers_are_no_ops_without_a_registry(self):
        assert obs.current() is None and not obs.enabled()
        obs.add("anything")
        obs.gauge("anything", 1.0)
        obs.observe("anything", 1.0)
        with obs.span("anything"):
            pass  # the shared null span

    def test_install_returns_previous_for_nesting(self):
        run, trial = MetricsRegistry(), MetricsRegistry()
        assert obs.install(run) is None
        try:
            obs.add("outer")
            previous = obs.install(trial)
            assert previous is run
            obs.add("inner")
            obs.install(previous)
            obs.add("outer")
        finally:
            obs.install(None)
        assert run.counters == {"outer": 2} and trial.counters == {"inner": 1}

    def test_resolve_metrics_env_contract(self, monkeypatch):
        assert obs.resolve_metrics(True) is True
        assert obs.resolve_metrics(False) is False
        assert obs.resolve_metrics(None) is False  # unset -> off by default
        for raw, expected in (("1", True), ("yes", True), ("ON", True), ("0", False), ("off", False), ("", False)):
            monkeypatch.setenv("REPRO_METRICS", raw)
            assert obs.resolve_metrics(None) is expected
        monkeypatch.setenv("REPRO_METRICS", "2")
        with pytest.raises(ValueError, match="REPRO_METRICS"):
            obs.resolve_metrics(None)
        # An explicit argument always wins over the environment.
        assert obs.resolve_metrics(False) is False


# ------------------------------------------------------------------ engine integration


class TestEngineTelemetry:
    def test_on_metrics_cadence_and_cumulative_snapshots(self):
        spec = _dynamic_spec()
        capture = MetricsCapture()
        run_experiment(spec, sinks=[capture], metrics=True)
        # One snapshot after every density checkpoint plus the run total.
        assert [snap["density"] for snap in capture.snapshots] == [16.0, 20.0, None]
        trials = [snap["counters"]["runner.trials"] for snap in capture.snapshots]
        assert trials == [2, 4, 4]  # cumulative, runs per density at a time
        total = capture.last["counters"]
        assert total["engine.densities_completed"] == len(spec.densities)
        assert total["mobility.steps"] == len(spec.densities) * spec.runs * spec.timesteps
        assert total["selection.full_runs"] >= len(spec.selectors)
        assert "selection.dirty_owners" in capture.last["histograms"]
        assert {"trial", "measure", "topology_build", "sink_flush"} <= set(capture.last["spans"])

    def test_metrics_off_means_no_events_and_no_ambient_registry(self):
        capture = MetricsCapture()
        run_experiment(_dynamic_spec(), sinks=[capture])
        assert capture.snapshots == [] and capture.last is None
        assert obs.current() is None

    def test_repro_metrics_env_enables_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        capture = MetricsCapture()
        run_experiment(_dynamic_spec(), sinks=[capture])
        assert capture.last is not None and capture.last["density"] is None

    def test_deterministic_sections_identical_serial_vs_workers(self, monkeypatch):
        spec = _dynamic_spec()
        serial = MetricsCapture()
        serial_result = run_experiment(spec, sinks=[serial], metrics=True)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = MetricsCapture()
        parallel_result = run_experiment(spec, sinks=[parallel], metrics=True)
        assert serial_result.to_dict() == parallel_result.to_dict()
        assert len(serial.snapshots) == len(parallel.snapshots) == len(spec.densities) + 1
        for left, right in zip(serial.snapshots, parallel.snapshots):
            assert left["density"] == right["density"]
            assert deterministic_sections(left) == deterministic_sections(right)

    def test_telemetry_does_not_perturb_results(self):
        spec = _dynamic_spec()
        plain = run_experiment(spec)
        instrumented = run_experiment(spec, sinks=[MetricsCapture()], metrics=True)
        assert plain.to_dict() == instrumented.to_dict()

    def test_raising_metrics_sink_is_quarantined(self):
        faulty = FaultySink(fail_on="on_metrics")
        memory = MemorySink()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            run_experiment(_dynamic_spec(), sinks=[faulty, memory], metrics=True)
        assert len(memory.results) == 1  # the sweep survived the broken sink
        assert faulty.calls.count("on_metrics") == 1  # dropped at the first raise
        assert "on_result" not in faulty.calls


class TestFaultedTelemetry:
    def test_skip_counts_retries_and_failures_and_closes_spans(self, monkeypatch):
        """A poisoned trial under ``--on-error skip``: its attempts retry (counted), its
        telemetry is discarded with the failed attempts, and no span leaks open."""
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=16,run=0")
        spec = _dynamic_spec()
        capture = MetricsCapture()
        run_experiment(spec, sinks=[capture], metrics=True, on_error="skip")
        assert obs.current() is None
        counters = capture.last["counters"]
        assert counters["runner.trial_failures"] == 1
        assert counters["runner.retries"] == 2  # REPRO_MAX_RETRIES default: 2 extra attempts
        # Only successful trials ship telemetry: 2 densities x 2 runs minus the poisoned one.
        assert counters["runner.trials"] == 3
        assert capture.last["spans"]["trial"]["count"] == 3

    def test_transient_fault_recovers_with_retries_counted(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@density=16,run=1,attempts=2")
        spec = _dynamic_spec()
        capture = MetricsCapture()
        recovered = run_experiment(spec, sinks=[capture], metrics=True)
        counters = capture.last["counters"]
        assert counters["runner.retries"] == 2
        assert "runner.trial_failures" not in counters
        assert counters["runner.trials"] == spec.runs * len(spec.densities)
        # The recovered sweep's results equal an undisturbed one's.
        monkeypatch.delenv("REPRO_FAULTS")
        assert recovered.to_dict() == run_experiment(spec).to_dict()


# ------------------------------------------------------------------ protocol telemetry


class TestProtocolTelemetry:
    def test_control_counts_ride_density_point_extra(self):
        spec = _protocol_spec()
        capture = MetricsCapture()
        result = run_experiment(spec, sinks=[capture], metrics=True)
        keys = {"hellos_sent", "tcs_sent", "tcs_forwarded", "transmissions", "deliveries", "losses"}
        for name in spec.selectors:
            for point in result.series[name].points:
                control = point.extra["control"]
                assert set(control) == keys
                assert all(isinstance(value, int) and value >= 0 for value in control.values())
                assert control["transmissions"] == control["deliveries"] + control["losses"]
                assert control["hellos_sent"] > 0 and control["tcs_sent"] > 0

        # The per-point extras and the registry counters describe the same traffic: with
        # one density, summing a counter's per-selector extras gives the run total.
        counters = capture.last["counters"]
        points = [result.series[name].points[0] for name in spec.selectors]
        assert counters["protocol.radio.transmissions"] == sum(
            point.extra["control"]["transmissions"] for point in points
        )
        assert counters["protocol.hellos_sent"] == sum(
            point.extra["control"]["hellos_sent"] for point in points
        )
        assert counters["protocol.events_processed"] > 0
        assert "protocol_sim" in capture.last["spans"]

    def test_control_extras_are_deterministic_serial_vs_workers(self, monkeypatch):
        spec = _protocol_spec(runs=2)
        serial = run_experiment(spec, metrics=True)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = run_experiment(spec, metrics=True)
        assert serial.to_dict() == parallel.to_dict()  # extras included


# ------------------------------------------------------------------ sinks and reports


class TestTelemetrySinks:
    def test_metrics_jsonl_sink_streams_only_on_metrics(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        spec = _dynamic_spec()
        run_experiment(spec, sinks=[MetricsJsonlSink(path)], metrics=True)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["event"] for record in records] == ["metrics"] * (len(spec.densities) + 1)
        assert [record["density"] for record in records] == [16.0, 20.0, None]
        for record in records:
            assert record["experiment_id"] == spec.experiment_id
            assert set(record) >= {"counters", "gauges", "histograms", "spans"}

    def test_text_report_appends_summary_only_with_telemetry(self, tmp_path):
        spec = _dynamic_spec()
        metrics_path = tmp_path / "metrics.txt"
        sink = TextReportSink(metrics_path)
        run_experiment(spec, sinks=[sink], metrics=True)
        sink.close()
        off_sink = TextReportSink(tmp_path / "off.txt")
        run_experiment(spec, sinks=[off_sink])
        off_sink.close()
        plain = (tmp_path / "off.txt").read_text()
        instrumented = metrics_path.read_text()
        assert "telemetry summary" in instrumented
        assert f"[{spec.experiment_id}]" in instrumented
        assert "telemetry summary" not in plain
        # The report body is untouched; telemetry only appends below it.
        assert instrumented.startswith(plain.rstrip("\n"))

    def test_render_metrics_summary_handles_empty_snapshots(self):
        text = render_metrics_summary({"counters": {}, "gauges": {}, "histograms": {}, "spans": {}})
        assert "no telemetry recorded" in text

    def test_build_profile_shape(self):
        registry = MetricsRegistry()
        registry.count("selection.full_runs", 2)
        with registry.span("selection"):
            pass
        profile = build_profile(_dynamic_spec(), registry.snapshot())
        assert profile["experiment_id"] == "obs-dynamic"
        assert set(profile["spans"]["selection"]) == {"count", "total", "mean", "min", "max"}
        assert profile["counters"]["selection.full_runs"] == 2


class TestProgressThroughput:
    def test_format_duration(self):
        assert _format_duration(42.31) == "42.3s"
        assert _format_duration(185) == "3m05s"
        assert _format_duration(2 * 3600 + 14 * 60) == "2h14m"

    def test_throughput_lines_with_injected_clock(self):
        spec = _dynamic_spec()
        ticks = iter([0.0, 10.0, 30.0])
        lines = []
        sink = ProgressSink(lines.append, throughput=True, clock=lambda: next(ticks))
        sink.on_sweep_start(spec)
        for _ in range(4):
            sink.on_trial(spec, 16.0, 0, {}, None)  # messageless trials still count
        sink.on_density(spec, 16.0, {})
        sink.on_density(spec, 20.0, {})
        assert lines == [
            "[obs-dynamic] density=16 finished (1/2 densities) | 0.4 trials/s | ETA 10.0s",
            "[obs-dynamic] density=20 finished (2/2 densities) | 0.1 trials/s | ETA 0.0s",
        ]

    def test_throughput_off_by_default_keeps_streams_deterministic(self):
        lines = []
        sink = ProgressSink(lines.append)
        spec = _dynamic_spec()
        sink.on_sweep_start(spec)
        sink.on_trial(spec, 16.0, 0, {}, "a message")
        sink.on_density(spec, 16.0, {})
        assert lines == ["a message"]  # no wall-clock line without the opt-in


# ------------------------------------------------------------------ CLI end to end


class TestSweepCliTelemetry:
    def test_metrics_flags_stream_and_profile_without_perturbing_results(self, tmp_path, capsys):
        plain_jsonl = tmp_path / "plain.jsonl"
        assert sweep_cli.main(["--spec", str(EXAMPLE_SPEC), "--quiet", "--jsonl", str(plain_jsonl)]) == 0
        capsys.readouterr()

        metrics_jsonl = tmp_path / "metrics.jsonl"
        primary_jsonl = tmp_path / "instrumented.jsonl"
        profile = tmp_path / "profile.json"
        exit_code = sweep_cli.main(
            [
                "--spec",
                str(EXAMPLE_SPEC),
                "--quiet",
                "--jsonl",
                str(primary_jsonl),
                "--metrics",
                "--metrics-jsonl",
                str(metrics_jsonl),
                "--profile-trials",
                str(profile),
            ]
        )
        assert exit_code == 0
        # Telemetry observes: the primary event stream is byte-identical with it on.
        assert primary_jsonl.read_bytes() == plain_jsonl.read_bytes()

        records = [json.loads(line) for line in metrics_jsonl.read_text().splitlines()]
        assert records and all(record["event"] == "metrics" for record in records)
        assert records[-1]["density"] is None

        report = json.loads(profile.read_text())
        assert report["experiment_id"] == "custom-delay"
        assert "trial" in report["spans"]
        assert report["counters"]["runner.trials"] == records[-1]["counters"]["runner.trials"]

        printed = capsys.readouterr().out
        assert "telemetry summary" in printed

    def test_bad_repro_metrics_value_is_a_clean_cli_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_METRICS", "maybe")
        with pytest.raises(SystemExit):
            sweep_cli.main(["--spec", str(EXAMPLE_SPEC), "--quiet"])
        assert "REPRO_METRICS" in capsys.readouterr().err
