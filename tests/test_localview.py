"""Tests for the local view ``G_u``: construction from a network and from protocol tables."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.localview import LocalView
from repro.metrics import BandwidthMetric
from repro.papergraphs import FIGURE2_OWNER, figure2_network
from repro.topology import Network


class TestFromNetwork:
    def test_one_and_two_hop_sets(self, line_network):
        view = LocalView.from_network(line_network, 1)
        assert view.owner == 1
        assert view.one_hop == {0, 2}
        assert view.two_hop == {3}

    def test_unknown_owner_raises(self, line_network):
        with pytest.raises(KeyError):
            LocalView.from_network(line_network, 99)

    def test_view_contains_only_links_touching_a_neighbor(self):
        """Links between two 2-hop neighbors are invisible (the paper's v8-v9 example)."""
        network = figure2_network()
        view = LocalView.from_network(network, FIGURE2_OWNER)
        assert not view.has_link(8, 9)           # both are two-hop neighbors of u
        assert view.has_link(6, 8)               # one endpoint is a one-hop neighbor
        assert view.has_link(FIGURE2_OWNER, 6)

    def test_link_weights_carried_over(self, line_network, bandwidth):
        view = LocalView.from_network(line_network, 1)
        assert view.link_value(1, 2, bandwidth) == 3.0
        assert view.direct_link_value(0, bandwidth) == 5.0

    def test_direct_link_value_requires_one_hop_neighbor(self, line_network, bandwidth):
        view = LocalView.from_network(line_network, 0)
        with pytest.raises(KeyError):
            view.direct_link_value(2, bandwidth)

    def test_known_targets_sorted(self, line_network):
        view = LocalView.from_network(line_network, 0)
        assert view.known_targets() == [1, 2]

    def test_common_relays(self, diamond_network):
        view = LocalView.from_network(diamond_network, 0)
        assert view.common_relays(3) == {1, 2}

    def test_neighbors_of_unknown_node_is_empty(self, line_network):
        view = LocalView.from_network(line_network, 0)
        assert view.neighbors_of(42) == set()

    def test_graph_without_owner(self, diamond_network):
        view = LocalView.from_network(diamond_network, 0)
        stripped = view.graph_without_owner()
        assert 0 not in stripped
        assert stripped.has_edge(1, 3)


class TestFromTables:
    def test_round_trip_equivalence_with_network_view(self, diamond_network):
        """A view rebuilt from HELLO-style tables matches the one built from the network."""
        direct = LocalView.from_network(diamond_network, 0)
        neighbor_links = {
            n: diamond_network.link_attributes(0, n) for n in diamond_network.neighbors(0)
        }
        two_hop_links = {
            n: {
                m: diamond_network.link_attributes(n, m)
                for m in diamond_network.neighbors(n)
                if m != 0
            }
            for n in diamond_network.neighbors(0)
        }
        rebuilt = LocalView.from_tables(0, neighbor_links, two_hop_links)
        assert rebuilt.one_hop == direct.one_hop
        assert rebuilt.two_hop == direct.two_hop
        assert set(rebuilt.graph.edges) == set(direct.graph.edges)

    def test_stale_reports_from_non_neighbors_are_ignored(self):
        view = LocalView.from_tables(
            owner=0,
            neighbor_links={1: {"bandwidth": 2.0}},
            two_hop_links={9: {5: {"bandwidth": 1.0}}},  # 9 is not a neighbor
        )
        assert view.one_hop == {1}
        assert view.two_hop == set()

    def test_validation_rejects_owner_in_neighbor_sets(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, bandwidth=1.0)
        with pytest.raises(ValueError):
            LocalView(owner=0, one_hop={0, 1}, two_hop=set(), graph=graph)

    def test_validation_rejects_overlapping_sets(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, bandwidth=1.0)
        with pytest.raises(ValueError):
            LocalView(owner=0, one_hop={1}, two_hop={1}, graph=graph)

    def test_validation_requires_direct_links(self):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_node(1)
        with pytest.raises(ValueError):
            LocalView(owner=0, one_hop={1}, two_hop=set(), graph=graph)


class TestCacheInvalidation:
    """The view's derived caches (compact graphs, bottleneck forests) vs link mutation."""

    def _network(self):
        return Network.from_links(
            {
                (0, 1): {"bandwidth": 5.0, "delay": 2.0},
                (1, 2): {"bandwidth": 3.0, "delay": 1.0},
                (0, 2): {"bandwidth": 1.0, "delay": 9.0},
                (2, 3): {"bandwidth": 4.0, "delay": 3.0},
            }
        )

    def test_update_link_drops_compact_graph_and_forest_caches(self):
        from repro.localview import all_first_hops
        from repro.metrics import DelayMetric

        view = LocalView.from_network(self._network(), 0)
        bandwidth, delay = BandwidthMetric(), DelayMetric()
        all_first_hops(view, bandwidth)
        all_first_hops(view, delay)
        stale_compact = view.compact_graph(bandwidth)
        stale_forest = view.bottleneck_forest(bandwidth)
        assert view._compact and view._forest

        view.update_link(0, 1, bandwidth=0.5)

        assert not view._compact and not view._forest  # both caches dropped eagerly
        rebuilt = view.compact_graph(bandwidth)
        assert rebuilt is not stale_compact
        assert view.bottleneck_forest(bandwidth) is not stale_forest
        row = dict(rebuilt.adj[rebuilt.index[0]])
        assert row[rebuilt.index[1]] == 0.5

    def test_requery_after_mutation_reflects_the_new_weight(self):
        """The regression this guards: before invalidation existed, a mutated link kept
        being answered from the stale cached forest."""
        from repro.localview import all_first_hops

        view = LocalView.from_network(self._network(), 0)
        metric = BandwidthMetric()
        before = all_first_hops(view, metric)
        assert before[1].best_value == 5.0
        view.update_link(0, 1, bandwidth=0.25)  # direct link now worse than the detour
        after = all_first_hops(view, metric)
        assert after[1].best_value == 1.0  # 0-2-1 (min(1, 3)) beats the degraded direct link
        assert after[1].first_hops == frozenset({2})
        fresh = LocalView(owner=0, one_hop=view.one_hop, two_hop=view.two_hop, graph=view.graph.copy())
        assert after == all_first_hops(fresh, metric)

    def test_update_link_unshares_attribute_dicts_between_sibling_views(self):
        """Batch-built views share link-attribute dictionaries; a mutation through one view
        must stay local to it (other nodes learn of new measurements via the protocol, not
        via shared memory) and must not silently corrupt the siblings' caches."""
        views = LocalView.all_from_network(self._network())
        metric = BandwidthMetric()
        sibling = views[1]
        sibling_before = sibling.compact_graph(metric)

        views[0].update_link(0, 1, bandwidth=9.0)

        assert views[0].link_value(0, 1, metric) == 9.0
        assert sibling.link_value(0, 1, metric) == 5.0  # untouched
        assert sibling.compact_graph(metric) is sibling_before  # its cache is still valid

    def test_update_link_rejects_unknown_links(self):
        view = LocalView.from_network(self._network(), 0)
        with pytest.raises(KeyError):
            view.update_link(0, 99, bandwidth=1.0)
