"""Tests for the Network model: links, neighborhoods, connectivity, weight handling."""

from __future__ import annotations

import math

import pytest

from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner
from repro.topology import Network


class TestConstruction:
    def test_add_node_and_position(self):
        network = Network()
        network.add_node(1, (10.0, 20.0))
        assert 1 in network
        assert network.position(1) == (10.0, 20.0)

    def test_add_link_creates_missing_endpoints(self):
        network = Network()
        network.add_link(1, 2, bandwidth=3.0)
        assert network.has_link(1, 2)
        assert network.has_link(2, 1)
        assert len(network) == 2

    def test_self_links_rejected(self):
        network = Network()
        with pytest.raises(ValueError):
            network.add_link(1, 1, bandwidth=3.0)

    def test_from_links_with_weights_and_positions(self):
        network = Network.from_links(
            {(1, 2): {"bandwidth": 4.0}, (2, 3): {"bandwidth": 2.0}},
            positions={1: (0, 0), 2: (1, 1), 3: (2, 2)},
        )
        assert network.link_value(1, 2, BandwidthMetric()) == 4.0
        assert network.position(3) == (2.0, 2.0)

    def test_from_links_weightless(self):
        network = Network.from_links([(1, 2), (2, 3)])
        assert network.number_of_links() == 2


class TestWeights:
    def test_link_value_per_metric(self, line_network, bandwidth, delay):
        assert line_network.link_value(0, 1, bandwidth) == 5.0
        assert line_network.link_value(0, 1, delay) == 1.0

    def test_link_attributes_returns_copy(self, line_network):
        attributes = line_network.link_attributes(0, 1)
        attributes["bandwidth"] = 99.0
        assert line_network.link_value(0, 1, BandwidthMetric()) == 5.0

    def test_missing_link_raises(self, line_network):
        with pytest.raises(KeyError):
            line_network.link_attributes(0, 3)

    def test_set_link_weight(self, line_network, bandwidth):
        line_network.set_link_weight(0, 1, "bandwidth", 7.5)
        assert line_network.link_value(0, 1, bandwidth) == 7.5

    def test_set_link_weight_on_missing_link(self, line_network):
        with pytest.raises(KeyError):
            line_network.set_link_weight(0, 3, "bandwidth", 1.0)

    def test_apply_weight_assigner_covers_all_links(self, line_network, delay):
        line_network.apply_weight_assigner(
            UniformWeightAssigner(metric=delay, low=2.0, high=3.0, seed=5)
        )
        line_network.validate_metric_coverage(delay)
        for u, v in line_network.links():
            assert 2.0 <= line_network.link_value(u, v, delay) <= 3.0

    def test_validate_metric_coverage_detects_missing_weight(self, bandwidth):
        network = Network.from_links({(1, 2): {"delay": 1.0}})
        with pytest.raises(KeyError):
            network.validate_metric_coverage(bandwidth)


class TestNeighborhoods:
    def test_neighbors(self, line_network):
        assert line_network.neighbors(1) == {0, 2}

    def test_two_hop_neighbors_exclude_self_and_one_hop(self, line_network):
        assert line_network.two_hop_neighbors(0) == {2}
        assert line_network.two_hop_neighbors(1) == {3}

    def test_degree_and_average_degree(self, line_network):
        assert line_network.degree(0) == 1
        assert line_network.degree(1) == 2
        assert line_network.average_degree() == pytest.approx(2 * 3 / 4)

    def test_distance(self, line_network):
        assert line_network.distance(0, 2) == pytest.approx(100.0)


class TestConnectivity:
    def test_connected_detection(self, line_network):
        assert line_network.is_connected()
        line_network.add_node(99, (500.0, 500.0))
        assert not line_network.is_connected()

    def test_largest_component(self, line_network):
        line_network.add_node(99, (500.0, 500.0))
        line_network.add_link(99, 98, bandwidth=1.0)
        largest = line_network.largest_component()
        assert set(largest.nodes()) == {0, 1, 2, 3}

    def test_subnetwork_preserves_weights_and_positions(self, line_network, bandwidth):
        sub = line_network.subnetwork([0, 1, 2])
        assert sub.link_value(1, 2, bandwidth) == 3.0
        assert sub.position(2) == line_network.position(2)
        assert not sub.has_link(2, 3)

    def test_copy_is_independent(self, line_network, bandwidth):
        clone = line_network.copy()
        clone.set_link_weight(0, 1, "bandwidth", 42.0)
        assert line_network.link_value(0, 1, bandwidth) == 5.0

    def test_describe_mentions_counts(self, line_network):
        text = line_network.describe()
        assert "nodes=4" in text and "links=3" in text

    def test_empty_network_properties(self):
        network = Network()
        assert len(network) == 0
        assert network.average_degree() == 0.0
        assert not network.is_connected()
        assert network.largest_component().nodes() == []
