"""Tests for the repro-sweep CLI, the streaming sink API and the figures-CLI overrides."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import cli as figures_cli
from repro.experiments import sweep_cli
from repro.experiments.engine import run_experiment
from repro.experiments.reporting import render_report, write_json, write_report
from repro.experiments.sinks import JsonlSink, JsonSink, MemorySink, ProgressSink, TextReportSink
from repro.experiments.spec import ExperimentSpec

EXAMPLE_SPEC = Path(__file__).resolve().parent.parent / "examples" / "specs" / "custom_delay_sweep.json"


def _tiny_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec.load(EXAMPLE_SPEC)
    return spec.with_overrides(**overrides) if overrides else spec


class TestSweepCliParsing:
    def test_spec_and_preset_are_mutually_exclusive(self):
        parser = sweep_cli.build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--spec", "a.json", "--preset", "fig6"])

    def test_override_flags_parse(self):
        args = sweep_cli.build_parser().parse_args(
            [
                "--preset",
                "fig6",
                "--densities",
                "10,15.5",
                "--selectors",
                "fnbp,olsr-mpr",
                "--node-sample",
                "all",
                "--runs",
                "3",
            ]
        )
        assert args.densities == (10.0, 15.5)
        assert args.selectors == ("fnbp", "olsr-mpr")
        assert args.node_sample is None
        assert args.runs == 3

    def test_density_and_list_parsers_reject_garbage(self):
        with pytest.raises(Exception):
            sweep_cli.parse_densities("10,abc")
        with pytest.raises(Exception):
            sweep_cli.parse_densities(",")
        with pytest.raises(Exception):
            sweep_cli.parse_name_list(" , ")
        with pytest.raises(Exception):
            sweep_cli.parse_node_sample("many")
        assert sweep_cli.parse_node_sample("0") is None
        assert sweep_cli.parse_node_sample("25") == 25

    def test_without_spec_or_preset_minimum_fields_are_required(self, capsys):
        with pytest.raises(SystemExit):
            sweep_cli.main(["--metric", "delay"])
        assert "--measure" in capsys.readouterr().err

    def test_unknown_registry_name_is_a_clean_cli_error(self, capsys):
        with pytest.raises(SystemExit):
            sweep_cli.main(["--preset", "fig6", "--metric", "throughput", "--quiet"])
        assert "metric registry" in capsys.readouterr().err

    def test_list_prints_every_registry_section(self, capsys):
        assert sweep_cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        for section in ("measures", "metrics", "selectors", "topology-models", "sinks", "presets"):
            assert section in out
        assert "fnbp" in out and "poisson" in out and "jsonl" in out

    def test_list_output_is_pinned_to_the_committed_golden(self, capsys):
        """``--list`` is deterministically ordered (sorted sections, sorted entries) and
        byte-identical to ``tests/data/sweep_list_golden.txt``; registering or renaming an
        entry must update the golden, which documents every extension point's surface."""
        golden = Path(__file__).resolve().parent / "data" / "sweep_list_golden.txt"
        assert sweep_cli.main(["--list"]) == 0
        assert capsys.readouterr().out == golden.read_text()
        assert sweep_cli.render_registries() + "\n" == golden.read_text()

    def test_timestep_flags_parse_and_reach_the_spec(self):
        args = sweep_cli.build_parser().parse_args(
            ["--preset", "mobility-churn", "--timesteps", "5", "--step-interval", "0.5"]
        )
        assert args.timesteps == 5 and args.step_interval == 0.5
        spec = sweep_cli._apply_overrides(sweep_cli._base_spec(args, sweep_cli.build_parser()), args)
        assert spec.timesteps == 5 and spec.step_interval == 0.5


class TestSweepCliEndToEnd:
    def test_example_spec_runs_with_all_sinks(self, tmp_path, capsys):
        """The acceptance sweep: custom densities x delay metric x a selector subset, from a
        committed JSON spec, streaming to a JSONL sink -- none of which the pre-redesign
        harness could express without editing source."""
        output = tmp_path / "report.txt"
        json_output = tmp_path / "results.json"
        jsonl_output = tmp_path / "events.jsonl"
        exit_code = sweep_cli.main(
            [
                "--spec",
                str(EXAMPLE_SPEC),
                "--quiet",
                "--output",
                str(output),
                "--json",
                str(json_output),
                "--jsonl",
                str(jsonl_output),
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "custom-delay" in printed

        spec = _tiny_spec()
        assert spec.experiment_id in output.read_text()
        payload = json.loads(json_output.read_text())
        assert set(payload) == {spec.experiment_id}
        assert set(payload[spec.experiment_id]["series"]) == set(spec.selectors)

        events = [json.loads(line) for line in jsonl_output.read_text().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep_start" and kinds[-1] == "result"
        assert kinds.count("density") == len(spec.densities)
        assert kinds.count("trial") == len(spec.densities) * spec.runs
        # Events arrive in sweep order: every trial of a density precedes its density line.
        assert kinds.index("density") > kinds.index("trial")
        assert events[0]["spec"] == spec.to_dict()

    def test_mobility_example_spec_streams_per_timestep_points(self, tmp_path):
        """The committed dynamic-sweep example (also smoke-run in CI): a random-waypoint
        churn sweep whose density checkpoints carry per-timestep curves."""
        spec_path = EXAMPLE_SPEC.parent / "mobility_churn_sweep.json"
        jsonl_output = tmp_path / "events.jsonl"
        exit_code = sweep_cli.main(
            ["--spec", str(spec_path), "--quiet", "--jsonl", str(jsonl_output)]
        )
        assert exit_code == 0
        spec = ExperimentSpec.load(spec_path)
        events = [json.loads(line) for line in jsonl_output.read_text().splitlines()]
        assert events[0]["spec"]["timesteps"] == spec.timesteps > 0
        density_events = [event for event in events if event["event"] == "density"]
        assert len(density_events) == len(spec.densities)
        for event in density_events:
            for name in spec.selectors:
                point = event["series"][name]
                assert len(point["per_step_mean"]) == spec.timesteps
        assert events[-1]["event"] == "result"

    def test_preset_with_overrides_runs(self, tmp_path):
        json_output = tmp_path / "results.json"
        exit_code = sweep_cli.main(
            [
                "--preset",
                "fig6",
                "--quiet",
                "--densities",
                "8",
                "--runs",
                "1",
                "--node-sample",
                "10",
                "--json",
                str(json_output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_output.read_text())
        assert set(payload) == {"fig6"}
        assert [point["density"] for point in payload["fig6"]["series"]["fnbp"]] == [8.0]

    def test_spec_built_from_scratch_with_flags_only(self, tmp_path):
        """A sweep assembled purely from flags: new metric family, selector subset."""
        json_output = tmp_path / "results.json"
        exit_code = sweep_cli.main(
            [
                "--measure",
                "ans-size",
                "--metric",
                "jitter",
                "--densities",
                "5",
                "--runs",
                "1",
                "--node-sample",
                "10",
                "--selectors",
                "fnbp,olsr-mpr",
                "--id",
                "jitter-ans",
                "--quiet",
                "--json",
                str(json_output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_output.read_text())
        assert set(payload) == {"jitter-ans"}
        assert payload["jitter-ans"]["metric"] == "jitter"
        assert set(payload["jitter-ans"]["series"]) == {"fnbp", "olsr-mpr"}

    def test_cli_overrides_change_the_executed_spec(self, tmp_path):
        json_output = tmp_path / "results.json"
        exit_code = sweep_cli.main(
            [
                "--spec",
                str(EXAMPLE_SPEC),
                "--quiet",
                "--id",
                "renamed",
                "--densities",
                "6",
                "--selectors",
                "fnbp",
                "--json",
                str(json_output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_output.read_text())
        assert set(payload) == {"renamed"}
        assert set(payload["renamed"]["series"]) == {"fnbp"}
        assert [point["density"] for point in payload["renamed"]["series"]["fnbp"]] == [6.0]


class TestSinks:
    def test_text_and_json_sinks_match_reporting_helpers(self, tmp_path):
        spec = _tiny_spec()
        text_sink = TextReportSink(tmp_path / "sink.txt", header="spec=custom-delay")
        json_sink = JsonSink(tmp_path / "sink.json")
        memory = MemorySink()
        result = run_experiment(spec, sinks=(text_sink, json_sink, memory))
        for sink in (text_sink, json_sink, memory):
            sink.close()

        assert memory.results == [result]
        write_report([result], tmp_path / "helper.txt", header="spec=custom-delay")
        write_json([result], tmp_path / "helper.json")
        assert (tmp_path / "sink.txt").read_text() == (tmp_path / "helper.txt").read_text()
        assert (tmp_path / "sink.json").read_text() == (tmp_path / "helper.json").read_text()

    def test_jsonl_sink_checkpoints_each_density_incrementally(self, tmp_path):
        """After every density event the finished densities are already on disk -- the
        property that makes long paper-profile runs resumable from their sink file."""
        spec = _tiny_spec()
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, trials=False)

        seen_on_disk = []
        original = sink.on_density

        def checking_on_density(spec_arg, density, points):
            original(spec_arg, density, points)
            on_disk = [json.loads(line) for line in path.read_text().splitlines()]
            seen_on_disk.append([e["density"] for e in on_disk if e["event"] == "density"])

        sink.on_density = checking_on_density
        run_experiment(spec, sinks=(sink,))
        sink.close()
        assert seen_on_disk == [[6.0], [6.0, 9.0]]

    def test_progress_lines_are_sink_events(self):
        spec = _tiny_spec()
        messages = []
        run_experiment(spec, sinks=(ProgressSink(messages.append),))
        assert messages and all("density=" in message for message in messages)
        legacy_messages = []
        run_experiment(spec, progress=legacy_messages.append)
        assert legacy_messages == messages

    def test_stderr_progress_sink_and_context_manager(self, capsys):
        from repro.experiments.sinks import stderr_progress_sink

        with stderr_progress_sink() as sink:
            sink.on_trial(None, 1.0, 0, {}, "a progress line")
            sink.on_trial(None, 1.0, 1, {}, None)
        assert capsys.readouterr().err == "a progress line\n"

    def test_render_report_reuses_result_tables(self):
        spec = _tiny_spec()
        result = run_experiment(spec)
        report = render_report([result], header="h")
        assert report.startswith("h\n")
        assert result.to_table() in report


class TestFailedRunsDoNotClobberOutputs:
    def test_figures_cli_failure_leaves_existing_files_untouched(self, tmp_path):
        output = tmp_path / "report.txt"
        json_output = tmp_path / "results.json"
        output.write_text("previous good report")
        json_output.write_text('{"previous": "good"}')
        with pytest.raises(ValueError):
            figures_cli.main(
                [
                    "--figure",
                    "6",
                    "--profile",
                    "smoke",
                    "--quiet",
                    "--runs",
                    "0",
                    "--output",
                    str(output),
                    "--json",
                    str(json_output),
                ]
            )
        assert output.read_text() == "previous good report"
        assert json_output.read_text() == '{"previous": "good"}'

    def test_sweep_cli_failure_keeps_reports_but_flushes_jsonl_checkpoints(self, tmp_path, monkeypatch):
        output = tmp_path / "report.txt"
        jsonl_output = tmp_path / "events.jsonl"
        output.write_text("previous good report")

        def exploding_run_experiment(spec, sinks=(), workers=None, **kwargs):
            for sink in sinks:
                sink.on_sweep_start(spec)
            raise RuntimeError("died mid-sweep")

        monkeypatch.setattr(sweep_cli, "run_experiment", exploding_run_experiment)
        with pytest.raises(RuntimeError):
            sweep_cli.main(
                [
                    "--spec",
                    str(EXAMPLE_SPEC),
                    "--quiet",
                    "--output",
                    str(output),
                    "--jsonl",
                    str(jsonl_output),
                ]
            )
        assert output.read_text() == "previous good report"
        events = [json.loads(line) for line in jsonl_output.read_text().splitlines()]
        assert [event["event"] for event in events] == ["sweep_start"]


class TestFiguresCliOverrides:
    def test_parser_accepts_densities_and_node_sample(self):
        parser = figures_cli.build_parser()
        args = parser.parse_args(
            ["--figure", "6", "--densities", "8,12", "--node-sample", "10"]
        )
        assert args.densities == (8.0, 12.0)
        assert args.node_sample == 10
        defaults = parser.parse_args(["--figure", "6"])
        assert defaults.densities is None
        assert defaults.node_sample is sweep_cli.NODE_SAMPLE_UNSET

    def test_density_override_reaches_the_sweep(self, tmp_path, capsys):
        json_output = tmp_path / "results.json"
        exit_code = figures_cli.main(
            [
                "--figure",
                "6",
                "--profile",
                "smoke",
                "--quiet",
                "--densities",
                "7",
                "--node-sample",
                "10",
                "--json",
                str(json_output),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        payload = json.loads(json_output.read_text())
        densities = [point["density"] for point in payload["fig6"]["series"]["fnbp"]]
        assert densities == [7.0]
        assert "sample of up to 10 nodes" in "\n".join(payload["fig6"]["notes"])

    def test_figure_metric_comes_from_its_preset(self):
        from repro.experiments.presets import figure_spec

        assert [figure_spec(n).metric for n in (6, 7, 8, 9)] == [
            "bandwidth",
            "delay",
            "bandwidth",
            "delay",
        ]
