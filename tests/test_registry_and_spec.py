"""Tests for the unified registry subsystem and the declarative ExperimentSpec."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import smoke_config
from repro.experiments.spec import ExperimentSpec
from repro.registry import (
    ALL_REGISTRIES,
    MEASURES,
    METRICS,
    PRESETS,
    SELECTORS,
    SINKS,
    TOPOLOGY_MODELS,
    Registry,
)
from repro.topology.generators import FieldSpec


class TestRegistry:
    def test_decorator_and_direct_registration(self):
        registry = Registry("demo")

        @registry.register("decorated", description="a decorated entry")
        class Decorated:
            pass

        registry.register("direct", lambda: "made-directly")
        assert registry.names() == ["decorated", "direct"]
        assert isinstance(registry.create("decorated"), Decorated)
        assert registry.create("direct") == "made-directly"
        assert "decorated" in registry and "missing" not in registry
        assert registry.describe()["decorated"] == "a decorated entry"

    def test_unknown_name_error_names_registry_and_known_entries(self):
        registry = Registry("demo")
        registry.register("only-entry", lambda: None)
        with pytest.raises(KeyError) as excinfo:
            registry.get("nope")
        message = str(excinfo.value)
        assert "demo registry" in message
        assert "only-entry" in message
        assert "nope" in message

    def test_iteration_and_length(self):
        registry = Registry("demo")
        registry.register("b", lambda: 2)
        registry.register("a", lambda: 1)
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2

    def test_non_callable_factory_is_rejected(self):
        registry = Registry("demo")
        with pytest.raises(TypeError):
            registry.register("bad", "not-callable")

    def test_failed_populate_surfaces_on_every_lookup(self):
        """A broken built-in load must not latch the registry into 'knows []' -- the real
        error re-raises on retry instead of a misleading empty-registry KeyError."""
        registry = Registry("demo")
        attempts = []

        @registry.on_populate
        def _broken_load():
            attempts.append(True)
            if len(attempts) < 2:
                raise ImportError("optional dependency missing")
            registry.register("late", lambda: "finally-loaded")

        with pytest.raises(ImportError):
            registry.names()
        assert registry.names() == ["late"]  # retried, not latched empty
        assert len(attempts) == 2

    def test_lazy_populate_runs_once_on_first_lookup(self):
        calls = []
        registry = Registry("demo")

        @registry.on_populate
        def _load():
            calls.append(True)
            registry.register("built-in", lambda: 42)

        assert calls == []
        assert registry.names() == ["built-in"]
        assert registry.create("built-in") == 42
        assert calls == [True]

    @pytest.mark.parametrize(
        "registry, expected",
        [
            (SELECTORS, {"fnbp", "qolsr-mpr2", "topology-filtering", "olsr-mpr"}),
            (METRICS, {"bandwidth", "delay", "jitter"}),
            (TOPOLOGY_MODELS, {"poisson", "fixed-count", "grid"}),
            (MEASURES, {"ans-size", "overhead"}),
            (SINKS, {"text", "json", "jsonl", "progress"}),
            (PRESETS, {"fig6", "fig7", "fig8", "fig9"}),
        ],
    )
    def test_builtin_entries_are_registered(self, registry, expected):
        assert expected <= set(registry.names())

    def test_all_registries_index_is_complete(self):
        assert set(ALL_REGISTRIES.values()) == {
            SELECTORS,
            METRICS,
            TOPOLOGY_MODELS,
            MEASURES,
            SINKS,
            PRESETS,
        }

    @pytest.mark.parametrize(
        "registry, kind",
        [(SELECTORS, "selector"), (METRICS, "metric"), (TOPOLOGY_MODELS, "topology model"), (MEASURES, "measure")],
    )
    def test_builtin_unknown_name_errors_are_self_explanatory(self, registry, kind):
        with pytest.raises(KeyError) as excinfo:
            registry.get("definitely-not-registered")
        message = str(excinfo.value)
        assert f"{kind} registry" in message
        for known in registry.names():
            assert known in message


def _spec(**overrides) -> ExperimentSpec:
    base = dict(
        experiment_id="custom",
        title="A custom sweep",
        measure="overhead",
        metric="delay",
        selectors=("fnbp", "topology-filtering"),
        densities=(6.0, 9.0),
        runs=2,
        pairs_per_run=3,
        node_sample=20,
        field=FieldSpec(width=400.0, height=400.0, radius=100.0),
        seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestExperimentSpec:
    @pytest.mark.parametrize(
        "spec",
        [
            _spec(),
            _spec(node_sample=None, measure="ans-size", metric="bandwidth"),
            _spec(topology="fixed-count", densities=(30,), selectors=("fnbp",)),
        ],
    )
    def test_json_round_trip_is_identity(self, spec):
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_dump_and_load(self, tmp_path):
        spec = _spec()
        path = spec.dump(tmp_path / "spec.json")
        assert ExperimentSpec.load(path) == spec

    @pytest.mark.parametrize(
        "field_name, value, kind",
        [
            ("metric", "throughput", "metric"),
            ("measure", "latency-cdf", "measure"),
            ("topology", "mobility", "topology model"),
            ("selectors", ("fnbp", "not-a-selector"), "selector"),
        ],
    )
    def test_unknown_registry_names_fail_fast_with_known_entries(self, field_name, value, kind):
        spec = _spec()
        payload = spec.to_dict()
        payload[field_name] = list(value) if isinstance(value, tuple) else value
        with pytest.raises(KeyError) as excinfo:
            ExperimentSpec.from_dict(payload)
        assert f"{kind} registry" in str(excinfo.value)

    def test_unknown_spec_fields_are_rejected_by_name(self):
        payload = _spec().to_dict()
        payload["densitise"] = [1, 2]
        with pytest.raises(ValueError, match="densitise"):
            ExperimentSpec.from_dict(payload)

    def test_numeric_validation_matches_sweep_config(self):
        with pytest.raises(ValueError):
            _spec(densities=())
        with pytest.raises(ValueError):
            _spec(runs=0)
        with pytest.raises(ValueError):
            _spec(weight_low=5.0, weight_high=2.0)

    def test_sweep_config_round_trip(self):
        config = smoke_config("delay").with_overrides(topology="fixed-count")
        spec = ExperimentSpec.from_config(
            config, experiment_id="x", title="t", measure="overhead", metric="delay"
        )
        assert spec.sweep_config() == config

    def test_with_sweep_config_keeps_identity_fields(self):
        spec = _spec()
        narrowed = spec.with_sweep_config(smoke_config("delay"))
        assert narrowed.experiment_id == spec.experiment_id
        assert narrowed.measure == spec.measure and narrowed.metric == spec.metric
        assert narrowed.densities == smoke_config("delay").densities
        assert narrowed.node_sample == smoke_config("delay").node_sample

    def test_field_accepts_nested_dict(self):
        spec = _spec(field={"width": 250.0, "height": 300.0, "radius": 90.0})
        assert spec.field == FieldSpec(width=250.0, height=300.0, radius=90.0)


class TestPresets:
    @pytest.mark.parametrize(
        "name, measure, metric",
        [
            ("fig6", "ans-size", "bandwidth"),
            ("fig7", "ans-size", "delay"),
            ("fig8", "overhead", "bandwidth"),
            ("fig9", "overhead", "delay"),
        ],
    )
    def test_presets_cover_the_evaluation_figures(self, name, measure, metric):
        spec = PRESETS.create(name)
        assert spec.experiment_id == name
        assert spec.measure == measure
        assert spec.metric == metric
        assert spec.runs == 100  # the paper profile
        assert spec.validate_names() is spec

    def test_figure_spec_by_number(self):
        from repro.experiments.presets import figure_spec

        assert figure_spec(6).metric == "bandwidth"
        assert figure_spec(9).measure == "overhead"
        with pytest.raises(KeyError):
            figure_spec(3)
