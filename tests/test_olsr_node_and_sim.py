"""Tests for the OLSR node state machine, the event engine, the ideal radio and the full
protocol simulation (integration: simulated tables must converge to the graph-level truth)."""

from __future__ import annotations

import math

import pytest

from repro.core import FnbpSelector
from repro.baselines import OlsrMprSelector
from repro.localview import LocalView
from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner
from repro.olsr import DataPacket, OlsrNode, Packet, constants
from repro.olsr.messages import HelloMessage, TcMessage
from repro.sim import IdealRadio, OlsrSimulation, Simulator
from repro.topology import GridNetworkGenerator, Network


class TestSimulatorEngine:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(2.0, lambda: order.append("late"))
        simulator.schedule_at(1.0, lambda: order.append("early"))
        simulator.schedule_in(1.5, lambda: order.append("middle"))
        simulator.run_until(5.0)
        assert order == ["early", "middle", "late"]
        assert simulator.now == 5.0
        assert simulator.processed_events == 3

    def test_run_until_leaves_future_events_pending(self):
        simulator = Simulator()
        simulator.schedule_at(10.0, lambda: None)
        simulator.run_until(5.0)
        assert simulator.pending_events() == 1

    def test_cancelled_events_do_not_run(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule_at(1.0, lambda: fired.append(True))
        handle.cancel()
        simulator.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_scheduling_in_the_past_is_rejected(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run_until(1.0)
        with pytest.raises(ValueError):
            simulator.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            simulator.schedule_in(-1.0, lambda: None)

    def test_run_all_guards_against_runaway_event_loops(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule_in(0.1, reschedule)

        simulator.schedule_in(0.1, reschedule)
        with pytest.raises(RuntimeError):
            simulator.run_all(max_events=50)


class TestIdealRadio:
    def _setup(self, line_network):
        simulator = Simulator()
        received = []
        radio = IdealRadio(
            network=line_network,
            simulator=simulator,
            deliver=lambda node, packet: received.append((node, packet)),
            propagation_delay=0.01,
        )
        return simulator, radio, received

    def test_broadcast_reaches_exactly_the_neighbors(self, line_network):
        simulator, radio, received = self._setup(line_network)
        packet = Packet(message="m", sender=1)
        radio.broadcast(1, packet)
        simulator.run_until(1.0)
        assert sorted(node for node, _ in received) == [0, 2]
        assert radio.statistics.broadcasts == 1
        assert radio.statistics.deliveries == 2

    def test_unicast_requires_a_link(self, line_network):
        simulator, radio, received = self._setup(line_network)
        radio.unicast(0, 1, Packet(message="m", sender=0))
        radio.unicast(0, 3, Packet(message="m", sender=0))
        simulator.run_until(1.0)
        assert [node for node, _ in received] == [1]
        assert radio.statistics.undeliverable_unicasts == 1

    def test_negative_propagation_delay_rejected(self, line_network):
        with pytest.raises(ValueError):
            IdealRadio(line_network, Simulator(), lambda *a: None, propagation_delay=-1.0)


class TestOlsrNode:
    def _hello_from(self, origin, links, mpr=()):
        from repro.olsr.messages import LinkReport, next_sequence_number

        return HelloMessage(
            originator=origin,
            sequence_number=next_sequence_number(),
            links=tuple(LinkReport(n, w, is_mpr=n in mpr) for n, w in links.items()),
        )

    def test_hello_processing_builds_view_and_selection(self, delay):
        node = OlsrNode(0, delay, selector=FnbpSelector(), link_weights={1: {"delay": 1.0}})
        hello = self._hello_from(1, {0: {"delay": 1.0}, 5: {"delay": 2.0}})
        node.handle_packet(Packet(message=hello, sender=1), now=0.0)
        node.refresh_selection()
        view = node.local_view()
        assert view.one_hop == {1}
        assert view.two_hop == {5}
        assert node.ans_set == frozenset({1})
        assert node.mpr_set == frozenset({1})

    def test_tc_generation_advertises_the_ans(self, delay):
        node = OlsrNode(0, delay, link_weights={1: {"delay": 1.0}})
        node.handle_packet(
            Packet(message=self._hello_from(1, {0: {"delay": 1.0}, 5: {"delay": 2.0}}), sender=1),
            now=0.0,
        )
        node.refresh_selection()
        tc = node.make_tc()
        assert tc is not None
        assert tc.advertised_nodes() == frozenset({1})
        assert node.statistics.tcs_sent == 1

    def test_no_tc_when_nothing_to_advertise(self, delay):
        node = OlsrNode(0, delay)
        node.refresh_selection()
        assert node.make_tc() is None

    def test_tc_forwarding_follows_the_mpr_flooding_rule(self, delay):
        node = OlsrNode(0, delay, link_weights={1: {"delay": 1.0}, 2: {"delay": 1.0}})
        # Neighbor 1 declares node 0 as its MPR; neighbor 2 does not.
        node.handle_packet(Packet(message=self._hello_from(1, {0: {"delay": 1.0}}, mpr={0}), sender=1), now=0.0)
        node.handle_packet(Packet(message=self._hello_from(2, {0: {"delay": 1.0}}), sender=2), now=0.0)
        tc = TcMessage(originator=9, sequence_number=12345, ansn=1, advertised=())

        forwarded = node.handle_packet(Packet(message=tc, sender=1, ttl=4), now=1.0)
        assert len(forwarded) == 1 and forwarded[0].sender == 0

        # Duplicate: already retransmitted, never forwarded twice.
        again = node.handle_packet(Packet(message=tc, sender=1, ttl=4), now=1.1)
        assert again == []

        other_tc = TcMessage(originator=9, sequence_number=12346, ansn=1, advertised=())
        from_non_selector = node.handle_packet(Packet(message=other_tc, sender=2, ttl=4), now=1.2)
        assert from_non_selector == []

        expired_ttl = node.handle_packet(
            Packet(message=TcMessage(9, 12347, 1, ()), sender=1, ttl=1), now=1.3
        )
        assert expired_ttl == []

    def test_own_tc_is_ignored(self, delay):
        node = OlsrNode(0, delay)
        tc = TcMessage(originator=0, sequence_number=1, ansn=1, advertised=())
        assert node.handle_packet(Packet(message=tc, sender=3), now=0.0) == []

    def test_data_packet_delivery_and_drop(self, delay):
        node = OlsrNode(0, delay)
        delivered = node.handle_packet(
            Packet(message=DataPacket(source=5, destination=0), sender=1), now=0.0
        )
        assert delivered == []
        assert node.statistics.data_delivered == 1
        dropped = node.handle_packet(
            Packet(message=DataPacket(source=5, destination=7), sender=1), now=0.0
        )
        assert dropped == []
        assert node.statistics.data_dropped == 1

    def test_unknown_message_type_rejected(self, delay):
        node = OlsrNode(0, delay)
        with pytest.raises(TypeError):
            node.handle_packet(Packet(message=object(), sender=1))


@pytest.fixture
def simulated_grid(delay):
    assigners = (UniformWeightAssigner(metric=delay, low=1.0, high=10.0, seed=21),)
    network = GridNetworkGenerator(rows=3, columns=3, spacing=80.0, radius=100.0, weight_assigners=assigners).generate()
    return network


class TestOlsrSimulation:
    def test_converged_ans_matches_graph_level_selection(self, simulated_grid, delay):
        simulation = OlsrSimulation(simulated_grid, delay, selector_factory=FnbpSelector, seed=5)
        simulation.run_until_converged(25.0)
        expected = {
            node: FnbpSelector().select(LocalView.from_network(simulated_grid, node), delay).selected
            for node in simulated_grid.nodes()
        }
        assert simulation.ans_sets() == expected

    def test_converged_mpr_matches_graph_level_mpr(self, simulated_grid, delay):
        from repro.olsr.mpr import rfc3626_mpr

        simulation = OlsrSimulation(simulated_grid, delay, selector_factory=OlsrMprSelector, seed=5)
        simulation.run_until_converged(25.0)
        expected = {
            node: rfc3626_mpr(LocalView.from_network(simulated_grid, node))
            for node in simulated_grid.nodes()
        }
        assert simulation.mpr_sets() == expected

    def test_data_delivery_follows_reasonable_paths(self, simulated_grid, delay):
        simulation = OlsrSimulation(simulated_grid, delay, selector_factory=FnbpSelector, seed=5)
        simulation.run_until_converged(25.0)
        report = simulation.send_data(0, 8)
        assert report.delivered
        assert report.path[0] == 0 and report.path[-1] == 8
        assert report.hop_count >= 2  # opposite grid corners cannot be adjacent
        assert math.isfinite(report.value)

    def test_control_traffic_is_generated_and_flooded(self, simulated_grid, delay):
        simulation = OlsrSimulation(simulated_grid, delay, selector_factory=FnbpSelector, seed=5)
        simulation.run_until_converged(20.0)
        counts = simulation.control_message_counts()
        assert counts["hellos_sent"] > 0
        assert counts["tcs_sent"] > 0
        trace_counts = simulation.trace.counts()
        assert trace_counts.get("hello-sent", 0) == counts["hellos_sent"]
        assert simulation.average_ans_size() > 0

    def test_send_data_between_unknown_nodes_raises(self, simulated_grid, delay):
        simulation = OlsrSimulation(simulated_grid, delay, seed=5)
        with pytest.raises(KeyError):
            simulation.send_data(0, 999)
