"""Tests for the shared utilities: identifiers, seeding and validation."""

from __future__ import annotations

import pytest

from repro.utils.ids import normalize_node_id, smallest_id
from repro.utils.seeding import derive_seed, make_rng, spawn_rng
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestNodeIds:
    def test_normalize_accepts_ints(self):
        assert normalize_node_id(7) == 7

    def test_normalize_accepts_integral_floats_and_strings(self):
        assert normalize_node_id(4.0) == 4
        assert normalize_node_id("12") == 12

    def test_normalize_rejects_fractional_floats(self):
        with pytest.raises(ValueError):
            normalize_node_id(3.5)

    def test_normalize_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_node_id(-1)

    def test_normalize_rejects_booleans_and_other_types(self):
        with pytest.raises(TypeError):
            normalize_node_id(True)
        with pytest.raises(TypeError):
            normalize_node_id(object())

    def test_smallest_id(self):
        assert smallest_id([5, 2, 9]) == 2

    def test_smallest_id_empty_raises(self):
        with pytest.raises(ValueError):
            smallest_id([])


class TestSeeding:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(42, "topology", 3) == derive_seed(42, "topology", 3)

    def test_derive_seed_changes_with_components(self):
        assert derive_seed(42, "topology", 3) != derive_seed(42, "topology", 4)
        assert derive_seed(42, "topology", 3) != derive_seed(43, "topology", 3)

    def test_derive_seed_fits_in_63_bits(self):
        for component in range(50):
            assert 0 <= derive_seed(1, component) < 2 ** 63

    def test_spawn_rng_streams_are_independent_and_reproducible(self):
        first = spawn_rng(7, "a").random()
        second = spawn_rng(7, "a").random()
        other = spawn_rng(7, "b").random()
        assert first == second
        assert first != other

    def test_make_rng_with_seed_reproduces(self):
        assert make_rng(5).random() == make_rng(5).random()


class TestValidation:
    def test_require_positive_passes_and_returns(self):
        assert require_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0, -1, float("inf"), float("nan")])
    def test_require_positive_rejects(self, value):
        with pytest.raises(ValueError):
            require_positive(value, "x")

    def test_require_positive_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            require_positive("3", "x")

    def test_require_non_negative(self):
        assert require_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")

    def test_require_probability(self):
        assert require_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            require_probability(1.5, "p")

    def test_require_in_range(self):
        assert require_in_range(3, "x", 1, 5) == 3
        with pytest.raises(ValueError):
            require_in_range(6, "x", 1, 5)
