"""Property-based tests of the first-hop machinery on random weighted graphs.

These are the load-bearing invariants of the whole reproduction: the fast all-targets
first-hop computations must agree with the direct per-target transcription of the paper's
definition, and the first-hop sets themselves must satisfy the defining property (a neighbor
is in ``fP(u, v)`` iff starting with that neighbor's link can achieve the optimal value).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.localview import LocalView, all_first_hops, best_value_between, first_hops_to
from repro.metrics import BandwidthMetric, DelayMetric
from repro.topology import Network


METRICS = (BandwidthMetric(), DelayMetric())


@st.composite
def random_weighted_networks(draw, max_nodes: int = 12):
    """A small connected-ish random network with integer-ish weights (ties are likely)."""
    node_count = draw(st.integers(min_value=3, max_value=max_nodes))
    nodes = list(range(node_count))
    network = Network()
    for node in nodes:
        network.add_node(node, (float(node), 0.0))
    # A random spanning chain keeps most graphs connected, then extra random edges.
    edges = set()
    for left, right in zip(nodes, nodes[1:]):
        edges.add((left, right))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, node_count - 1), st.integers(0, node_count - 1)),
            max_size=2 * node_count,
        )
    )
    for a, b in extra:
        if a != b:
            edges.add((min(a, b), max(a, b)))
    for a, b in sorted(edges):
        bandwidth = draw(st.integers(min_value=1, max_value=6))
        delay = draw(st.integers(min_value=1, max_value=6))
        network.add_link(a, b, bandwidth=float(bandwidth), delay=float(delay))
    return network


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(network=random_weighted_networks(), owner_index=st.integers(min_value=0, max_value=11))
def test_fast_first_hop_methods_agree_with_reference(network, owner_index):
    owner = sorted(network.nodes())[owner_index % len(network.nodes())]
    view = LocalView.from_network(network, owner)
    for metric in METRICS:
        fast = all_first_hops(view, metric, method="auto")
        reference = all_first_hops(view, metric, method="per-target")
        assert fast == reference


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(network=random_weighted_networks(), owner_index=st.integers(min_value=0, max_value=11))
def test_first_hop_sets_satisfy_their_defining_property(network, owner_index):
    """w ∈ fP(u, v) iff combine(w(u, w), best(w → v in G_u \\ u)) equals the optimum, and the
    optimum over all neighbors equals the view-wide best value from u to v."""
    owner = sorted(network.nodes())[owner_index % len(network.nodes())]
    view = LocalView.from_network(network, owner)
    for metric in METRICS:
        for target in view.known_targets():
            result = first_hops_to(view, target, metric)
            candidates = {}
            for neighbor in view.one_hop:
                link = view.direct_link_value(neighbor, metric)
                if neighbor == target:
                    remainder = metric.identity
                else:
                    remainder = best_value_between(
                        view.graph, neighbor, target, metric, excluded=(owner,)
                    )
                    if not metric.is_usable(remainder) and not metric.values_equal(
                        remainder, metric.identity
                    ):
                        continue
                candidates[neighbor] = metric.combine(metric.combine(metric.identity, link), remainder)
            assert candidates, "a known target must be reachable through some neighbor"
            best = metric.optimum(candidates.values())
            assert metric.values_equal(best, result.best_value)
            expected_first_hops = {
                neighbor
                for neighbor, value in candidates.items()
                if metric.values_equal(value, best)
            }
            assert result.first_hops == frozenset(expected_first_hops)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(network=random_weighted_networks(), owner_index=st.integers(min_value=0, max_value=11))
def test_first_hops_are_always_one_hop_neighbors(network, owner_index):
    """``fP(u, v)`` is by definition a subset of ``N(u)``, under every method and metric."""
    owner = sorted(network.nodes())[owner_index % len(network.nodes())]
    view = LocalView.from_network(network, owner)
    for metric in METRICS:
        for method in ("auto", "per-target"):
            for result in all_first_hops(view, metric, method=method).values():
                assert result.first_hops <= view.one_hop


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(network=random_weighted_networks(), owner_index=st.integers(min_value=0, max_value=11))
def test_concave_best_values_respect_the_direct_link_bottleneck_bound(network, owner_index):
    """A bottleneck path's value can never exceed its first link: for every first hop ``n``
    of a concave-optimal path, ``best_value <= w(u, n)`` (up to the metric's tolerance)."""
    metric = BandwidthMetric()
    owner = sorted(network.nodes())[owner_index % len(network.nodes())]
    view = LocalView.from_network(network, owner)
    for result in all_first_hops(view, metric).values():
        for neighbor in result.first_hops:
            direct = view.direct_link_value(neighbor, metric)
            assert metric.is_better_or_equal(direct, result.best_value)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    network=random_weighted_networks(),
    owner_index=st.integers(min_value=0, max_value=11),
    new_bandwidth=st.integers(min_value=1, max_value=9),
    new_delay=st.integers(min_value=1, max_value=9),
)
def test_cached_forest_answers_equal_fresh_ones_after_mutation(
    network, owner_index, new_bandwidth, new_delay
):
    """Warming the caches, mutating a link through the sanctioned path, and re-querying
    must give exactly the answers a cache-free view of the mutated graph gives."""
    owner = sorted(network.nodes())[owner_index % len(network.nodes())]
    view = LocalView.from_network(network, owner)
    for metric in METRICS:  # warm the compact-graph and bottleneck-forest caches
        all_first_hops(view, metric)
    u = owner
    v = sorted(view.one_hop)[0]
    view.update_link(u, v, bandwidth=float(new_bandwidth), delay=float(new_delay))
    pristine = LocalView(
        owner=owner, one_hop=view.one_hop, two_hop=view.two_hop, graph=view.graph.copy()
    )
    for metric in METRICS:
        assert all_first_hops(view, metric) == all_first_hops(pristine, metric)
        assert all_first_hops(view, metric, method="per-target") == all_first_hops(
            pristine, metric, method="per-target"
        )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(network=random_weighted_networks(), owner_index=st.integers(min_value=0, max_value=11))
def test_best_value_in_view_never_beats_global_optimum(network, owner_index):
    """A node's local view is a subgraph of the truth, so its best values cannot exceed the
    network-wide optimum (the paper's Figure 2 argument about localized algorithms)."""
    from repro.routing import optimal_route

    owner = sorted(network.nodes())[owner_index % len(network.nodes())]
    view = LocalView.from_network(network, owner)
    for metric in METRICS:
        for target in view.known_targets():
            local = first_hops_to(view, target, metric).best_value
            global_best = optimal_route(network, owner, target, metric).value
            assert metric.is_better_or_equal(global_best, local)
