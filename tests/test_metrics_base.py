"""Tests of the additive/concave metric protocol and the concrete single-criterion metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    BandwidthMetric,
    DelayMetric,
    HopCountMetric,
    JitterMetric,
    MetricKind,
    PacketLossMetric,
    get_metric,
    METRICS,
)
from repro.metrics.base import path_links


class TestAdditiveSemantics:
    def test_kind_and_identity(self, delay):
        assert delay.kind is MetricKind.ADDITIVE
        assert delay.identity == 0.0
        assert delay.worst == math.inf

    def test_combine_adds(self, delay):
        assert delay.combine(3.0, 2.5) == 5.5

    def test_path_value_sums(self, delay):
        assert delay.path_value([1.0, 2.0, 3.0]) == 6.0

    def test_path_value_of_empty_path_is_identity(self, delay):
        assert delay.path_value([]) == delay.identity

    def test_smaller_is_better(self, delay):
        assert delay.is_better(1.0, 2.0)
        assert not delay.is_better(2.0, 1.0)
        assert not delay.is_better(2.0, 2.0)

    def test_optimum_picks_minimum(self, delay):
        assert delay.optimum([4.0, 2.0, 7.0]) == 2.0

    def test_optimum_of_empty_is_worst(self, delay):
        assert delay.optimum([]) == delay.worst

    def test_is_usable(self, delay):
        assert delay.is_usable(5.0)
        assert not delay.is_usable(math.inf)

    def test_sort_key_orders_better_first(self, delay):
        assert delay.sort_key(1.0) < delay.sort_key(2.0)

    def test_negative_link_values_rejected(self, delay):
        with pytest.raises(ValueError):
            delay.validate_link_value(-1.0)


class TestConcaveSemantics:
    def test_kind_and_identity(self, bandwidth):
        assert bandwidth.kind is MetricKind.CONCAVE
        assert bandwidth.identity == math.inf
        assert bandwidth.worst == 0.0

    def test_combine_takes_minimum(self, bandwidth):
        assert bandwidth.combine(5.0, 3.0) == 3.0
        assert bandwidth.combine(2.0, 9.0) == 2.0

    def test_path_value_is_bottleneck(self, bandwidth):
        assert bandwidth.path_value([5.0, 2.0, 8.0]) == 2.0

    def test_larger_is_better(self, bandwidth):
        assert bandwidth.is_better(5.0, 3.0)
        assert not bandwidth.is_better(3.0, 5.0)
        assert not bandwidth.is_better(4.0, 4.0)

    def test_optimum_picks_maximum(self, bandwidth):
        assert bandwidth.optimum([4.0, 9.0, 1.0]) == 9.0

    def test_is_usable(self, bandwidth):
        assert bandwidth.is_usable(0.5)
        assert not bandwidth.is_usable(0.0)

    def test_sort_key_orders_better_first(self, bandwidth):
        assert bandwidth.sort_key(9.0) < bandwidth.sort_key(2.0)

    def test_non_positive_link_values_rejected(self, bandwidth):
        with pytest.raises(ValueError):
            bandwidth.validate_link_value(0.0)


class TestToleranceAndComparisons:
    def test_values_equal_tolerates_floating_point_noise(self, delay):
        assert delay.values_equal(0.1 + 0.2, 0.3)

    def test_values_equal_with_infinities(self, delay):
        assert delay.values_equal(math.inf, math.inf)
        assert not delay.values_equal(math.inf, 3.0)

    def test_better_of(self, bandwidth, delay):
        assert bandwidth.better_of(3.0, 5.0) == 5.0
        assert delay.better_of(3.0, 5.0) == 3.0

    @given(st.floats(min_value=0.1, max_value=1e6), st.floats(min_value=0.1, max_value=1e6))
    def test_is_better_is_a_strict_order(self, a, b):
        for metric in (BandwidthMetric(), DelayMetric()):
            assert not (metric.is_better(a, b) and metric.is_better(b, a))
            if metric.values_equal(a, b):
                assert not metric.is_better(a, b)


class TestSpecificMetrics:
    def test_hop_count_normalizes_every_link_to_one(self):
        metric = HopCountMetric()
        assert metric.validate_link_value(7.3) == 1.0
        assert metric.path_value([1.0, 1.0, 1.0]) == 3.0

    def test_packet_loss_probability_round_trip(self):
        metric = PacketLossMetric()
        links = [0.1, 0.2, 0.05]
        path_value = metric.path_value([metric.from_probability(p) for p in links])
        end_to_end = metric.to_probability(path_value)
        expected = 1.0 - (0.9 * 0.8 * 0.95)
        assert end_to_end == pytest.approx(expected)

    def test_packet_loss_rejects_invalid_probabilities(self):
        with pytest.raises(ValueError):
            PacketLossMetric.from_probability(1.0)
        with pytest.raises(ValueError):
            PacketLossMetric.to_probability(-0.1)

    def test_jitter_is_additive(self):
        assert JitterMetric().path_value([0.5, 0.25]) == 0.75

    def test_link_value_from_attributes_uses_metric_name(self, bandwidth, delay):
        attributes = {"bandwidth": 4.0, "delay": 2.0}
        assert bandwidth.link_value_from_attributes(attributes) == 4.0
        assert delay.link_value_from_attributes(attributes) == 2.0

    def test_link_value_from_attributes_missing_key(self, bandwidth):
        with pytest.raises(KeyError):
            bandwidth.link_value_from_attributes({"delay": 2.0})


class TestRegistry:
    def test_registry_contains_the_paper_metrics(self):
        assert "bandwidth" in METRICS
        assert "delay" in METRICS

    def test_get_metric_returns_shared_instances(self):
        assert get_metric("bandwidth") is METRICS["bandwidth"]

    def test_get_metric_unknown_name(self):
        with pytest.raises(KeyError):
            get_metric("latency")


def test_path_links_pairs_consecutive_nodes():
    assert path_links([1, 2, 3, 4]) == [(1, 2), (2, 3), (3, 4)]
    assert path_links([1]) == []
