"""The documentation suite's anti-rot harness.

Three guarantees, all enforced on every test run (and again by the CI docs job):

* **The suite builds clean.**  ``docs/build.py --strict`` -- nav complete, no orphan
  pages, every internal link and anchor resolves, fences balanced -- exits 0 and renders
  one HTML page per nav entry.
* **The cookbook runs.**  Every ``python`` code block of ``docs/extending.md`` executes,
  top to bottom, as one script (the page is written to be cumulative).  Run in a
  subprocess so the example registrations cannot leak into this process's registries
  (which would break the ``repro-sweep --list`` golden test, among others).
* **The generated reference cannot drift.**  ``docs/spec.md`` must equal what
  ``docs/gen_spec_reference.py`` generates from the ``ExperimentSpec`` dataclass, and the
  generator itself must fail when a spec field lacks documentation.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

sys.path.insert(0, str(DOCS_DIR))
import build as docs_build  # noqa: E402  (docs/build.py, stdlib-only)


def _run(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        **kwargs,
    )


class TestDocsBuild:
    def test_strict_build_renders_every_nav_page(self, tmp_path):
        result = _run(["docs/build.py", "--strict", "--site-dir", str(tmp_path / "site")])
        assert result.returncode == 0, result.stderr
        _, nav = docs_build.parse_nav(REPO_ROOT / "mkdocs.yml")
        assert nav, "mkdocs.yml nav is empty"
        for _, page in nav:
            assert (tmp_path / "site" / page.replace(".md", ".html")).exists()
        assert (tmp_path / "site" / "index.html").exists()

    def test_check_only_mode_writes_nothing_and_passes(self, tmp_path):
        result = _run(["docs/build.py", "--strict", "--check-only"])
        assert result.returncode == 0, result.stderr
        assert "checks passed" in result.stdout

    def test_every_registry_extension_point_is_documented(self):
        """The acceptance bar: the cookbook covers all six registries by name."""
        extending = (DOCS_DIR / "extending.md").read_text(encoding="utf-8")
        for registry in ("SELECTORS", "METRICS", "TOPOLOGY_MODELS", "MEASURES", "SINKS", "PRESETS"):
            assert f"@{registry}.register(" in extending, f"no worked {registry} example"

    def test_broken_page_link_fails_the_strict_build(self, tmp_path):
        """Unit-level: the link checker is what --strict relies on, so prove it bites."""
        docs_copy = tmp_path / "docs"
        docs_copy.mkdir()
        for page in DOCS_DIR.glob("*.md"):
            docs_copy.joinpath(page.name).write_text(page.read_text(encoding="utf-8"))
        index = docs_copy / "index.md"
        index.write_text(
            index.read_text() + "\n[dangling](no_such_page.md) and [bad](caches.md#no-such-anchor)\n"
        )
        warnings = docs_build.build(docs_dir=docs_copy, site_dir=None)
        assert any("no_such_page.md" in warning for warning in warnings)
        assert any("no-such-anchor" in warning for warning in warnings)

    def test_heading_slugs_match_github_style(self):
        assert docs_build.github_slug("Caches & invalidation") == "caches--invalidation"
        assert docs_build.github_slug("The dirty-set contract") == "the-dirty-set-contract"
        taken = {}
        assert docs_build.github_slug("Same", taken) == "same"
        assert docs_build.github_slug("Same", taken) == "same-1"


class TestSpecReference:
    def test_spec_md_is_not_stale(self):
        result = _run(["docs/gen_spec_reference.py", "--check"])
        assert result.returncode == 0, (
            "docs/spec.md is out of date with the ExperimentSpec dataclass; "
            "run `python docs/gen_spec_reference.py`\n" + result.stderr
        )

    def test_every_spec_field_appears_in_the_reference(self):
        from dataclasses import fields

        from repro.experiments.spec import ExperimentSpec

        reference = (DOCS_DIR / "spec.md").read_text(encoding="utf-8")
        for spec_field in fields(ExperimentSpec):
            assert f"| `{spec_field.name}` |" in reference

    def test_generator_refuses_undocumented_fields(self):
        """The drift guard itself: a field without SEMANTICS kills the generation."""
        result = _run(
            [
                "-c",
                "import sys; sys.path.insert(0, 'docs'); import gen_spec_reference as g;"
                "g.SEMANTICS.pop('seed'); g.generate()",
            ]
        )
        assert result.returncode != 0
        assert "seed" in result.stderr


EXAMPLE_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


class TestExtendingCookbook:
    def test_examples_execute_end_to_end(self, tmp_path):
        """Concatenate every python block of extending.md and run it as one script."""
        page = (DOCS_DIR / "extending.md").read_text(encoding="utf-8")
        blocks = EXAMPLE_BLOCK_RE.findall(page)
        assert len(blocks) >= 8, "expected one runnable example per registry plus demos"
        script = tmp_path / "extending_examples.py"
        script.write_text("\n\n".join(blocks), encoding="utf-8")
        result = _run([str(script)], timeout=300)
        assert result.returncode == 0, f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        assert "cookbook sweep finished" in result.stdout
