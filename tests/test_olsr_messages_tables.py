"""Tests for OLSR messages, the neighbor/topology/duplicate tables and routing tables."""

from __future__ import annotations

import math

import pytest

from repro.metrics import BandwidthMetric, DelayMetric
from repro.olsr import (
    AdvertisedLink,
    DuplicateSet,
    HelloMessage,
    LinkReport,
    NeighborTable,
    Packet,
    RoutingTable,
    TcMessage,
    TopologyTable,
    next_sequence_number,
)


def make_hello(originator, links, mpr=()):
    return HelloMessage(
        originator=originator,
        sequence_number=next_sequence_number(),
        links=tuple(
            LinkReport(neighbor=n, weights=w, is_mpr=n in mpr) for n, w in links.items()
        ),
    )


class TestMessages:
    def test_sequence_numbers_are_monotonic(self):
        first, second = next_sequence_number(), next_sequence_number()
        assert second > first

    def test_hello_reported_neighbors_and_mpr_declaration(self):
        hello = make_hello(1, {2: {"delay": 1.0}, 3: {"delay": 2.0}}, mpr={3})
        assert hello.reported_neighbors() == frozenset({2, 3})
        assert hello.declares_mpr(3)
        assert not hello.declares_mpr(2)

    def test_tc_advertised_nodes(self):
        tc = TcMessage(
            originator=1,
            sequence_number=next_sequence_number(),
            ansn=4,
            advertised=(AdvertisedLink(2, {"delay": 1.0}), AdvertisedLink(5, {"delay": 3.0})),
        )
        assert tc.advertised_nodes() == frozenset({2, 5})

    def test_packet_forwarding_updates_metadata(self):
        packet = Packet(message="payload", sender=1, ttl=8, hops=2)
        forwarded = packet.forwarded_by(3)
        assert forwarded.sender == 3
        assert forwarded.ttl == 7
        assert forwarded.hops == 3
        assert forwarded.message == "payload"


class TestNeighborTable:
    def test_update_from_hello_builds_one_and_two_hop_sets(self):
        table = NeighborTable(owner=0)
        hello = make_hello(1, {0: {"delay": 1.0}, 5: {"delay": 2.0}, 6: {"delay": 3.0}})
        table.update_from_hello(hello, link_weights={"delay": 1.0}, now=0.0, hold_time=6.0)
        assert table.neighbors() == frozenset({1})
        assert table.two_hop_neighbors() == frozenset({5, 6})
        assert table.neighbor_weights(1) == {"delay": 1.0}

    def test_two_hop_excludes_owner_and_other_neighbors(self):
        table = NeighborTable(owner=0)
        table.update_from_hello(make_hello(1, {0: {}, 2: {}}), {"delay": 1.0})
        table.update_from_hello(make_hello(2, {0: {}, 1: {}, 7: {}}), {"delay": 2.0})
        assert table.neighbors() == frozenset({1, 2})
        assert table.two_hop_neighbors() == frozenset({7})

    def test_mpr_selector_tracking(self):
        table = NeighborTable(owner=0)
        table.update_from_hello(make_hello(1, {0: {}}, mpr={0}), {"delay": 1.0})
        table.update_from_hello(make_hello(2, {0: {}}), {"delay": 1.0})
        assert table.mpr_selectors() == frozenset({1})

    def test_expiry_drops_stale_entries(self):
        table = NeighborTable(owner=0)
        table.update_from_hello(make_hello(1, {0: {}, 5: {}}), {"delay": 1.0}, now=0.0, hold_time=6.0)
        table.expire(now=5.0)
        assert table.neighbors() == frozenset({1})
        table.expire(now=7.0)
        assert table.neighbors() == frozenset()
        assert table.two_hop_neighbors() == frozenset()

    def test_fresh_hello_replaces_previous_reports(self):
        table = NeighborTable(owner=0)
        table.update_from_hello(make_hello(1, {0: {}, 5: {}}), {"delay": 1.0})
        table.update_from_hello(make_hello(1, {0: {}, 6: {}}), {"delay": 1.0})
        assert table.two_hop_neighbors() == frozenset({6})

    def test_link_tables_feed_local_view(self):
        table = NeighborTable(owner=0)
        table.update_from_hello(
            make_hello(1, {0: {"delay": 1.0}, 5: {"delay": 4.0}}), {"delay": 1.0}
        )
        assert table.neighbor_link_table() == {1: {"delay": 1.0}}
        assert table.two_hop_link_table() == {1: {5: {"delay": 4.0}}}


class TestTopologyTable:
    def _tc(self, originator, ansn, advertised):
        return TcMessage(
            originator=originator,
            sequence_number=next_sequence_number(),
            ansn=ansn,
            advertised=tuple(AdvertisedLink(n, w) for n, w in advertised.items()),
        )

    def test_update_and_graph(self):
        table = TopologyTable(owner=0)
        assert table.update_from_tc(self._tc(1, 1, {2: {"delay": 1.0}, 3: {"delay": 2.0}}))
        graph = table.as_graph()
        assert graph.has_edge(1, 2) and graph.has_edge(1, 3)
        assert graph.edges[1, 3]["delay"] == 2.0

    def test_stale_ansn_is_ignored(self):
        table = TopologyTable(owner=0)
        table.update_from_tc(self._tc(1, 5, {2: {"delay": 1.0}}))
        assert not table.update_from_tc(self._tc(1, 3, {9: {"delay": 1.0}}))
        assert (1, 9) not in table.advertised_links()

    def test_newer_ansn_replaces_old_advertisements(self):
        table = TopologyTable(owner=0)
        table.update_from_tc(self._tc(1, 1, {2: {"delay": 1.0}}))
        table.update_from_tc(self._tc(1, 2, {3: {"delay": 1.0}}))
        links = table.advertised_links()
        assert (1, 3) in links and (1, 2) not in links

    def test_expiry(self):
        table = TopologyTable(owner=0)
        table.update_from_tc(self._tc(1, 1, {2: {"delay": 1.0}}), now=0.0, hold_time=10.0)
        table.expire(now=11.0)
        assert len(table) == 0


class TestDuplicateSet:
    def test_processed_and_retransmitted_are_tracked_separately(self):
        duplicates = DuplicateSet()
        duplicates.mark_processed(1, 100, expires_at=10.0)
        assert duplicates.already_processed(1, 100)
        assert not duplicates.already_retransmitted(1, 100)
        duplicates.mark_retransmitted(1, 100, expires_at=10.0)
        assert duplicates.already_retransmitted(1, 100)

    def test_expiry(self):
        duplicates = DuplicateSet()
        duplicates.mark_processed(1, 100, expires_at=5.0)
        duplicates.expire(now=6.0)
        assert not duplicates.already_processed(1, 100)


class TestRoutingTable:
    def _tables_for_line(self):
        """Owner 0 on the line 0-1-2-3 with delays 1, 2, 1."""
        neighbors = NeighborTable(owner=0)
        neighbors.update_from_hello(
            make_hello(1, {0: {"delay": 1.0}, 2: {"delay": 2.0}}), {"delay": 1.0}
        )
        topology = TopologyTable(owner=0)
        topology.update_from_tc(
            TcMessage(
                originator=2,
                sequence_number=next_sequence_number(),
                ansn=1,
                advertised=(AdvertisedLink(1, {"delay": 2.0}), AdvertisedLink(3, {"delay": 1.0})),
            )
        )
        return neighbors, topology

    def test_routes_to_all_learned_destinations(self):
        table = RoutingTable(owner=0, metric=DelayMetric())
        table.recompute(*self._tables_for_line())
        assert table.next_hop(1) == 1
        assert table.next_hop(2) == 1
        assert table.next_hop(3) == 1
        assert table.entry(3).expected_value == pytest.approx(4.0)
        assert table.destinations() == [1, 2, 3]

    def test_unknown_destination_has_no_route(self):
        table = RoutingTable(owner=0, metric=DelayMetric())
        table.recompute(*self._tables_for_line())
        assert table.next_hop(42) is None

    def test_recompute_with_empty_tables(self):
        table = RoutingTable(owner=0, metric=DelayMetric())
        table.recompute(NeighborTable(owner=0), TopologyTable(owner=0))
        assert len(table) == 0
