"""Tests for advertised-topology construction, routing over it, and the centralized optimum."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.core import FnbpSelector
from repro.baselines import OlsrMprSelector, QolsrMpr2Selector
from repro.metrics import BandwidthMetric, DelayMetric
from repro.routing import (
    AdvertisedTopology,
    HopByHopRouter,
    advertise,
    best_path,
    build_advertised_topology,
    optimal_route,
    run_selection,
)
from repro.topology import Network


class TestOptimalRoute:
    def test_delay_route_matches_networkx(self, grid_network, delay):
        ours = optimal_route(grid_network, 0, 15, delay)
        reference_length = nx.dijkstra_path_length(grid_network.graph, 0, 15, weight="delay")
        assert ours.value == pytest.approx(reference_length)
        assert ours.path[0] == 0 and ours.path[-1] == 15
        # The returned path's true cost equals the reported value.
        cost = sum(
            grid_network.link_value(u, v, delay) for u, v in zip(ours.path, ours.path[1:])
        )
        assert cost == pytest.approx(ours.value)

    def test_widest_route_value_and_path_consistency(self, grid_network, bandwidth):
        ours = optimal_route(grid_network, 0, 15, bandwidth)
        bottleneck = min(
            grid_network.link_value(u, v, bandwidth) for u, v in zip(ours.path, ours.path[1:])
        )
        assert bottleneck == pytest.approx(ours.value)
        # No single link into/out of the terminals can beat the reported bottleneck for every path:
        # verify optimality against brute force on this small graph.
        best = max(
            min(grid_network.link_value(u, v, bandwidth) for u, v in zip(path, path[1:]))
            for path in nx.all_simple_paths(grid_network.graph, 0, 15, cutoff=8)
        )
        assert ours.value == pytest.approx(best)

    def test_source_equals_destination(self, grid_network, delay):
        route = optimal_route(grid_network, 3, 3, delay)
        assert route.path == (3,)
        assert route.value == delay.identity
        assert route.hop_count == 0

    def test_unreachable_destination(self, delay):
        network = Network.from_links({(0, 1): {"delay": 1.0}})
        network.add_node(9)
        route = optimal_route(network, 0, 9, delay)
        assert not route.reachable
        assert route.value == delay.worst

    def test_missing_node(self, grid_network, delay):
        route = best_path(grid_network.graph, 0, 999, delay)
        assert not route.reachable


class TestAdvertisedTopology:
    def test_links_come_from_selections(self, diamond_network, bandwidth):
        selections = {0: frozenset({1}), 3: frozenset({2})}
        advertised = build_advertised_topology(diamond_network, selections)
        assert advertised.graph.has_edge(0, 1)
        assert advertised.graph.has_edge(3, 2)
        assert not advertised.graph.has_edge(0, 3)
        assert advertised.advertised_link_count() == 2
        assert advertised.average_set_size() == 1.0

    def test_advertised_links_carry_true_weights(self, diamond_network, bandwidth):
        advertised = build_advertised_topology(diamond_network, {0: frozenset({1})})
        assert advertised.graph.edges[0, 1]["bandwidth"] == 4.0

    def test_advertising_a_non_link_is_rejected(self, diamond_network):
        with pytest.raises(ValueError):
            build_advertised_topology(diamond_network, {1: frozenset({2})})

    def test_run_selection_and_advertise_agree(self, grid_network, bandwidth):
        selector = FnbpSelector()
        by_parts = build_advertised_topology(grid_network, run_selection(grid_network, selector, bandwidth))
        direct = advertise(grid_network, selector, bandwidth)
        assert set(by_parts.graph.edges) == set(direct.graph.edges)
        assert by_parts.ans_sets == direct.ans_sets

    def test_every_node_present_even_without_advertisements(self, diamond_network):
        advertised = build_advertised_topology(diamond_network, {})
        assert set(advertised.graph.nodes) == set(diamond_network.nodes())
        assert advertised.average_set_size() == 0.0


class TestRouting:
    @pytest.fixture
    def routed(self, grid_network, bandwidth):
        advertised = advertise(grid_network, FnbpSelector(), bandwidth)
        return HopByHopRouter(grid_network, advertised, bandwidth)

    def test_link_state_route_delivers_and_reports_true_value(self, routed, grid_network, bandwidth):
        outcome = routed.link_state_route(0, 15)
        assert outcome.delivered
        assert outcome.path[0] == 0 and outcome.path[-1] == 15
        bottleneck = min(
            grid_network.link_value(u, v, bandwidth) for u, v in zip(outcome.path, outcome.path[1:])
        )
        assert outcome.value == pytest.approx(bottleneck)

    def test_link_state_route_never_beats_the_centralized_optimum(self, routed, grid_network, bandwidth):
        for destination in (5, 10, 15):
            outcome = routed.link_state_route(0, destination)
            optimum = optimal_route(grid_network, 0, destination, bandwidth)
            assert bandwidth.is_better_or_equal(optimum.value, outcome.value)

    def test_route_to_self(self, routed):
        outcome = routed.link_state_route(4, 4)
        assert outcome.delivered and outcome.path == (4,)

    def test_route_with_unknown_nodes_raises(self, routed):
        with pytest.raises(KeyError):
            routed.link_state_route(0, 999)
        with pytest.raises(KeyError):
            routed.route(999, 0)

    def test_no_route_when_destination_is_isolated_from_advertisements(self, bandwidth):
        # Destination 9 hangs off node 3 but nobody advertises it and the source is far away.
        network = Network.from_links(
            {
                (0, 1): {"bandwidth": 5.0},
                (1, 2): {"bandwidth": 5.0},
                (2, 3): {"bandwidth": 5.0},
                (3, 9): {"bandwidth": 5.0},
            }
        )
        advertised = build_advertised_topology(network, {0: frozenset({1}), 1: frozenset({2})})
        router = HopByHopRouter(network, advertised, bandwidth)
        outcome = router.link_state_route(0, 9)
        assert not outcome.delivered
        assert outcome.failure == "no-route"

    def test_hop_by_hop_route_on_delay_matches_link_state(self, grid_network, delay):
        advertised = advertise(grid_network, FnbpSelector(), delay)
        router = HopByHopRouter(grid_network, advertised, delay)
        hop_by_hop = router.route(0, 15)
        link_state = router.link_state_route(0, 15)
        assert hop_by_hop.delivered
        assert hop_by_hop.value == pytest.approx(link_state.value)

    def test_routing_table_lists_only_reachable_destinations(self, grid_network, delay):
        advertised = advertise(grid_network, FnbpSelector(), delay)
        router = HopByHopRouter(grid_network, advertised, delay)
        table = router.routing_table(0)
        assert set(table) == set(grid_network.nodes()) - {0}
        assert all(hop in grid_network.neighbors(0) for hop in table.values())

    def test_next_hop_for_destination_outside_advertised_graph(self, bandwidth):
        network = Network.from_links({(0, 1): {"bandwidth": 2.0}})
        advertised = AdvertisedTopology(graph=nx.Graph())
        router = HopByHopRouter(network, advertised, bandwidth)
        assert router.next_hop(0, 1) == 1

    def test_fnbp_advertised_topology_preserves_the_figure1_widest_path(self, bandwidth):
        """The Figure 1 phenomenon on the reconstructed topology: a two-hop-constrained
        choice (what the QOLSR heuristic considers) tops out at bandwidth 6, while routing
        over the FNBP advertisements reaches the true widest path (bandwidth 10)."""
        from repro.papergraphs import figure1_network
        from repro.papergraphs.figure1 import V1, V3, best_two_hop_bandwidth

        network = figure1_network()
        fnbp = HopByHopRouter(network, advertise(network, FnbpSelector(), bandwidth), bandwidth)
        optimum = optimal_route(network, V1, V3, bandwidth)
        assert optimum.value == 10.0
        assert best_two_hop_bandwidth(network, V1, V3) == pytest.approx(6.0)
        assert fnbp.link_state_route(V1, V3).value == pytest.approx(10.0)
