"""Tests of the flat-adjacency graph core and the parallel sweep runner.

The compact-graph solvers must agree with the original networkx implementations (kept in
:mod:`repro.localview.paths` as ``_*_nx`` privates) on random weighted topologies for both
metric families, and the multiprocessing sweep path must reproduce serial results exactly.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.experiments.ans_size import run_ans_size_experiment
from repro.experiments.config import smoke_config
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.runner import resolve_workers
from repro.localview import CompactGraph, LocalView, all_first_hops, best_values_from
from repro.localview.paths import (
    _all_first_hops_bottleneck_forest_nx,
    _all_first_hops_owner_dijkstra_nx,
    _best_values_from_nx,
    _first_hops_to_nx,
    enumerate_best_paths,
    path_value,
)
from repro.metrics import (
    BandwidthMetric,
    DelayMetric,
    LexicographicMetric,
    MetricKind,
)
from repro.sim import Simulator
from repro.topology import Network

METRICS = (BandwidthMetric(), DelayMetric())


def random_weighted_network(rng: random.Random) -> Network:
    """A small connected-ish random network with integer weights (ties are likely)."""
    node_count = rng.randint(3, 14)
    network = Network()
    for node in range(node_count):
        network.add_node(node, (float(node), 0.0))
    edges = {(left, left + 1) for left in range(node_count - 1)}
    for _ in range(rng.randint(0, 2 * node_count)):
        a, b = rng.randrange(node_count), rng.randrange(node_count)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    for a, b in sorted(edges):
        network.add_link(
            a, b, bandwidth=float(rng.randint(1, 6)), delay=float(rng.randint(1, 6))
        )
    return network


class TestCompactGraphStructure:
    def test_layout_matches_graph_and_preextracts_weights(self):
        network = Network.from_links(
            {(0, 1): {"bandwidth": 5.0, "delay": 2.0}, (1, 2): {"bandwidth": 3.0, "delay": 4.0}}
        )
        metric = BandwidthMetric()
        cg = CompactGraph.from_networkx(network.graph, metric)
        assert set(cg.nodes) == {0, 1, 2}
        assert all(cg.nodes[cg.index[node]] == node for node in cg.nodes)
        assert cg.edge_count() == 2
        row = dict(cg.adj[cg.index[1]])
        assert row[cg.index[0]] == 5.0 and row[cg.index[2]] == 3.0

    def test_view_caches_one_compact_graph_per_metric(self):
        network = random_weighted_network(random.Random(7))
        view = LocalView.from_network(network, 0)
        bw = BandwidthMetric()
        assert view.compact_graph(bw) is view.compact_graph(BandwidthMetric())
        assert view.compact_graph(bw) is not view.compact_graph(DelayMetric())

    def test_missing_metric_attribute_raises_key_error(self):
        network = Network.from_links({(0, 1): {"bandwidth": 5.0}})
        with pytest.raises(KeyError):
            CompactGraph.from_networkx(network.graph, DelayMetric())

    def test_same_name_metrics_with_different_extraction_do_not_share_cache(self):
        network = random_weighted_network(random.Random(13))
        view = LocalView.from_network(network, 0)
        first = LexicographicMetric([DelayMetric(), BandwidthMetric()], name="lex")
        second = LexicographicMetric([BandwidthMetric(), DelayMetric()], name="lex")
        assert view.compact_graph(first) is not view.compact_graph(second)
        row = view.compact_graph(first).adj[0]
        swapped = view.compact_graph(second).adj[0]
        assert [w for _, w in row] == [(b, a) for _, (a, b) in swapped]

    def test_partially_attributed_graph_keeps_lazy_traversal_semantics(self):
        """Edges the search never reaches may lack the metric attribute (legacy behaviour)."""
        network = Network.from_links({(0, 1): {"delay": 1.0}})
        network.add_node(2)
        network.add_node(3)
        network.graph.add_edge(2, 3)  # disconnected component, no weights at all
        delay = DelayMetric()
        assert best_values_from(network.graph, 0, delay) == (
            _best_values_from_nx(network.graph, 0, delay)
        )
        with pytest.raises(KeyError):  # reachable bad edges must still raise
            best_values_from(network.graph, 2, delay)


class TestCompactSolversAgreeWithNetworkxReference:
    def test_fifty_random_topologies_both_metric_families(self):
        rng = random.Random(20260730)
        for round_index in range(50):
            network = random_weighted_network(rng)
            owner = rng.randrange(len(network))
            view = LocalView.from_network(network, owner)
            for metric in METRICS:
                fast = all_first_hops(view, metric, method="auto")
                reference = {
                    target: _first_hops_to_nx(view, target, metric)
                    for target in view.known_targets()
                }
                assert fast == reference, (round_index, owner, metric.name)

    def test_single_pass_methods_match_their_networkx_twins(self):
        rng = random.Random(99)
        for _ in range(10):
            network = random_weighted_network(rng)
            owner = rng.randrange(len(network))
            view = LocalView.from_network(network, owner)
            assert _all_first_hops_owner_dijkstra_nx(view, DelayMetric()) == all_first_hops(
                view, DelayMetric(), method="owner-dijkstra"
            )
            assert _all_first_hops_bottleneck_forest_nx(view, BandwidthMetric()) == all_first_hops(
                view, BandwidthMetric(), method="bottleneck-forest"
            )

    def test_best_values_from_matches_networkx_with_exclusions(self):
        rng = random.Random(5)
        for _ in range(20):
            network = random_weighted_network(rng)
            source = rng.randrange(len(network))
            excluded = (rng.randrange(len(network)),)
            for metric in METRICS:
                assert best_values_from(network.graph, source, metric, excluded) == (
                    _best_values_from_nx(network.graph, source, metric, excluded)
                )

    def test_degenerate_unvalidated_weights_keep_legacy_reachability(self):
        """Zero-weight concave links and infinite additive links bypass validate_link_value
        when set directly; the specialized solvers must report the same reachability as the
        legacy traversal for them."""
        zero_bw = Network.from_links(
            {(1, 2): {"bandwidth": 0.0, "delay": 1.0}, (2, 3): {"bandwidth": 5.0, "delay": 2.0}}
        )
        inf_delay = Network.from_links({(1, 2): {"delay": float("inf")}, (2, 3): {"delay": 1.0}})
        for network, metric in ((zero_bw, BandwidthMetric()), (inf_delay, DelayMetric())):
            assert best_values_from(network.graph, 1, metric) == (
                _best_values_from_nx(network.graph, 1, metric)
            )

    def test_generic_solver_handles_composite_metrics(self):
        """A lexicographic metric overrides the whole protocol, forcing the generic path."""
        network = random_weighted_network(random.Random(11))
        metric = LexicographicMetric([DelayMetric(), BandwidthMetric()])
        assert metric.kind is MetricKind.ADDITIVE
        fast = best_values_from(network.graph, 0, metric)
        assert fast == _best_values_from_nx(network.graph, 0, metric)

    def test_batched_views_equal_per_node_views(self):
        network = random_weighted_network(random.Random(3))
        batched = LocalView.all_from_network(network)
        assert sorted(batched) == network.nodes()
        for node, view in batched.items():
            single = LocalView.from_network(network, node)
            assert view.one_hop == single.one_hop
            assert view.two_hop == single.two_hop
            assert set(view.graph.edges) == set(single.graph.edges)
            for u, v in view.graph.edges:
                assert view.graph.edges[u, v] == single.graph.edges[u, v]


class TestEnumerationPruning:
    def test_all_optimal_paths_found_despite_pruning(self):
        """A diamond with tied optimal paths and one strictly worse detour."""
        network = Network.from_links(
            {
                (0, 1): {"delay": 1.0},
                (0, 2): {"delay": 1.0},
                (1, 3): {"delay": 1.0},
                (2, 3): {"delay": 1.0},
                (0, 3): {"delay": 5.0},
            }
        )
        paths = enumerate_best_paths(network.graph, 0, 3, DelayMetric())
        assert paths == [[0, 1, 3], [0, 2, 3]]
        for path in paths:
            assert path_value(network.graph, path, DelayMetric()) == 2.0


class TestParallelRunnerEquivalence:
    def test_ans_size_parallel_matches_serial_exactly(self):
        config = smoke_config("bandwidth").with_overrides(runs=2)
        serial = run_ans_size_experiment(config, BandwidthMetric(), workers=1)
        parallel = run_ans_size_experiment(config, BandwidthMetric(), workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_overhead_parallel_matches_serial_exactly(self):
        config = smoke_config("delay").with_overrides(runs=2)
        serial = run_overhead_experiment(config, DelayMetric(), workers=1)
        parallel = run_overhead_experiment(config, DelayMetric(), workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    @pytest.mark.parametrize(
        ("experiment_id", "metric"),
        [("fig8", BandwidthMetric()), ("fig9", DelayMetric())],
        ids=["fig8-bandwidth", "fig9-delay"],
    )
    def test_overhead_sweep_with_env_workers_is_byte_identical_to_serial(
        self, monkeypatch, experiment_id, metric
    ):
        """The fig-8/fig-9 sweeps through the REPRO_WORKERS=2 path must reproduce the
        serial bytes exactly now that the workers carry warm per-trial caches (compact
        graphs, bottleneck forests, incremental advertised topologies): every cache is
        per-worker and per-trial, so nothing warm leaks across run indices."""
        config = smoke_config(metric.name).with_overrides(runs=2)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        serial = run_overhead_experiment(config, metric, experiment_id=experiment_id)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = run_overhead_experiment(config, metric, experiment_id=experiment_id)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_workers_resolve_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4
        assert resolve_workers(2) == 2  # explicit argument wins
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        with pytest.raises(ValueError):
            resolve_workers()


class TestSimulatorPendingEvents:
    def test_counter_tracks_schedule_cancel_and_execution(self):
        simulator = Simulator()
        handles = [simulator.schedule_at(float(i + 1), lambda: None) for i in range(10)]
        assert simulator.pending_events() == 10
        handles[0].cancel()
        handles[0].cancel()  # double-cancel must not double-count
        assert simulator.pending_events() == 9
        simulator.run_until(5.0)
        assert simulator.pending_events() == 5
        assert simulator.processed_events == 4

    def test_cancel_after_execution_is_a_no_op(self):
        simulator = Simulator()
        handle = simulator.schedule_at(1.0, lambda: None)
        simulator.run_until(2.0)
        assert simulator.pending_events() == 0
        handle.cancel()
        assert simulator.pending_events() == 0

    def test_mass_cancellation_compacts_the_queue(self):
        simulator = Simulator()
        keep = [simulator.schedule_at(1000.0 + i, lambda: None) for i in range(10)]
        doomed = [simulator.schedule_at(2000.0 + i, lambda: None) for i in range(100)]
        for handle in doomed:
            handle.cancel()
        assert simulator.pending_events() == 10
        # The lazy purge must have dropped the dead events instead of retaining all 100
        # until simulated time reaches their timestamps.
        assert len(simulator._queue) < 30
        simulator.run_until(3000.0)
        assert simulator.processed_events == len(keep)
