"""Tests for unit-disk construction and the topology generators (Poisson, fixed, grid)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import BandwidthMetric, UniformWeightAssigner
from repro.topology import (
    FieldSpec,
    FixedCountNetworkGenerator,
    GridNetworkGenerator,
    PoissonNetworkGenerator,
    degree_to_intensity,
    intensity_to_expected_nodes,
    network_from_positions,
    unit_disk_links,
)


class TestUnitDisk:
    def test_links_exactly_within_radius(self):
        positions = {1: (0.0, 0.0), 2: (50.0, 0.0), 3: (160.0, 0.0), 4: (50.0, 80.0)}
        links = unit_disk_links(positions, radius=100.0)
        assert (1, 2) in links          # 50 apart
        assert (2, 4) in links          # 80 apart
        assert (1, 4) in links          # ~94.3 apart
        assert (2, 3) not in links      # 110 apart
        assert (1, 3) not in links      # 160 apart
        assert (3, 4) not in links      # ~136 apart

    def test_boundary_distance_is_included(self):
        positions = {1: (0.0, 0.0), 2: (100.0, 0.0)}
        assert unit_disk_links(positions, radius=100.0) == [(1, 2)]

    def test_matches_brute_force_on_random_positions(self):
        import random

        rng = random.Random(7)
        positions = {i: (rng.uniform(0, 300), rng.uniform(0, 300)) for i in range(60)}
        radius = 90.0
        expected = sorted(
            (min(a, b), max(a, b))
            for a in positions
            for b in positions
            if a < b and math.dist(positions[a], positions[b]) <= radius
        )
        assert unit_disk_links(positions, radius) == expected

    def test_requires_positive_radius(self):
        with pytest.raises(ValueError):
            unit_disk_links({1: (0, 0)}, radius=0)

    def test_degree_intensity_conversion_matches_paper_footnote(self):
        # lambda = delta / (pi R^2); with delta=20, R=100 over a 1000x1000 field the expected
        # node count is 20 * 1e6 / (pi * 1e4) ~= 636.6
        intensity = degree_to_intensity(20.0, 100.0)
        expected_nodes = intensity_to_expected_nodes(intensity, 1000.0, 1000.0)
        assert expected_nodes == pytest.approx(20.0 * 1_000_000 / (math.pi * 10_000))


class TestGenerators:
    def test_grid_generator_shape(self):
        network = GridNetworkGenerator(rows=3, columns=4, spacing=80.0, radius=100.0).generate()
        assert len(network) == 12
        # Inner nodes have 4 neighbors (orthogonal only: diagonal is 113 > 100).
        assert network.degree(5) == 4
        assert network.is_connected()

    def test_grid_generator_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            GridNetworkGenerator(rows=0, columns=3).generate()

    def test_fixed_count_generator_is_deterministic(self):
        generator = FixedCountNetworkGenerator(node_count=40, seed=9)
        first, second = generator.generate(0), generator.generate(0)
        assert first.nodes() == second.nodes()
        assert first.links() == second.links()

    def test_fixed_count_generator_run_index_changes_topology(self):
        generator = FixedCountNetworkGenerator(node_count=40, seed=9)
        assert generator.generate(0).links() != generator.generate(1).links()

    def test_poisson_generator_node_count_tracks_density(self):
        field = FieldSpec(width=1000.0, height=1000.0, radius=100.0)
        sparse = PoissonNetworkGenerator(field=field, degree=5.0, seed=1).generate(0)
        dense = PoissonNetworkGenerator(field=field, degree=20.0, seed=1).generate(0)
        assert len(dense) > len(sparse) > 0
        expected_dense = 20.0 * 1_000_000 / (math.pi * 10_000)
        assert abs(len(dense) - expected_dense) / expected_dense < 0.25

    def test_poisson_generator_mean_degree_near_target(self):
        field = FieldSpec(width=1000.0, height=1000.0, radius=100.0)
        network = PoissonNetworkGenerator(field=field, degree=15.0, seed=3).generate(0)
        # Border effects push the empirical mean below the target; it must still be close.
        assert 10.0 <= network.average_degree() <= 16.5

    def test_poisson_generator_applies_weight_assigners(self):
        metric = BandwidthMetric()
        generator = PoissonNetworkGenerator(
            degree=6.0,
            seed=2,
            field=FieldSpec(width=400, height=400, radius=100.0),
            weight_assigners=(UniformWeightAssigner(metric=metric, low=1.0, high=9.0, seed=2),),
        )
        network = generator.generate(0)
        network.validate_metric_coverage(metric)

    def test_largest_component_restriction(self):
        generator = FixedCountNetworkGenerator(
            node_count=60,
            seed=4,
            field=FieldSpec(width=800, height=800, radius=90.0),
            restrict_to_largest_component=True,
        )
        network = generator.generate(0)
        assert network.is_connected()

    def test_network_from_positions(self):
        network = network_from_positions({1: (0, 0), 2: (50, 0), 3: (200, 0)}, radius=100.0)
        assert network.has_link(1, 2)
        assert not network.has_link(2, 3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=25), st.integers(min_value=0, max_value=1000))
    def test_fixed_count_generator_always_honors_count_before_restriction(self, count, seed):
        network = FixedCountNetworkGenerator(
            node_count=count, seed=seed, field=FieldSpec(width=200, height=200, radius=80)
        ).generate(0)
        assert len(network) == count
