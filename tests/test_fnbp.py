"""Unit tests of the FNBP selector (Algorithms 1 and 2) on hand-built topologies."""

from __future__ import annotations

import pytest

from repro.core import FnbpSelector, LoopGuardPolicy, covering_relays, make_selector
from repro.localview import LocalView
from repro.metrics import BandwidthMetric, DelayMetric
from repro.papergraphs import FIGURE2_OWNER, figure2_network
from repro.topology import Network


def select(network, owner, metric, **kwargs):
    view = LocalView.from_network(network, owner)
    return FnbpSelector(**kwargs).select(view, metric)


class TestStepOne:
    def test_no_selection_when_every_direct_link_is_optimal(self, bandwidth):
        network = Network.from_links(
            {(0, 1): {"bandwidth": 5.0}, (0, 2): {"bandwidth": 5.0}, (1, 2): {"bandwidth": 1.0}}
        )
        result = select(network, 0, bandwidth)
        assert result.selected == frozenset()
        reasons = {decision.reason for decision in result.decisions}
        assert reasons == {"direct-link-optimal"}

    def test_relay_selected_when_direct_link_is_weak(self, diamond_network, bandwidth):
        result = select(diamond_network, 0, bandwidth)
        # Reaching 3 directly (bandwidth 1) is worse than 0-1-3 (bandwidth 4): select 1.
        assert 1 in result.selected
        assert 2 not in result.selected

    def test_relay_selected_for_delay_metric(self, diamond_network, delay):
        result = select(diamond_network, 0, delay)
        # Reaching 3 directly costs 10; 0-2-3 costs 2: select 2.
        assert 2 in result.selected
        assert 1 not in result.selected

    def test_existing_ans_member_reused_for_other_one_hop_targets(self, bandwidth):
        # Node 0 has two weak direct links (to 2 and 3) both best reached through 1.
        network = Network.from_links(
            {
                (0, 1): {"bandwidth": 9.0},
                (0, 2): {"bandwidth": 1.0},
                (0, 3): {"bandwidth": 1.0},
                (1, 2): {"bandwidth": 8.0},
                (1, 3): {"bandwidth": 8.0},
            }
        )
        result = select(network, 0, bandwidth)
        assert result.selected == frozenset({1})

    def test_step_one_disabled_by_cover_one_hop_flag(self, diamond_network, bandwidth):
        result = select(diamond_network, 0, bandwidth, cover_one_hop=False)
        assert result.selected == frozenset()
        assert all(decision.target not in (1, 2, 3) or decision.target in (1, 2, 3) for decision in result.decisions)
        assert {decision.target for decision in result.decisions} == set()  # no two-hop neighbors here


class TestStepTwo:
    def test_two_hop_neighbor_selects_first_node_on_best_path(self, line_network, bandwidth):
        result = select(line_network, 0, bandwidth)
        # 2 is a two-hop neighbor reachable only through 1.
        assert result.selected == frozenset({1})

    def test_tie_between_first_hops_broken_by_best_direct_link_then_id(self, bandwidth):
        network = Network.from_links(
            {
                (0, 1): {"bandwidth": 3.0},
                (0, 2): {"bandwidth": 5.0},
                (1, 9): {"bandwidth": 5.0},
                (2, 9): {"bandwidth": 5.0},
            }
        )
        # Both relays give the 2-hop neighbor 9 a bottleneck of 3 vs 5; best is via 2 (5).
        result = select(network, 0, bandwidth)
        assert 2 in result.selected

    def test_equal_quality_relays_prefer_smaller_id(self, bandwidth):
        network = Network.from_links(
            {
                (0, 4): {"bandwidth": 5.0},
                (0, 2): {"bandwidth": 5.0},
                (4, 9): {"bandwidth": 5.0},
                (2, 9): {"bandwidth": 5.0},
            }
        )
        result = select(network, 0, bandwidth)
        assert result.selected == frozenset({2})

    def test_no_duplicate_selection_when_target_already_covered(self, bandwidth):
        network = Network.from_links(
            {
                (0, 1): {"bandwidth": 9.0},
                (1, 5): {"bandwidth": 9.0},
                (1, 6): {"bandwidth": 9.0},
                (0, 2): {"bandwidth": 1.0},
                (2, 6): {"bandwidth": 1.0},
            }
        )
        result = select(network, 0, bandwidth)
        assert result.selected == frozenset({1})


class TestPaperExample:
    def test_figure2_final_ans(self, bandwidth):
        network = figure2_network()
        result = select(network, FIGURE2_OWNER, bandwidth)
        assert result.selected == frozenset({1, 6, 7})

    def test_figure2_v11_is_covered_by_v6_not_v2(self, bandwidth):
        """The paper: u picks v6 rather than v2 around v11 because link (u, v6) is better."""
        network = figure2_network()
        result = select(network, FIGURE2_OWNER, bandwidth)
        relays = covering_relays(result)
        assert relays[11] == 6
        assert 2 not in result.selected

    def test_figure2_covering_relays_are_consistent(self, bandwidth):
        network = figure2_network()
        result = select(network, FIGURE2_OWNER, bandwidth)
        relays = covering_relays(result)
        view = LocalView.from_network(network, FIGURE2_OWNER)
        assert set(relays) == set(view.known_targets())
        for target, relay in relays.items():
            assert relay == target or relay in result.selected

    def test_figure2_explain_mentions_selector_and_decisions(self, bandwidth):
        network = figure2_network()
        result = select(network, FIGURE2_OWNER, bandwidth)
        text = result.explain()
        assert "fnbp" in text
        assert "direct-link-optimal" in text


class TestConfiguration:
    def test_loop_guard_accepts_string_values(self, diamond_network, bandwidth):
        selector = FnbpSelector(loop_guard="off")
        assert selector.loop_guard is LoopGuardPolicy.OFF
        view = LocalView.from_network(diamond_network, 0)
        assert selector.select(view, bandwidth).selector_name == "fnbp"

    def test_registry_exposes_fnbp_variants(self):
        assert isinstance(make_selector("fnbp"), FnbpSelector)
        assert make_selector("fnbp-no-guard").loop_guard is LoopGuardPolicy.OFF
        assert make_selector("fnbp-literal-guard").loop_guard is LoopGuardPolicy.LITERAL
        assert make_selector("fnbp-two-hop-only").cover_one_hop is False

    def test_unknown_selector_name(self):
        with pytest.raises(KeyError):
            make_selector("does-not-exist")

    def test_selection_result_len_and_contains(self, line_network, bandwidth):
        result = select(line_network, 0, bandwidth)
        assert len(result) == 1
        assert 1 in result
        assert 3 not in result

    def test_select_all_runs_at_every_node(self, line_network, bandwidth):
        results = FnbpSelector().select_all(line_network, bandwidth)
        assert set(results) == {0, 1, 2, 3}
        assert all(result.owner == node for node, result in results.items())
