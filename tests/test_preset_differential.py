"""Differential pin: the preset-driven CLI reproduces the pre-redesign output byte-for-byte.

``tests/data/golden_smoke_report.txt`` and ``tests/data/golden_smoke_results.json`` were
captured from ``repro-figures --all --profile smoke`` *before* the ExperimentSpec/registry/
sink redesign (serial and ``REPRO_WORKERS=2`` outputs were verified identical at capture
time).  These tests assert the redesigned pipeline -- presets -> spec -> generic engine ->
sinks -- still emits exactly those bytes, serially and through the multiprocessing path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.cli import main

DATA = Path(__file__).resolve().parent / "data"
GOLDEN_REPORT = DATA / "golden_smoke_report.txt"
GOLDEN_JSON = DATA / "golden_smoke_results.json"


@pytest.mark.parametrize("workers", [None, "2"], ids=["serial", "REPRO_WORKERS=2"])
def test_all_figures_smoke_output_is_byte_identical_to_pre_redesign(tmp_path, monkeypatch, capsys, workers):
    if workers is None:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_WORKERS", workers)

    output = tmp_path / "report.txt"
    json_output = tmp_path / "results.json"
    exit_code = main(
        [
            "--all",
            "--profile",
            "smoke",
            "--quiet",
            "--output",
            str(output),
            "--json",
            str(json_output),
        ]
    )
    assert exit_code == 0

    assert output.read_bytes() == GOLDEN_REPORT.read_bytes()
    assert json_output.read_bytes() == GOLDEN_JSON.read_bytes()
    # What the CLI prints is the same report (print appends one newline).
    assert capsys.readouterr().out == GOLDEN_REPORT.read_text() + "\n"
