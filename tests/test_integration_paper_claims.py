"""End-to-end qualitative checks of the paper's headline claims on random topologies.

These are the repository's "does the reproduction actually reproduce" tests: on moderate
Poisson topologies (scaled down from the paper's field so they run in seconds), the relative
ordering reported in the evaluation section must hold:

* FNBP advertises the fewest neighbors and QOLSR the most (Figures 6 and 7);
* FNBP's and topology filtering's QoS overheads are small and no worse than original
  QOLSR's (Figures 8 and 9);
* all protocols deliver between connected pairs.
"""

from __future__ import annotations

import pytest

from repro.experiments import SweepConfig, build_trial, qos_overhead
from repro.metrics import BandwidthMetric, DelayMetric
from repro.routing import HopByHopRouter, optimal_route
from repro.topology import FieldSpec


def _config(metric_name: str) -> SweepConfig:
    return SweepConfig(
        densities=(12.0,),
        runs=2,
        pairs_per_run=6,
        field=FieldSpec(width=600.0, height=600.0, radius=100.0),
        seed=2024,
    )


def _mean_sizes_and_overheads(metric):
    config = _config(metric.name)
    sizes = {name: [] for name in config.selectors}
    overheads = {name: [] for name in config.selectors}
    deliveries = {name: 0 for name in config.selectors}
    attempts = 0
    for run_index in range(config.runs):
        trial = build_trial(config, metric, config.densities[0], run_index)
        pairs = trial.sample_pairs(config.pairs_per_run)
        attempts += len(pairs)
        for name in config.selectors:
            selections = trial.selections(name)
            sizes[name].extend(len(result.selected) for result in selections.values())
            router = HopByHopRouter(trial.network, trial.advertised_topology(name), metric)
            for source, destination in pairs:
                optimum = optimal_route(trial.network, source, destination, metric)
                outcome = router.link_state_route(source, destination)
                if outcome.delivered:
                    deliveries[name] += 1
                    overheads[name].append(qos_overhead(metric, outcome.value, optimum.value))
    mean_sizes = {name: sum(values) / len(values) for name, values in sizes.items()}
    mean_overheads = {name: sum(values) / len(values) for name, values in overheads.items()}
    return mean_sizes, mean_overheads, deliveries, attempts


@pytest.fixture(scope="module")
def bandwidth_results():
    return _mean_sizes_and_overheads(BandwidthMetric())


@pytest.fixture(scope="module")
def delay_results():
    return _mean_sizes_and_overheads(DelayMetric())


class TestAdvertisedSetSizes:
    def test_fnbp_is_the_smallest_set_bandwidth(self, bandwidth_results):
        sizes, _, _, _ = bandwidth_results
        assert sizes["fnbp"] < sizes["topology-filtering"]
        assert sizes["fnbp"] < sizes["qolsr-mpr2"]

    def test_fnbp_smaller_than_topology_filtering_for_delay(self, delay_results):
        """For the delay metric only part of the paper's Figure 7 ordering reproduces: FNBP
        stays below topology filtering, but -- as analysed in EXPERIMENTS.md -- the published
        algorithm does *not* stay below the QOLSR MPR set for additive metrics, because the
        first hops of (near-unique) shortest-delay paths spread over many neighbors."""
        sizes, _, _, _ = delay_results
        assert sizes["fnbp"] < sizes["topology-filtering"]

    def test_fnbp_sets_are_small_in_absolute_terms(self, bandwidth_results, delay_results):
        """The paper reports FNBP advertising only a handful of neighbors per node."""
        assert bandwidth_results[0]["fnbp"] < 6.0
        assert delay_results[0]["fnbp"] < 8.0


class TestOverheads:
    def test_fnbp_overhead_not_worse_than_qolsr_bandwidth(self, bandwidth_results):
        _, overheads, _, _ = bandwidth_results
        assert overheads["fnbp"] <= overheads["qolsr-mpr2"] + 1e-9

    def test_fnbp_overhead_not_worse_than_qolsr_delay(self, delay_results):
        _, overheads, _, _ = delay_results
        assert overheads["fnbp"] <= overheads["qolsr-mpr2"] + 1e-9

    def test_fnbp_overhead_is_small(self, bandwidth_results, delay_results):
        """The paper: FNBP stays within a few percent of the centralized optimum."""
        assert bandwidth_results[1]["fnbp"] <= 0.10
        assert delay_results[1]["fnbp"] <= 0.10

    def test_overheads_are_non_negative(self, bandwidth_results, delay_results):
        for _, overheads, _, _ in (bandwidth_results, delay_results):
            for name, value in overheads.items():
                assert value >= -1e-9, f"{name} reported a negative overhead"


class TestDelivery:
    def test_every_protocol_delivers_every_pair(self, bandwidth_results, delay_results):
        for _, _, deliveries, attempts in (bandwidth_results, delay_results):
            for name, delivered in deliveries.items():
                assert delivered == attempts, f"{name} failed to deliver some packets"
