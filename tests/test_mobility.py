"""Tests for the mobility/churn subsystem: models, dynamic driver, measures, spec wiring.

The load-bearing guarantees, in the style of the differential suites that lock down the
other fast paths:

* **Incremental == regeneration.**  A :class:`DynamicTopology` advanced incrementally
  (diffed links, rebuilt-only-affected views, sanctioned ``update_link`` weight updates)
  is bit-identical -- networks, positions, link attributes, every view's structure and
  edge data -- to the naive baseline that regenerates the network and drops all views
  every step, for all three models.
* **Determinism.**  Trajectories are pure functions of ``(model, seed, run_index)``; a
  dynamic sweep aggregates bit-identically serial and under ``REPRO_WORKERS``.
* **Static anchor.**  A zero-velocity model reproduces the static ``fixed-count``
  generator exactly, at time zero and after every step.
* **Containment.**  Mobile nodes never leave the deployment field.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.engine import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.metrics import BandwidthMetric, DelayMetric, UniformWeightAssigner
from repro.mobility import (
    DynamicTopology,
    GaussMarkovGenerator,
    LinkChurnGenerator,
    RandomWaypointGenerator,
)
from repro.registry import PRESETS
from repro.topology.generators import FieldSpec, FixedCountNetworkGenerator

FIELD = FieldSpec(width=400.0, height=400.0, radius=100.0)


def _assigners(seed: int = 9):
    return (
        UniformWeightAssigner(metric=BandwidthMetric(), seed=seed),
        UniformWeightAssigner(metric=DelayMetric(), seed=seed),
    )


def _network_key(network):
    """Everything observable about a network: nodes, positions, links, attributes."""
    return (
        network.nodes(),
        {node: network.position(node) for node in network.nodes()},
        {edge: network.link_attributes(*edge) for edge in network.links()},
    )


def _view_key(view):
    return (
        view.owner,
        view.one_hop,
        view.two_hop,
        {frozenset(edge): dict(view.graph.edges[edge]) for edge in view.graph.edges},
    )


ALL_MODELS = [
    ("rwp", RandomWaypointGenerator, {}),
    ("gauss-markov", GaussMarkovGenerator, {}),
    ("churn", LinkChurnGenerator, {}),
]


class TestModelValidation:
    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointGenerator(node_count=-1)
        with pytest.raises(ValueError):
            RandomWaypointGenerator(speed_low=5.0, speed_high=1.0)
        with pytest.raises(ValueError):
            RandomWaypointGenerator(pause_high=-1.0)
        with pytest.raises(ValueError):
            GaussMarkovGenerator(alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkovGenerator(mean_speed=-1.0)
        with pytest.raises(ValueError):
            LinkChurnGenerator(reweight_probability=2.0)
        with pytest.raises(ValueError):
            RandomWaypointGenerator(node_count=10).dynamic(step_interval=0.0)

    def test_field_defaults_to_the_paper_field(self):
        generator = RandomWaypointGenerator(node_count=3, seed=0)
        assert generator.field.width == 1000.0 and generator.field.radius == 100.0
        assert len(generator.generate()) == 3


class TestTrajectoriesStayDeterministicAndContained:
    @pytest.mark.parametrize("model_name,cls,kwargs", ALL_MODELS)
    def test_equal_seeds_give_bit_identical_trajectories(self, model_name, cls, kwargs):
        generators = [
            cls(field=FIELD, node_count=25, seed=3, weight_assigners=_assigners(), **kwargs)
            for _ in range(2)
        ]
        dynamics = [generator.dynamic(run_index=1) for generator in generators]
        assert _network_key(dynamics[0].network) == _network_key(dynamics[1].network)
        for _ in range(4):
            deltas = [dynamic.advance() for dynamic in dynamics]
            assert deltas[0] == deltas[1]
            assert _network_key(dynamics[0].network) == _network_key(dynamics[1].network)

    def test_different_runs_give_different_trajectories(self):
        generator = RandomWaypointGenerator(field=FIELD, node_count=25, seed=3)
        first, second = generator.dynamic(run_index=0), generator.dynamic(run_index=1)
        for _ in range(2):
            first.advance()
            second.advance()
        assert _network_key(first.network) != _network_key(second.network)

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (RandomWaypointGenerator, dict(speed_low=20.0, speed_high=60.0, pause_high=0.5)),
            (GaussMarkovGenerator, dict(mean_speed=40.0, speed_std=20.0, alpha=0.6)),
        ],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_nodes_never_leave_the_field(self, cls, kwargs, seed):
        generator = cls(field=FIELD, node_count=20, seed=seed, **kwargs)
        dynamic = generator.dynamic()
        for _ in range(30):
            dynamic.advance()
            for node in dynamic.network.nodes():
                x, y = dynamic.network.position(node)
                assert 0.0 <= x <= FIELD.width
                assert 0.0 <= y <= FIELD.height

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (RandomWaypointGenerator, dict(speed_low=0.0, speed_high=0.0, pause_high=0.0)),
            (GaussMarkovGenerator, dict(mean_speed=0.0, speed_std=0.0)),
            (LinkChurnGenerator, dict(reweight_probability=0.0, outage_probability=0.0)),
        ],
    )
    def test_zero_velocity_model_reproduces_the_static_generator_exactly(self, cls, kwargs):
        static = FixedCountNetworkGenerator(
            field=FIELD,
            node_count=30,
            seed=5,
            weight_assigners=_assigners(),
            restrict_to_largest_component=False,
        )
        generator = cls(field=FIELD, node_count=30, seed=5, weight_assigners=_assigners(), **kwargs)
        for run_index in (0, 2):
            reference = _network_key(static.generate(run_index))
            dynamic = generator.dynamic(run_index)
            assert _network_key(dynamic.network) == reference
            for _ in range(5):
                delta = dynamic.advance()
                assert delta.link_churn == 0 and not delta.reweighted
                assert _network_key(dynamic.network) == reference


class TestIncrementalStepEqualsPerStepRegeneration:
    @pytest.mark.parametrize("model_name,cls,kwargs", ALL_MODELS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_networks_views_and_deltas_match_the_rebuild_baseline(
        self, model_name, cls, kwargs, seed
    ):
        generator = cls(
            field=FIELD, node_count=35, seed=seed, weight_assigners=_assigners(), **kwargs
        )
        incremental = generator.dynamic()
        rebuild = generator.dynamic()
        rebuild.incremental = False
        incremental.views()  # materialize so the incremental maintenance path runs
        incremental_network, rebuild_network = incremental.network, rebuild.network
        for _ in range(5):
            first = incremental.advance()
            second = rebuild.advance()
            # Live-ownership: both modes mutate the same Network object in place.
            assert incremental.network is incremental_network
            assert rebuild.network is rebuild_network
            assert (first.added, first.removed, first.reweighted) == (
                second.added,
                second.removed,
                second.reweighted,
            )
            assert _network_key(incremental.network) == _network_key(rebuild.network)
            incremental_views = incremental.views()
            rebuild_views = rebuild.views()
            assert set(incremental_views) == set(rebuild_views)
            for owner in incremental_views:
                assert _view_key(incremental_views[owner]) == _view_key(rebuild_views[owner])

    def test_untouched_views_keep_their_caches_across_a_step(self):
        """The point of the incremental path: a step that does not touch a node's
        neighborhood leaves its per-metric caches warm."""
        generator = LinkChurnGenerator(
            field=FIELD,
            node_count=35,
            seed=1,
            weight_assigners=_assigners(),
            reweight_probability=0.05,
            outage_probability=0.0,
        )
        dynamic = generator.dynamic()
        metric = BandwidthMetric()
        views = dynamic.views()
        for view in views.values():
            view.compact_graph(metric)
        delta = dynamic.advance()
        assert delta.reweighted  # the step really did change something
        touched = set()
        for u, v in delta.reweighted:
            touched |= {u, v}
            touched |= dynamic.network.neighbors(u) | dynamic.network.neighbors(v)
        untouched = set(views) - touched
        assert untouched, "expected at least one node far from every reweighted link"
        for owner in untouched:
            assert dynamic.views()[owner]._compact, f"cache of untouched view {owner} was dropped"
        for u, v in delta.reweighted:
            assert not dynamic.views()[u]._compact, "affected view kept a stale cache"

    def test_views_mapping_stays_live_across_the_wholesale_rebuild(self):
        """views() hands out one live mapping: even when a step crosses the wholesale
        rebuild threshold, a caller-held dict reflects the post-step topology."""
        generator = RandomWaypointGenerator(
            field=FIELD, node_count=30, seed=3, weight_assigners=_assigners(),
            speed_low=30.0, speed_high=60.0, pause_high=0.0,
        )
        dynamic = generator.dynamic()
        held = dynamic.views()
        for _ in range(3):
            delta = dynamic.advance()
            assert held is dynamic.views()
            if delta.link_churn:
                u, v = (delta.added or delta.removed)[0]
                assert held[u].has_link(u, v) == dynamic.network.has_link(u, v)
        for owner, view in held.items():
            assert view.one_hop == frozenset(dynamic.network.neighbors(owner))

    @pytest.mark.parametrize("model_name,cls,kwargs", ALL_MODELS)
    def test_maintained_network_graph_equals_a_fresh_build_every_step(
        self, model_name, cls, kwargs
    ):
        """The driver-maintained shared CSR (structural steps rebuild it, weight-only
        steps patch its arrays in place) is array-for-array bit-identical to a
        from-scratch ``NetworkGraph.from_network`` of the current network, every step."""
        from repro.localview import NetworkGraph

        generator = cls(
            field=FIELD, node_count=35, seed=5, weight_assigners=_assigners(), **kwargs
        )
        dynamic = generator.dynamic()
        metrics = (BandwidthMetric(), DelayMetric())
        dynamic.views()  # materialize views + shared CSR so maintenance runs
        maintained = dynamic.network_graph()
        for metric in metrics:
            maintained.edge_values(metric)  # materialize so patches have arrays to hit
        for _ in range(5):
            dynamic.advance()
            assert dynamic.network_graph() is maintained  # identity is preserved
            fresh = NetworkGraph.from_network(dynamic.network)
            assert maintained.nodes == fresh.nodes
            for name in ("indptr", "indices", "slot_edge", "edge_u", "edge_v"):
                assert (getattr(maintained, name) == getattr(fresh, name)).all(), name
            for metric in metrics:
                assert (
                    maintained.edge_values(metric) == fresh.edge_values(metric)
                ).all(), metric.name
                assert (
                    maintained.slot_values(metric) == fresh.slot_values(metric)
                ).all(), metric.name
            # The views handed out after the step are attached to the maintained CSR
            # (update_link detaches reweight-only viewers; the driver re-attaches them).
            for owner, view in dynamic.views().items():
                assert view.network_graph() is maintained, owner

    def test_churn_model_perturbs_weights_without_moving_nodes(self):
        generator = LinkChurnGenerator(
            field=FIELD,
            node_count=30,
            seed=2,
            weight_assigners=_assigners(),
            reweight_probability=0.5,
            outage_probability=0.3,
        )
        dynamic = generator.dynamic()
        initial_positions = {node: dynamic.network.position(node) for node in dynamic.network.nodes()}
        base_links = set(dynamic.network.links())
        saw_reweight = saw_outage = False
        for _ in range(5):
            delta = dynamic.advance()
            saw_reweight = saw_reweight or bool(delta.reweighted)
            saw_outage = saw_outage or bool(delta.removed)
            assert {node: dynamic.network.position(node) for node in dynamic.network.nodes()} == initial_positions
            assert set(dynamic.network.links()) <= base_links  # outages only suppress links
        assert saw_reweight and saw_outage


class TestDynamicSweepsThroughTheEngine:
    def _spec(self, **overrides) -> ExperimentSpec:
        base = ExperimentSpec(
            experiment_id="mobility-test",
            title="Mobility sweep test",
            measure="ans-churn",
            metric="bandwidth",
            selectors=("fnbp", "topology-filtering"),
            topology="rwp",
            densities=(22.0,),
            runs=2,
            timesteps=3,
            field=FieldSpec(width=400.0, height=400.0, radius=100.0),
            seed=11,
        )
        return base.with_overrides(**overrides) if overrides else base

    @pytest.mark.parametrize("measure", ["ans-churn", "tc-overhead", "route-stability"])
    def test_serial_and_parallel_dynamic_sweeps_are_bit_identical(self, measure):
        spec = self._spec(measure=measure, pairs_per_run=3)
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_density_points_carry_the_per_timestep_series(self):
        result = run_experiment(self._spec())
        for series in result.series.values():
            point = series.points[0]
            per_step = point.to_dict()["per_step_mean"]
            assert len(per_step) == 3  # one entry per timestep
            assert point.summary.count == 3 * 2  # timesteps x runs pooled

    def test_static_world_measures_no_churn_and_full_stability(self):
        """On a frozen topology the time-axis measures are exact: zero churn, zero TC
        re-advertisement, every first hop survives every step."""
        from repro.experiments.runner import Trial
        from repro.mobility.measures import _route_stability_trial, _selection_churn_trial

        spec = self._spec(pairs_per_run=3)
        config = spec.sweep_config()
        generator = LinkChurnGenerator(
            field=spec.field,
            node_count=22,
            seed=4,
            weight_assigners=_assigners(),
            reweight_probability=0.0,
            outage_probability=0.0,
        )

        def fresh_trial() -> Trial:
            return Trial(
                config=config,
                metric=BandwidthMetric(),
                density=22.0,
                run_index=0,
                network=generator.generate(0),
                generator=generator,
            )

        churn_payload = _selection_churn_trial(fresh_trial())
        for per_step in churn_payload["churn"].values():
            assert per_step == [0.0] * spec.timesteps
        for per_step in churn_payload["tc"].values():
            assert per_step == [0.0] * spec.timesteps
        stability_payload = _route_stability_trial(fresh_trial())
        for per_step in stability_payload["stability"].values():
            assert per_step == [1.0] * spec.timesteps

    def test_dynamic_trial_reuses_the_trial_network(self):
        from repro.experiments.runner import build_trial

        spec = self._spec()
        trial = build_trial(spec.sweep_config(), BandwidthMetric(), 22.0, 0)
        assert trial.dynamic_topology().network is trial.network
        assert trial.dynamic_topology() is trial.dynamic_topology()

    def test_position_dependent_assigners_are_rejected(self):
        from repro.metrics.assignment import DistanceProportionalAssigner

        generator = RandomWaypointGenerator(
            field=FIELD,
            node_count=10,
            seed=0,
            weight_assigners=(DistanceProportionalAssigner(metric=DelayMetric()),),
        )
        assert len(generator.generate()) == 10  # static snapshots remain fine
        with pytest.raises(ValueError, match="position-independent"):
            generator.dynamic()

    def test_reweighted_links_refresh_the_advertised_working_graph(self):
        """A link that stays advertised while the churn model re-measures it must not keep
        its stale weight copy in the incremental builder's working graph."""
        from repro.core.selection import make_selector
        from repro.routing.advertised import AdvertisedTopologyBuilder

        metric = BandwidthMetric()
        generator = LinkChurnGenerator(
            field=FIELD,
            node_count=25,
            seed=6,
            weight_assigners=_assigners(),
            reweight_probability=0.6,
            outage_probability=0.0,
        )
        dynamic = generator.dynamic()
        builder = AdvertisedTopologyBuilder(dynamic.network)
        selector = make_selector("fnbp")

        def advertise():
            views = dynamic.views()
            return builder.build(
                {node: selector.select(view, metric).selected for node, view in views.items()}
            )

        advertised = advertise()
        for _ in range(3):
            delta = dynamic.advance()
            builder.refresh_attributes(delta.reweighted)
            advertised = advertise()
            for u, v in advertised.graph.edges:
                assert advertised.graph.edges[u, v] == dynamic.network.link_attributes(u, v)

    def test_missing_survival_samples_keep_per_step_series_aligned(self):
        """A step with no routes to judge contributes None, not a silent gap: per-step
        buckets stay index-aligned and the pooled summary counts only real samples."""
        from repro.mobility.measures import RouteStabilityMeasure

        spec = self._spec(measure="route-stability", timesteps=3)
        measure = RouteStabilityMeasure()
        state = measure.start(spec)
        measure.consume(state, 22.0, {"stability": {"fnbp": [1.0, None, 0.5]}})
        measure.consume(state, 22.0, {"stability": {"fnbp": [None, None, 1.0]}})
        point = measure.density_points(state, spec, 22.0)["fnbp"]
        assert point.to_dict()["per_step_mean"] == [1.0, None, 0.75]
        assert point.summary.count == 3  # the four Nones contributed nothing

    def test_dynamic_measures_reject_static_specs_fast(self):
        with pytest.raises(ValueError, match="timesteps"):
            run_experiment(self._spec(timesteps=0))
        # A static topology model fails in the measure's validate_spec probe, before any
        # trial (and in particular before any worker process) runs.
        with pytest.raises(ValueError, match="dynamic topology model"):
            run_experiment(self._spec(topology="poisson"), workers=2)

    def test_spec_round_trips_the_time_axis(self):
        spec = self._spec(timesteps=7, step_interval=0.5)
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.timesteps == 7 and restored.step_interval == 0.5
        config = restored.sweep_config()
        assert config.timesteps == 7 and config.step_interval == 0.5

    def test_invalid_time_axis_is_rejected(self):
        with pytest.raises(ValueError):
            self._spec(timesteps=-1)
        with pytest.raises(ValueError):
            self._spec(step_interval=0.0)

    def test_mobility_presets_are_valid_dynamic_specs(self):
        for name in ("mobility-churn", "mobility-stability"):
            spec = PRESETS.create(name).validate_names()
            assert spec.timesteps >= 1
            assert spec.topology == "rwp"
