"""Tests asserting every claim the paper makes about its worked-example figures (1, 2, 4, 5)."""

from __future__ import annotations

import pytest

from repro.core import FnbpSelector, covering_relays
from repro.localview import LocalView, enumerate_best_paths, first_hops_to
from repro.metrics import BandwidthMetric
from repro.papergraphs import (
    FIGURE2_OWNER,
    figure1_network,
    figure2_network,
    figure4_network,
    figure5_network,
    figure5_selections,
)
from repro.papergraphs.figure1 import V1, V3, best_two_hop_bandwidth
from repro.papergraphs.figure4 import A, B, C, D, E
from repro.routing import optimal_route


@pytest.fixture
def bandwidth():
    return BandwidthMetric()


class TestFigure1:
    def test_two_hop_constrained_bandwidth_is_six(self, bandwidth):
        network = figure1_network()
        assert best_two_hop_bandwidth(network, V1, V3) == pytest.approx(6.0)

    def test_widest_path_is_ten_along_the_stated_chain(self, bandwidth):
        network = figure1_network()
        optimum = optimal_route(network, V1, V3, bandwidth)
        assert optimum.value == pytest.approx(10.0)
        assert optimum.path == (1, 6, 5, 4, 3)

    def test_the_widest_path_needs_more_than_two_hops(self, bandwidth):
        network = figure1_network()
        optimum = optimal_route(network, V1, V3, bandwidth)
        assert optimum.hop_count == 4


class TestFigure2:
    @pytest.fixture
    def view(self):
        return LocalView.from_network(figure2_network(), FIGURE2_OWNER)

    def test_fp_to_v3_is_v1_and_v2_with_value_four(self, view, bandwidth):
        result = first_hops_to(view, 3, bandwidth)
        assert result.first_hops == frozenset({1, 2})
        assert result.best_value == pytest.approx(4.0)

    def test_both_optimal_paths_to_v3_are_two_hop(self, view, bandwidth):
        paths = enumerate_best_paths(view.graph, FIGURE2_OWNER, 3, bandwidth)
        assert sorted(paths) == [[FIGURE2_OWNER, 1, 3], [FIGURE2_OWNER, 2, 3]]

    def test_direct_links_to_v1_and_v2_have_equal_bandwidth(self, view, bandwidth):
        assert view.direct_link_value(1, bandwidth) == view.direct_link_value(2, bandwidth)

    def test_link_to_v5_is_weaker_than_link_to_v1(self, view, bandwidth):
        assert view.direct_link_value(5, bandwidth) < view.direct_link_value(1, bandwidth)

    def test_v4_is_best_reached_through_the_three_hop_path(self, view, bandwidth):
        result = first_hops_to(view, 4, bandwidth)
        assert result.best_value == pytest.approx(5.0)
        assert result.first_hops == frozenset({1})
        assert view.direct_link_value(4, bandwidth) == pytest.approx(3.0)

    def test_u_is_unaware_of_the_v8_v9_link(self, view):
        assert not view.has_link(8, 9)
        assert figure2_network().has_link(8, 9)

    def test_localized_view_misses_the_global_optimum_to_v9(self, view, bandwidth):
        local = first_hops_to(view, 9, bandwidth)
        global_optimum = optimal_route(figure2_network(), FIGURE2_OWNER, 9, bandwidth)
        assert local.best_value == pytest.approx(3.0)
        assert global_optimum.value == pytest.approx(5.0)
        assert global_optimum.path == (FIGURE2_OWNER, 6, 8, 9)

    def test_final_ans_is_v1_v6_v7(self, view, bandwidth):
        result = FnbpSelector().select(view, bandwidth)
        assert result.selected == frozenset({1, 6, 7})

    def test_v11_is_covered_through_v6_rather_than_v2(self, view, bandwidth):
        result = FnbpSelector().select(view, bandwidth)
        assert covering_relays(result)[11] == 6

    def test_v10_and_v5_need_no_extra_selection_once_v1_is_chosen(self, view, bandwidth):
        result = FnbpSelector().select(view, bandwidth)
        relays = covering_relays(result)
        assert relays[5] == 1
        assert relays[10] == 1


class TestFigure4:
    def test_mutual_deferral_without_the_guard(self, bandwidth):
        network = figure4_network()
        selector = FnbpSelector(loop_guard="off")
        relays_a = covering_relays(selector.select(LocalView.from_network(network, A), bandwidth))
        relays_b = covering_relays(selector.select(LocalView.from_network(network, B), bandwidth))
        assert relays_a[E] == B and relays_b[E] == A

    def test_d_selected_by_nobody_without_the_guard(self, bandwidth):
        network = figure4_network()
        selector = FnbpSelector(loop_guard="off")
        for node in (A, B, C, E):
            result = selector.select(LocalView.from_network(network, node), bandwidth)
            if node == E:
                continue  # E's only neighbor is D, selected for reaching A/B, not affected by the loop
            assert D not in result.selected

    def test_guard_makes_a_select_d(self, bandwidth):
        network = figure4_network()
        result = FnbpSelector().select(LocalView.from_network(network, A), bandwidth)
        assert D in result.selected
        assert covering_relays(result)[E] == D

    def test_the_limiting_last_link_is_the_cause(self, bandwidth):
        """Raising the (D, E) bandwidth above the others removes the pathology entirely."""
        network = figure4_network()
        network.set_link_weight(D, E, "bandwidth", 9.0)
        selector = FnbpSelector(loop_guard="off")
        result_a = selector.select(LocalView.from_network(network, A), bandwidth)
        assert covering_relays(result_a)[E] == D


class TestFigure5:
    def test_selresult_triplet_is_reported_for_the_same_owner(self):
        from repro.papergraphs import figure5_selections
        from repro.papergraphs.figure5 import FIGURE5_OWNER

        selections = figure5_selections()
        assert set(selections) == {"olsr-mpr", "topology-filtering", "fnbp"}
        assert all(result.owner == FIGURE5_OWNER for result in selections.values())

    def test_all_selections_are_one_hop_subsets(self):
        from repro.papergraphs.figure5 import FIGURE5_OWNER

        network = figure5_network()
        neighborhood = network.neighbors(FIGURE5_OWNER)
        for result in figure5_selections().values():
            assert set(result.selected) <= neighborhood

    def test_fnbp_advertises_strictly_fewer_neighbors_than_the_baselines(self):
        selections = figure5_selections()
        assert len(selections["fnbp"].selected) < len(selections["topology-filtering"].selected)
        assert len(selections["fnbp"].selected) < len(selections["olsr-mpr"].selected)

    def test_topology_filtering_advertises_every_tied_relay_but_fnbp_keeps_one(self):
        """Fringe node 5 is reachable through relays 1 and 2 at identical quality: the
        filtering baseline advertises both, FNBP keeps a single one (the paper's set-size
        argument)."""
        selections = figure5_selections()
        filtering = set(selections["topology-filtering"].selected)
        fnbp = set(selections["fnbp"].selected)
        assert {1, 2} <= filtering
        assert len(fnbp & {1, 2}) == 1

    def test_fnbp_covers_node_8_through_a_longer_path_instead_of_advertising_relay_4(self, bandwidth):
        selections = figure5_selections()
        assert 4 in selections["topology-filtering"].selected
        assert 4 not in selections["fnbp"].selected
        relays = covering_relays(selections["fnbp"])
        assert relays[8] in selections["fnbp"].selected

    def test_every_two_hop_neighbor_has_an_adjacent_relay_or_longer_covered_path(self, bandwidth):
        from repro.papergraphs.figure5 import FIGURE5_OWNER

        network = figure5_network()
        view = LocalView.from_network(network, FIGURE5_OWNER)
        for name, result in figure5_selections().items():
            if name == "fnbp":
                relays = covering_relays(result)
                assert set(view.two_hop) <= set(relays)
                continue
            for target in view.two_hop:
                assert view.common_relays(target) & set(result.selected), (
                    f"{name} leaves {target} uncovered"
                )
