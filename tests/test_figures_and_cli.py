"""Tests for the per-figure entry points and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.experiments import FIGURES, run_all_figures, run_figure, smoke_config
from repro.experiments.cli import build_parser, main
from repro.experiments.figures import figure6, figure7, figure8, figure9


class TestFigureEntryPoints:
    def test_figure_registry_covers_the_evaluation_section(self):
        assert set(FIGURES) == {6, 7, 8, 9}

    def test_figure6_uses_bandwidth_and_figure7_uses_delay(self):
        result6 = figure6(smoke_config("bandwidth"))
        result7 = figure7(smoke_config("delay"))
        assert result6.metric_name == "bandwidth"
        assert result7.metric_name == "delay"
        assert result6.experiment_id == "fig6"
        assert result7.experiment_id == "fig7"

    def test_figure8_and_figure9_report_overheads(self):
        result8 = figure8(smoke_config("bandwidth"))
        result9 = figure9(smoke_config("delay"))
        assert "overhead" in result8.y_label
        assert result9.metric_name == "delay"

    def test_run_figure_by_number_and_unknown_number(self):
        result = run_figure(6, smoke_config("bandwidth"))
        assert result.experiment_id == "fig6"
        with pytest.raises(KeyError):
            run_figure(3)

    def test_run_all_figures_smoke(self):
        results = run_all_figures("smoke")
        assert set(results) == {6, 7, 8, 9}
        for number, result in results.items():
            assert result.series, f"figure {number} produced no series"


class TestCli:
    def test_parser_requires_a_figure_or_all(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
        args = parser.parse_args(["--figure", "6", "--profile", "smoke"])
        assert args.figure == 6 and args.profile == "smoke"

    def test_cli_single_figure_with_outputs(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        json_output = tmp_path / "results.json"
        exit_code = main(
            [
                "--figure",
                "6",
                "--profile",
                "smoke",
                "--quiet",
                "--output",
                str(output),
                "--json",
                str(json_output),
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "fig6" in printed
        assert "fig6" in output.read_text()
        assert "fig6" in json.loads(json_output.read_text())

    def test_cli_overrides_runs_and_seed(self, capsys):
        exit_code = main(["--figure", "7", "--profile", "smoke", "--runs", "1", "--seed", "7", "--quiet"])
        assert exit_code == 0
        assert "fig7" in capsys.readouterr().out
