"""Differential tests: every fast solver path against its retained networkx reference.

The compact-graph solvers, the cached bottleneck forests and the incremental advertised
topologies are pure-performance rewrites of straightforward networkx code, so the seed
implementations are retained (the ``_*_nx`` module privates of
:mod:`repro.localview.paths`, :func:`build_advertised_topology`) and this suite pins the
fast paths to them on a corpus of seeded random unit-disk topologies -- the same
deployment model the paper's evaluation uses -- across all metric families (bandwidth,
delay, and a lexicographic composite that forces the generic solver).  In the style of
Monte-Carlo simulation-validation suites, the comparison is exact equality of the full
result objects, not statistical closeness: the caches and diffs are only allowed to make
the computation faster, never different.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.selection import make_selector
from repro.experiments.config import smoke_config
from repro.experiments.overhead import run_overhead_experiment
from repro.localview import LocalView, all_first_hops, best_values_from
from repro.localview.paths import (
    _all_first_hops_bottleneck_forest_nx,
    _all_first_hops_owner_dijkstra_nx,
    _best_values_from_nx,
    _first_hops_to_nx,
)
from repro.metrics import BandwidthMetric, DelayMetric, LexicographicMetric
from repro.routing.advertised import (
    AdvertisedTopologyBuilder,
    build_advertised_topology,
    run_selection,
)
from repro.topology import FieldSpec, FixedCountNetworkGenerator

TOPOLOGY_COUNT = 50

from repro.metrics.base import AdditiveMetric


class CongestionMetric(AdditiveMetric):
    """An additive cost read off the ``bandwidth`` attribute (a second additive criterion
    with values genuinely different from delay, so composite tuples are not degenerate)."""

    name = "bandwidth"


BANDWIDTH = BandwidthMetric()
DELAY = DelayMetric()
#: A composite mixing the families; overrides the whole metric protocol, forcing the
#: generic solver paths, and is not prefix-optimal.
COMPOSITE = LexicographicMetric([DelayMetric(), BandwidthMetric()])
#: An all-additive composite: tuple-valued like COMPOSITE but prefix-optimal, so it is the
#: one composite the owner-dijkstra propagation (its generic tuple branch) must handle.
ADDITIVE_COMPOSITE = LexicographicMetric([DelayMetric(), CongestionMetric()], name="lex-additive")

#: Metrics paired with the all-targets fast methods that are valid for them.  The mixed
#: composite gets no single-pass method: it is not prefix-optimal (its concave component
#: lets a suffix's ``min`` erase a prefix's disadvantage), so owner-dijkstra would
#: under-report first-hop sets -- the exact bug this suite originally caught in the
#: ``auto`` dispatch.  The all-additive composite IS prefix-optimal and exercises
#: owner-dijkstra's generic tuple-valued tight-link branch.
METHODS_BY_METRIC = (
    (BANDWIDTH, ("per-target", "bottleneck-forest", "auto")),
    (DELAY, ("per-target", "owner-dijkstra", "auto")),
    (COMPOSITE, ("per-target", "auto")),
    (ADDITIVE_COMPOSITE, ("per-target", "owner-dijkstra", "auto")),
)


def unit_disk_network(seed: int):
    """One seeded random unit-disk topology with bandwidth and delay weights.

    Small *integer-valued* weights serve two purposes: value ties (and therefore
    multi-element first-hop sets) become likely, which is where the fast paths are easiest
    to get wrong, and additive path sums are exact in binary floating point, so solvers
    that accumulate a path's value from opposite ends (owner-rooted vs target-rooted) must
    agree bit-for-bit rather than merely up to rounding.
    """
    network = FixedCountNetworkGenerator(
        field=FieldSpec(width=320.0, height=320.0, radius=110.0),
        node_count=22,
        seed=seed,
        restrict_to_largest_component=True,
    ).generate()
    rng = random.Random(seed * 7919 + 1)
    for u, v in sorted(network.links()):
        network.add_link(
            u, v, bandwidth=float(rng.randint(1, 6)), delay=float(rng.randint(1, 6))
        )
    return network


def _owners(network):
    """A deterministic small owner sample spread over the node range."""
    nodes = network.nodes()
    return sorted({nodes[0], nodes[len(nodes) // 2], nodes[-1]})


def _reference_first_hops(view, metric):
    return {target: _first_hops_to_nx(view, target, metric) for target in view.known_targets()}


_NX_TWINS = {
    "owner-dijkstra": _all_first_hops_owner_dijkstra_nx,
    "bottleneck-forest": _all_first_hops_bottleneck_forest_nx,
}


class TestFastSolversMatchNetworkxReferences:
    @pytest.mark.parametrize("seed", range(TOPOLOGY_COUNT))
    def test_all_methods_and_metrics_on_one_topology(self, seed):
        """Every fast method equals the per-target reference AND its own networkx twin,
        cold and warm (the second run answers from the cached compact graph and forest)."""
        network = unit_disk_network(seed)
        for owner in _owners(network):
            view = LocalView.from_network(network, owner)
            for metric, methods in METHODS_BY_METRIC:
                reference = _reference_first_hops(view, metric)
                for method in methods:
                    cold = all_first_hops(view, metric, method=method)
                    assert cold == reference, (seed, owner, metric.name, method)
                    twin = _NX_TWINS.get(method)
                    if twin is not None:
                        assert cold == twin(view, metric), (seed, owner, metric.name, method)
                    warm = all_first_hops(view, metric, method=method)
                    assert warm == reference, (seed, owner, metric.name, method, "warm")

    def test_owner_dijkstra_is_rejected_for_non_prefix_optimal_metrics(self):
        """Mixed composites must not reach the tight-link propagation (found by this suite:
        the auto dispatch used to send every ADDITIVE-kind metric, composites included, to
        owner-dijkstra, silently dropping first hops whose path prefixes were suboptimal)."""
        network = unit_disk_network(0)
        view = LocalView.from_network(network, _owners(network)[0])
        assert not COMPOSITE.prefix_optimal
        with pytest.raises(ValueError):
            all_first_hops(view, COMPOSITE, method="owner-dijkstra")
        assert ADDITIVE_COMPOSITE.prefix_optimal  # exercised in METHODS_BY_METRIC above

    @pytest.mark.parametrize("seed", range(0, TOPOLOGY_COUNT, 5))
    def test_best_values_with_exclusions_match_reference(self, seed):
        network = unit_disk_network(seed)
        nodes = network.nodes()
        source, excluded = nodes[0], (nodes[len(nodes) // 3],)
        for metric in (BANDWIDTH, DELAY, COMPOSITE, ADDITIVE_COMPOSITE):
            assert best_values_from(network.graph, source, metric, excluded) == (
                _best_values_from_nx(network.graph, source, metric, excluded)
            )

    @pytest.mark.parametrize("seed", range(0, TOPOLOGY_COUNT, 5))
    def test_warm_forest_cache_equals_fresh_view(self, seed):
        """A view that has served many solves answers exactly like a freshly built one."""
        network = unit_disk_network(seed)
        owner = _owners(network)[0]
        warm_view = LocalView.from_network(network, owner)
        for _ in range(3):  # populate and exercise the compact-graph and forest caches
            all_first_hops(warm_view, BANDWIDTH, method="bottleneck-forest")
        fresh_view = LocalView.from_network(network, owner)
        assert all_first_hops(warm_view, BANDWIDTH, method="bottleneck-forest") == (
            all_first_hops(fresh_view, BANDWIDTH, method="bottleneck-forest")
        )
        assert warm_view._forest  # the warm path really did come from the cache


class TestIncrementalAdvertisedTopologyMatchesFullRebuild:
    @pytest.mark.parametrize("seed", range(0, TOPOLOGY_COUNT, 5))
    def test_diffed_graph_equals_rebuilt_graph_across_selectors(self, seed):
        """Cycling one builder through every selector (and back) always yields exactly the
        graph a from-zero rebuild produces: same nodes, same edges, same attributes."""
        network = unit_disk_network(seed)
        metric = BANDWIDTH
        views = LocalView.all_from_network(network)
        builder = AdvertisedTopologyBuilder(network)
        per_selector = {}
        for name in ("qolsr-mpr2", "topology-filtering", "fnbp"):
            per_selector[name] = run_selection(network, make_selector(name), metric, views=views)
        # Forward pass, then revisit the first selector so the diff also runs "backwards".
        for name in ("qolsr-mpr2", "topology-filtering", "fnbp", "qolsr-mpr2"):
            incremental = builder.build(per_selector[name])
            rebuilt = build_advertised_topology(network, per_selector[name])
            assert incremental.ans_sets == rebuilt.ans_sets
            assert set(incremental.graph.nodes) == set(rebuilt.graph.nodes)
            incremental_edges = {
                frozenset(edge): dict(incremental.graph.edges[edge])
                for edge in incremental.graph.edges
            }
            rebuilt_edges = {
                frozenset(edge): dict(rebuilt.graph.edges[edge]) for edge in rebuilt.graph.edges
            }
            assert incremental_edges == rebuilt_edges

    def test_routing_over_a_stale_builder_topology_raises(self):
        """The liveness contract is enforced, not just documented: once the builder is
        re-targeted, a router still holding the earlier topology raises instead of silently
        routing one selector's packets over another selector's edges."""
        from repro.routing.hop_by_hop import HopByHopRouter

        network = unit_disk_network(0)
        metric = BANDWIDTH
        views = LocalView.all_from_network(network)
        builder = AdvertisedTopologyBuilder(network)
        first = builder.build(run_selection(network, make_selector("fnbp"), metric, views=views))
        router = HopByHopRouter(network, first, metric)
        nodes = network.nodes()
        assert router.link_state_route(nodes[0], nodes[-1]).delivered  # live: routes fine
        builder.build(run_selection(network, make_selector("qolsr-mpr2"), metric, views=views))
        with pytest.raises(RuntimeError):
            router.link_state_route(nodes[0], nodes[-1])
        with pytest.raises(RuntimeError):
            router.next_hop(nodes[0], nodes[-1])
        # Independently built topologies are never invalidated.
        independent = build_advertised_topology(
            network, run_selection(network, make_selector("fnbp"), metric, views=views)
        )
        independent.assert_live()

    def test_builder_validates_unknown_links_like_the_full_build(self):
        network = unit_disk_network(0)
        nodes = network.nodes()
        non_neighbor = next(
            other for other in nodes if other != nodes[0] and not network.has_link(nodes[0], other)
        )
        builder = AdvertisedTopologyBuilder(network)
        with pytest.raises(ValueError):
            builder.build({nodes[0]: frozenset({non_neighbor})})


class TestSharedLinkStateEdgesMatchPerRouterWalks:
    @pytest.mark.parametrize("seed", range(0, TOPOLOGY_COUNT, 5))
    def test_routers_with_trial_shared_edges_route_bit_identically(self, seed):
        """One per-source HELLO-edge walk shared across every selector's router (the
        Trial.link_state_edges cache) yields exactly the outcomes of the per-router
        adjacency walk it replaced, for every selector, pair and metric family."""
        from repro.experiments.runner import Trial
        from repro.routing.hop_by_hop import HopByHopRouter

        network = unit_disk_network(seed)
        config = smoke_config("bandwidth")
        nodes = network.nodes()
        pairs = [(nodes[i], nodes[-1 - i]) for i in range(min(4, len(nodes) // 2))]
        for metric in (BANDWIDTH, DELAY, COMPOSITE):
            views = LocalView.all_from_network(network)
            trial = Trial(
                config=config,
                metric=metric,
                density=8.0,
                run_index=0,
                network=network,
            )
            for name in ("qolsr-mpr2", "topology-filtering", "fnbp"):
                selections = run_selection(network, make_selector(name), metric, views=views)
                advertised = build_advertised_topology(network, selections)
                shared = HopByHopRouter(
                    network, advertised, metric, local_edges=trial.link_state_edges
                )
                plain = HopByHopRouter(network, advertised, metric)
                for source, destination in pairs:
                    assert shared.link_state_route(source, destination) == (
                        plain.link_state_route(source, destination)
                    ), (seed, metric.name, name, source, destination)


class TestSweepsUnchangedByCaching:
    def test_overhead_sweep_equals_cache_free_reference(self):
        """The full fig-8 pipeline (selection -> incremental advertised topology -> cached
        link-state routing) returns byte-identical results to a from-zero reference that
        rebuilds every advertised topology and routes without any shared state."""
        from repro.experiments.results import ExperimentResult, SeriesPoint
        from repro.experiments.runner import build_trial
        from repro.experiments.overhead import qos_overhead
        from repro.experiments.stats import summarize
        from repro.routing.hop_by_hop import HopByHopRouter
        from repro.routing.optimal import optimal_route

        config = smoke_config("bandwidth").with_overrides(runs=2)
        metric = BANDWIDTH
        fast = run_overhead_experiment(config, metric, experiment_id="fig8-diff")

        reference = ExperimentResult(
            experiment_id="fig8-diff",
            title="QoS overhead vs the centralized optimum",
            metric_name=metric.name,
            x_label="density",
            y_label=f"{metric.name} overhead",
        )
        overheads = {name: [] for name in config.selectors}
        deliveries = {name: [] for name in config.selectors}
        density = config.densities[0]
        for run_index in range(config.runs):
            trial = build_trial(config, metric, density, run_index)
            if len(trial.network) < 2:
                continue
            routed = []
            for source, destination in trial.sample_pairs(config.pairs_per_run):
                optimal = optimal_route(trial.network, source, destination, metric)
                if optimal.reachable and metric.is_usable(optimal.value):
                    routed.append((source, destination, optimal.value))
            for name in config.selectors:
                advertised = build_advertised_topology(
                    trial.network, make_selector(name).select_all(trial.network, metric)
                )
                router = HopByHopRouter(trial.network, advertised, metric)
                for source, destination, optimal_value in routed:
                    outcome = router.link_state_route(source, destination)
                    deliveries[name].append(1.0 if outcome.delivered else 0.0)
                    if outcome.delivered:
                        overheads[name].append(qos_overhead(metric, outcome.value, optimal_value))
        for name in config.selectors:
            delivery = summarize(deliveries[name])
            reference.add_point(
                name,
                SeriesPoint(
                    density=density,
                    summary=summarize(overheads[name]),
                    extra={"delivery_ratio": delivery.mean, "attempts": float(delivery.count)},
                ),
            )

        fast_dict = fast.to_dict()
        fast_dict.pop("notes", None)
        reference_dict = reference.to_dict()
        reference_dict.pop("notes", None)
        assert json.dumps(fast_dict, sort_keys=True) == json.dumps(reference_dict, sort_keys=True)


# --------------------------------------------------------------------------- degenerate
# Adversarial degenerate topologies: the batched shared-CSR kernels and the scalar
# solvers must agree (and neither may crash) on the network shapes that stress empty
# arrays, empty windows, and tolerance-driven tie-breaking -- single-node networks,
# zero-edge views, isolated owners, fully disconnected components, and duplicate link
# weights.  Every registered selector runs on both paths on every metric family.


def _degenerate_networks():
    """Name → Network for each adversarial shape (weights on both metric attributes)."""
    from repro.topology.network import Network

    def weighted(links, isolated=(), positions=None):
        network = Network.from_links(links, positions)
        for node in isolated:
            network.add_node(node)
        return network

    uniform = {"bandwidth": 3.0, "delay": 3.0}
    shapes = {}

    single = Network()
    single.add_node(0, (0.0, 0.0))
    shapes["single-node"] = single

    # Zero-edge views everywhere: nodes exist, no links at all.
    no_links = Network()
    for node in range(4):
        no_links.add_node(node, (float(node), 0.0))
    shapes["no-links"] = no_links

    # One connected triangle plus an isolated owner with an empty view.
    shapes["isolated-owner"] = weighted(
        {(0, 1): dict(uniform), (1, 2): dict(uniform), (0, 2): dict(uniform)},
        isolated=(9,),
    )

    # Two components that never see each other (views are windows of a CSR holding both).
    shapes["two-components"] = weighted(
        {
            (0, 1): {"bandwidth": 2.0, "delay": 1.0},
            (1, 2): {"bandwidth": 5.0, "delay": 4.0},
            (10, 11): {"bandwidth": 1.0, "delay": 2.0},
            (11, 12): {"bandwidth": 3.0, "delay": 3.0},
            (10, 12): {"bandwidth": 3.0, "delay": 3.0},
        }
    )

    # Every link identical: every path value ties, so first-hop sets are maximal and
    # selection leans entirely on the deterministic tie-breaking order.
    shapes["all-duplicate-weights"] = weighted(
        {
            (u, v): dict(uniform)
            for u, v in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4), (0, 4)]
        }
    )

    # A path graph whose two equal-weight branches meet again: duplicate weights along
    # parallel routes, plus degree-1 endpoints (single-slot CSR rows).
    shapes["parallel-ties"] = weighted(
        {
            (0, 1): {"bandwidth": 4.0, "delay": 2.0},
            (0, 2): {"bandwidth": 4.0, "delay": 2.0},
            (1, 3): {"bandwidth": 4.0, "delay": 2.0},
            (2, 3): {"bandwidth": 4.0, "delay": 2.0},
            (3, 5): {"bandwidth": 1.0, "delay": 7.0},
        }
    )
    return shapes


class TestDegenerateTopologiesScalarVsBatched:
    @pytest.mark.parametrize("shape", sorted(_degenerate_networks()))
    def test_every_selector_and_metric_agrees_on_both_paths(self, shape):
        """Scalar per-view selection == batched shared-CSR selection on each degenerate
        network, for every registered selector and every metric family."""
        from repro.core.selection import available_selectors
        from repro.localview.networkgraph import NetworkGraph

        network = _degenerate_networks()[shape]
        for metric in (BANDWIDTH, DELAY, COMPOSITE, ADDITIVE_COMPOSITE):
            scalar_views = LocalView.all_from_network(network)
            ng = NetworkGraph.from_network(network)
            batched_views = LocalView.all_from_network(network, network_graph=ng)
            for name in available_selectors():
                selector = make_selector(name)
                scalar = {
                    node: selector.select(view, metric) for node, view in scalar_views.items()
                }
                batched = selector.select_all(network, metric, views=batched_views)
                assert scalar == batched, (shape, metric.name, name)

    @pytest.mark.parametrize("shape", sorted(_degenerate_networks()))
    def test_first_hop_kernels_agree_on_degenerate_windows(self, shape):
        """The batched kernels themselves (not just selection built on them) reproduce
        the scalar first-hop sets on every degenerate window, including empty ones."""
        from repro.localview.batched import batched_all_first_hops
        from repro.localview.networkgraph import NetworkGraph

        network = _degenerate_networks()[shape]
        ng = NetworkGraph.from_network(network)
        views = LocalView.all_from_network(network, network_graph=ng)
        for metric in (BANDWIDTH, DELAY):
            batch = batched_all_first_hops(ng, list(views.values()), metric)
            assert batch is not None
            for owner, view in views.items():
                fresh = LocalView.from_network(network, owner)
                assert batch[owner] == all_first_hops(fresh, metric), (shape, metric.name, owner)
