"""Discrete-event simulation of the full protocol stack over an ideal MAC layer."""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.radio import IdealRadio, RadioStatistics
from repro.sim.scenario import DeliveryReport, OlsrSimulation

# Event tracing moved to the protocol subsystem (one tracing path for both the static
# scenario and the event-driven simulator); re-exported here for compatibility.
from repro.protocol.trace import EventTrace, TraceEvent

__all__ = [
    "Simulator",
    "EventHandle",
    "IdealRadio",
    "RadioStatistics",
    "OlsrSimulation",
    "DeliveryReport",
    "EventTrace",
    "TraceEvent",
]
