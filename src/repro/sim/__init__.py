"""Discrete-event simulation of the full protocol stack over an ideal MAC layer."""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.radio import IdealRadio, RadioStatistics
from repro.sim.scenario import DeliveryReport, OlsrSimulation
from repro.sim.trace import EventTrace, TraceEvent

__all__ = [
    "Simulator",
    "EventHandle",
    "IdealRadio",
    "RadioStatistics",
    "OlsrSimulation",
    "DeliveryReport",
    "EventTrace",
    "TraceEvent",
]
