"""A minimal discrete-event simulation engine.

The paper's evaluation uses the authors' own C simulator with an ideal MAC layer; this engine
is its Python counterpart: a time-ordered event queue and nothing else.  Events are plain
callables scheduled at absolute times; ties are broken by insertion order so runs are fully
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventCancelled(Exception):
    """Raised when a cancelled event handle is used to reschedule."""


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel the event."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Time-ordered execution of scheduled callbacks."""

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._order = itertools.count()
        self._now = 0.0
        self._processed = 0

    # ------------------------------------------------------------------ scheduling

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (not before the current time)."""
        if math.isnan(time) or time < self._now:
            raise ValueError(f"cannot schedule in the past (now={self._now}, requested={time})")
        event = _ScheduledEvent(time=time, order=next(self._order), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    # ------------------------------------------------------------------ execution

    def run_until(self, end_time: float) -> None:
        """Execute every event scheduled strictly up to and including ``end_time``."""
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
        self._now = max(self._now, end_time)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Execute events until the queue drains (bounded by ``max_events`` as a safety net)."""
        executed = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            executed += 1
            if executed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events without draining")

    def pending_events(self) -> int:
        """Number of not-yet-executed (and not cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)
