"""A minimal discrete-event simulation engine.

The paper's evaluation uses the authors' own C simulator with an ideal MAC layer; this engine
is its Python counterpart: a time-ordered event queue and nothing else.  Events are plain
callables scheduled at absolute times; ties are broken by insertion order so runs are fully
deterministic.

Cancellation is lazy: a cancelled event stays in the heap (marked dead) until it bubbles to
the front or until cancelled events outnumber live ones, at which point the queue is
compacted in one pass.  A live-event counter keeps :meth:`Simulator.pending_events` O(1)
either way.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class EventCancelled(Exception):
    """Raised when a cancelled event handle is used to reschedule."""


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel the event."""

    def __init__(self, event: _ScheduledEvent, simulator: "Simulator"):
        self._event = event
        self._simulator = simulator

    def cancel(self) -> None:
        event = self._event
        if event.cancelled or event.executed:
            return
        event.cancelled = True
        self._simulator._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Time-ordered execution of scheduled callbacks."""

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._order = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._live = 0  # events in the queue that are neither cancelled nor executed

    # ------------------------------------------------------------------ scheduling

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (not before the current time)."""
        if math.isnan(time) or time < self._now:
            raise ValueError(f"cannot schedule in the past (now={self._now}, requested={time})")
        event = _ScheduledEvent(time=time, order=next(self._order), callback=callback)
        heapq.heappush(self._queue, event)
        self._live += 1
        return EventHandle(event, self)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    # ------------------------------------------------------------------ execution

    def run_until(self, end_time: float) -> None:
        """Execute every event scheduled strictly up to and including ``end_time``."""
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            event.executed = True
            self._now = event.time
            event.callback()
            self._processed += 1
        self._now = max(self._now, end_time)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Execute events until the queue drains (bounded by ``max_events`` as a safety net)."""
        executed = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            event.executed = True
            self._now = event.time
            event.callback()
            self._processed += 1
            executed += 1
            if executed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events without draining")

    def pending_events(self) -> int:
        """Number of not-yet-executed (and not cancelled) events.  O(1)."""
        return self._live

    # ------------------------------------------------------------------ internals

    def _on_cancel(self) -> None:
        self._live -= 1
        # Compact once dead events outnumber live ones, so a long run that schedules and
        # cancels heavily (e.g. protocol timers being refreshed) cannot keep every dead
        # event resident until its timestamp is reached.
        if len(self._queue) > 8 and len(self._queue) - self._live > self._live:
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
