"""End-to-end protocol simulation: OLSR/QOLSR/FNBP nodes over the ideal radio.

:class:`OlsrSimulation` wires one :class:`~repro.olsr.node.OlsrNode` per network node to a
shared :class:`~repro.sim.engine.Simulator` and :class:`~repro.sim.radio.IdealRadio`,
schedules the periodic protocol behaviour (HELLO emission, selection refresh, TC emission,
routing-table recomputation) with small deterministic jitter, and exposes the converged
protocol state plus data-packet delivery, so the whole stack -- neighbor sensing, MPR/ANS
selection, TC flooding, hop-by-hop forwarding -- is exercised end to end.

The graph-level experiment harness (:mod:`repro.experiments`) computes the same converged
quantities directly and is what the figure benchmarks use for speed; the integration tests
assert that the simulation converges to those same sets on common topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.fnbp import FnbpSelector
from repro.core.selection import AnsSelector
from repro.metrics.base import Metric
from repro.olsr import constants
from repro.olsr.messages import DataPacket, Packet, TcMessage
from repro.olsr.node import OlsrNode
from repro.sim.engine import Simulator
from repro.sim.radio import IdealRadio
from repro.protocol.trace import EventTrace
from repro.topology.network import Network
from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of injecting one data packet into the simulated network."""

    source: NodeId
    destination: NodeId
    delivered: bool
    path: Tuple[NodeId, ...]
    value: float
    hop_count: int


class OlsrSimulation:
    """A complete simulated OLSR network running one selection algorithm."""

    def __init__(
        self,
        network: Network,
        metric: Metric,
        selector_factory: Callable[[], AnsSelector] = FnbpSelector,
        seed: int = 0,
        hello_interval: float = constants.HELLO_INTERVAL,
        tc_interval: float = constants.TC_INTERVAL,
        propagation_delay: float = 0.001,
    ) -> None:
        self.network = network
        self.metric = metric
        self.simulator = Simulator()
        self.trace = EventTrace()
        self.hello_interval = hello_interval
        self.tc_interval = tc_interval
        self._seed = seed

        self.nodes: Dict[NodeId, OlsrNode] = {}
        for node_id in network.nodes():
            link_weights = {
                neighbor: network.link_attributes(node_id, neighbor)
                for neighbor in network.neighbors(node_id)
            }
            self.nodes[node_id] = OlsrNode(
                node_id=node_id,
                metric=metric,
                selector=selector_factory(),
                link_weights=link_weights,
            )

        self.radio = IdealRadio(
            network=network,
            simulator=self.simulator,
            deliver=self._on_receive,
            propagation_delay=propagation_delay,
        )
        self._schedule_periodic_behaviour()

    # ------------------------------------------------------------------ periodic behaviour

    def _schedule_periodic_behaviour(self) -> None:
        for node_id in self.network.nodes():
            rng = spawn_rng(self._seed, "sim-jitter", node_id)
            hello_offset = rng.uniform(0.0, constants.MAX_JITTER)
            tc_offset = self.hello_interval + rng.uniform(0.0, constants.MAX_JITTER)
            self._schedule_hello(node_id, hello_offset)
            self._schedule_tc(node_id, tc_offset)

    def _schedule_hello(self, node_id: NodeId, delay: float) -> None:
        def emit() -> None:
            node = self.nodes[node_id]
            node.tick(self.simulator.now)
            hello = node.make_hello()
            self.trace.record(self.simulator.now, "hello-sent", node_id)
            self.radio.broadcast(node_id, Packet(message=hello, sender=node_id))
            self._schedule_hello(node_id, self.hello_interval)

        self.simulator.schedule_in(delay, emit)

    def _schedule_tc(self, node_id: NodeId, delay: float) -> None:
        def emit() -> None:
            node = self.nodes[node_id]
            node.refresh_selection()
            node.recompute_routes()
            tc = node.make_tc()
            if tc is not None:
                self.trace.record(self.simulator.now, "tc-sent", node_id)
                self.radio.broadcast(node_id, Packet(message=tc, sender=node_id))
            self._schedule_tc(node_id, self.tc_interval)

        self.simulator.schedule_in(delay, emit)

    # ------------------------------------------------------------------ reception

    def _on_receive(self, receiver: NodeId, packet: Packet) -> None:
        node = self.nodes[receiver]
        if isinstance(packet.message, DataPacket):
            self.trace.record(
                self.simulator.now,
                "data-received",
                receiver,
                packet_id=packet.message.identifier,
            )
        responses = node.handle_packet(packet, now=self.simulator.now)
        for response in responses:
            self._transmit(receiver, response)

    def _transmit(self, sender: NodeId, packet: Packet) -> None:
        message = packet.message
        if isinstance(message, TcMessage):
            self.trace.record(self.simulator.now, "tc-forwarded", sender)
            self.radio.broadcast(sender, packet)
        elif isinstance(message, DataPacket):
            next_hop = self.nodes[sender].routing_table.next_hop(message.destination)
            if next_hop is None:
                self.trace.record(
                    self.simulator.now, "data-dropped", sender, packet_id=message.identifier
                )
                return
            self.trace.record(
                self.simulator.now,
                "data-forwarded",
                sender,
                packet_id=message.identifier,
                next_hop=next_hop,
            )
            self.radio.unicast(sender, next_hop, packet)
        else:
            self.radio.broadcast(sender, packet)

    # ------------------------------------------------------------------ running

    def run_until(self, end_time: float) -> None:
        """Advance the simulation to ``end_time``."""
        self.simulator.run_until(end_time)

    def run_until_converged(self, settle_time: float = constants.DEFAULT_CONVERGENCE_TIME) -> None:
        """Run long enough for tables to settle in a static network, then refresh routes."""
        self.run_until(settle_time)
        for node in self.nodes.values():
            node.refresh_selection()
            node.recompute_routes()

    # ------------------------------------------------------------------ converged state

    def ans_sets(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        """Every node's current advertised set."""
        return {node_id: node.ans_set for node_id, node in self.nodes.items()}

    def mpr_sets(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        """Every node's current RFC 3626 MPR set."""
        return {node_id: node.mpr_set for node_id, node in self.nodes.items()}

    def average_ans_size(self) -> float:
        sets = self.ans_sets()
        if not sets:
            return 0.0
        return sum(len(selected) for selected in sets.values()) / len(sets)

    def control_message_counts(self) -> Dict[str, int]:
        """Aggregate control-traffic counters across all nodes."""
        totals = {"hellos_sent": 0, "tcs_sent": 0, "tcs_forwarded": 0}
        for node in self.nodes.values():
            totals["hellos_sent"] += node.statistics.hellos_sent
            totals["tcs_sent"] += node.statistics.tcs_sent
            totals["tcs_forwarded"] += node.statistics.tcs_forwarded
        return totals

    # ------------------------------------------------------------------ data traffic

    def send_data(
        self,
        source: NodeId,
        destination: NodeId,
        settle_delay: float = 1.0,
    ) -> DeliveryReport:
        """Inject one data packet and report whether / how it was delivered."""
        if source not in self.nodes or destination not in self.nodes:
            raise KeyError("source and destination must be simulated nodes")
        origin = self.nodes[source]
        packet = origin.originate_data(destination)
        if packet is None:
            return DeliveryReport(source, destination, False, (source,), self.metric.worst, 0)
        self.trace.record(
            self.simulator.now, "data-originated", source, packet_id=packet.message.identifier
        )
        self._transmit(source, packet)
        self.run_until(self.simulator.now + settle_delay)

        path = self.trace.data_packet_path(packet.message.identifier)
        delivered = bool(path) and path[-1] == destination
        value = self.metric.worst
        if delivered and len(path) >= 2:
            value = self.metric.path_value(
                self.network.link_value(u, v, self.metric) for u, v in zip(path, path[1:])
            )
        elif delivered:
            value = self.metric.identity
        return DeliveryReport(
            source=source,
            destination=destination,
            delivered=delivered,
            path=tuple(path),
            value=value,
            hop_count=max(0, len(path) - 1),
        )
