"""The ideal wireless channel.

The paper deliberately evaluates above an *ideal MAC layer*: no interference, no collisions,
no losses.  :class:`IdealRadio` implements exactly that: a broadcast reaches every node
within communication range after a fixed (small) propagation delay, a unicast reaches its
addressee if it is in range, and nothing is ever dropped.  Delivery callbacks are scheduled
on the shared :class:`~repro.sim.engine.Simulator` so transmissions interleave realistically
with the periodic protocol timers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.olsr.messages import Packet
from repro.sim.engine import Simulator
from repro.topology.network import Network
from repro.utils.ids import NodeId

DeliveryCallback = Callable[[NodeId, Packet], None]


@dataclass
class RadioStatistics:
    """Channel-level counters (useful for control-overhead measurements)."""

    broadcasts: int = 0
    unicasts: int = 0
    deliveries: int = 0
    undeliverable_unicasts: int = 0


class IdealRadio:
    """Collision-free broadcast medium over a static unit-disk topology."""

    def __init__(
        self,
        network: Network,
        simulator: Simulator,
        deliver: DeliveryCallback,
        propagation_delay: float = 0.001,
    ) -> None:
        if propagation_delay < 0:
            raise ValueError(f"propagation delay must be non-negative, got {propagation_delay}")
        self.network = network
        self.simulator = simulator
        self.deliver = deliver
        self.propagation_delay = propagation_delay
        self.statistics = RadioStatistics()

    # ------------------------------------------------------------------ transmissions

    def broadcast(self, sender: NodeId, packet: Packet) -> None:
        """Deliver ``packet`` to every neighbor of ``sender`` after the propagation delay."""
        self.statistics.broadcasts += 1
        for neighbor in sorted(self.network.neighbors(sender)):
            self._schedule_delivery(neighbor, packet)

    def unicast(self, sender: NodeId, receiver: NodeId, packet: Packet) -> None:
        """Deliver ``packet`` to ``receiver`` if it is within range of ``sender``."""
        self.statistics.unicasts += 1
        if not self.network.has_link(sender, receiver):
            self.statistics.undeliverable_unicasts += 1
            return
        self._schedule_delivery(receiver, packet)

    # ------------------------------------------------------------------ internals

    def _schedule_delivery(self, receiver: NodeId, packet: Packet) -> None:
        def deliver() -> None:
            self.statistics.deliveries += 1
            self.deliver(receiver, packet)

        self.simulator.schedule_in(self.propagation_delay, deliver)
