"""FNBP -- *First Node on Best Path* based QANS selection (the paper's contribution).

The selection runs locally at every node ``u`` over its two-hop view ``G_u`` and produces the
QoS Advertised Neighbor Set ``ANS(u)`` that ``u`` will announce in its TC messages.  It works
for any additive or concave metric; the paper spells it out for bandwidth (Algorithm 1) and
delay (Algorithm 2), which differ only in which direction "better" points -- exactly the
abstraction captured by :class:`~repro.metrics.base.Metric`.

Step 1 -- one-hop neighbors (lines 1-7 of the paper's algorithms).
    For every one-hop neighbor ``v``, compute ``fP(u, v)``, the set of first nodes of the
    QoS-optimal paths from ``u`` to ``v`` inside ``G_u``.  If the direct link is itself
    optimal (``v ∈ fP(u, v)``), nothing needs to be advertised.  Otherwise, if some already
    selected ANS member is in ``fP(u, v)``, ``v`` is already covered through it.  Otherwise
    select from ``fP(u, v)`` the node whose *direct link from u* is best (ties broken by
    smallest identifier -- the paper's ``max_{≺BW}`` / ``min_{≺D}`` operator).

Step 2 -- two-hop neighbors (lines 8-17).
    Same computation for every two-hop neighbor ``v``: if no current ANS member is a first
    node of an optimal path, select the preferred member of ``fP(u, v)``.  When ``v`` *is*
    already covered, the paper adds a guard against the "limiting last link" pathology of its
    Figure 4: if ``u``'s identifier is smaller than that of every node in ``fP(u, v)``,
    ``u`` must additionally select a relay ``w`` such that the two-hop path ``u-w-v`` exists,
    so that ``v`` cannot end up unreachable when the nodes on the good paths all defer to one
    another.  See :class:`LoopGuardPolicy` for the exact rule and the documented deviation
    from the (typo-ridden) printed pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, List, Optional, Set

from repro.core.selection import AnsSelector, SelectionDecision, SelectionResult
from repro.localview.paths import FirstHopResult, all_first_hops
from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.metrics.ordering import preferred_neighbor
from repro.registry import SELECTORS
from repro.utils.ids import NodeId


def covering_relays(result) -> dict:
    """Extract, from an FNBP :class:`SelectionResult`, the relay used to cover each target.

    For every one- or two-hop neighbor ``v`` of the owner, the returned mapping gives the
    neighbor the owner relies on to reach ``v``: the target itself when the direct link is
    optimal, the selected ANS member otherwise.  This is the "local forwarding" relation the
    paper's Figure 4 discussion refers to -- when two nodes' relays for the same destination
    point at each other, packets loop (see :mod:`repro.papergraphs.figure4`).
    """
    relays = {}
    for decision in result.decisions:
        if decision.target is None:
            continue
        relay = decision.detail_dict().get("relay")
        if relay is not None:
            relays[decision.target] = relay
    return relays


class LoopGuardPolicy(Enum):
    """How FNBP handles a two-hop neighbor that is already covered by the current ANS.

    The guard exists because of the paper's Figure 4: when the last link towards a two-hop
    neighbor is the QoS bottleneck, two nodes can each decide that the *other* already covers
    the destination, leaving it unreachable.  The fix makes the node with the smallest
    identifier among the involved nodes take responsibility.
    """

    ADJACENT_TO_TARGET = "adjacent-to-target"
    """Default, following the paper's prose and Figure 4 walk-through: when the owner's id is
    smaller than every id in ``fP(u, v)``, additionally select a relay ``w`` adjacent to the
    target (the path ``u-w-v`` exists in ``G_u``), preferring relays that are also first
    nodes of an optimal path, then the best direct link, then the smallest identifier."""

    LITERAL = "literal"
    """Follow the printed pseudocode word for word (select from ``fP(u, v) ∩ N(u)``, which is
    simply ``fP(u, v)``).  Kept as an ablation; it does *not* repair the Figure 4 situation
    because the selected relay need not be adjacent to the target."""

    OFF = "off"
    """No guard at all (skip lines 12-14).  Kept as an ablation to demonstrate the loop."""


@SELECTORS.register("fnbp", description="the paper's FNBP QANS selection")
@dataclass
class FnbpSelector(AnsSelector):
    """The paper's FNBP QANS selection.

    Parameters
    ----------
    loop_guard:
        Policy for the already-covered two-hop case (see :class:`LoopGuardPolicy`).
    cover_one_hop:
        When False, step 1 is skipped entirely (ANS members are only selected for two-hop
        neighbors).  This is an ablation switch quantifying how much of FNBP's benefit comes
        from re-routing around weak direct links; the paper's algorithm always runs step 1.
    """

    loop_guard: LoopGuardPolicy = LoopGuardPolicy.ADJACENT_TO_TARGET
    cover_one_hop: bool = True

    name = "fnbp"
    # FNBP's per-view cost is one all_first_hops solve; select_all batches those over
    # the shared network CSR when the views are attached to one.
    batches_first_hops = True

    def __post_init__(self) -> None:
        if isinstance(self.loop_guard, str):
            self.loop_guard = LoopGuardPolicy(self.loop_guard)

    # ------------------------------------------------------------------ selection

    def select(self, view: LocalView, metric: Metric) -> SelectionResult:
        owner = view.owner
        ans: Set[NodeId] = set()
        decisions: List[SelectionDecision] = []
        first_hop_sets = all_first_hops(view, metric)

        def direct_value(neighbor: NodeId) -> float:
            return view.direct_link_value(neighbor, metric)

        # ---- Step 1: one-hop neighbors -------------------------------------------------
        if self.cover_one_hop:
            for target in sorted(view.one_hop):
                result = first_hop_sets[target]
                decisions.append(self._step_one_decision(view, metric, ans, target, result, direct_value))
        # ---- Step 2: two-hop neighbors -------------------------------------------------
        for target in sorted(view.two_hop):
            result = first_hop_sets[target]
            decisions.append(self._step_two_decision(view, metric, ans, target, result, direct_value))

        return SelectionResult(
            owner=owner,
            selector_name=self.name,
            metric_name=metric.name,
            selected=frozenset(ans),
            decisions=tuple(decisions),
        )

    # ------------------------------------------------------------------ step 1

    def _step_one_decision(
        self,
        view: LocalView,
        metric: Metric,
        ans: Set[NodeId],
        target: NodeId,
        result: FirstHopResult,
        direct_value,
    ) -> SelectionDecision:
        detail = (("first_hops", tuple(sorted(result.first_hops))), ("best_value", result.best_value))
        if not result.reachable:
            # Cannot happen for a genuine one-hop neighbor (the direct link always exists),
            # but guard against inconsistent protocol tables.
            return SelectionDecision(target, None, "unreachable-in-view", detail)
        if result.direct_link_is_optimal():
            detail = detail + (("relay", target),)
            return SelectionDecision(target, None, "direct-link-optimal", detail)
        already = result.first_hops & ans
        if already:
            relay = preferred_neighbor(already, metric, direct_value)
            return SelectionDecision(target, None, "covered-by-existing-ans", detail + (("relay", relay),))
        chosen = preferred_neighbor(result.first_hops, metric, direct_value)
        ans.add(chosen)
        return SelectionDecision(
            target, chosen, "selected-first-node-on-best-path", detail + (("relay", chosen),)
        )

    # ------------------------------------------------------------------ step 2

    def _step_two_decision(
        self,
        view: LocalView,
        metric: Metric,
        ans: Set[NodeId],
        target: NodeId,
        result: FirstHopResult,
        direct_value,
    ) -> SelectionDecision:
        detail = (("first_hops", tuple(sorted(result.first_hops))), ("best_value", result.best_value))
        if not result.reachable:
            return SelectionDecision(target, None, "unreachable-in-view", detail)
        already = result.first_hops & ans
        if not already:
            chosen = preferred_neighbor(result.first_hops, metric, direct_value)
            ans.add(chosen)
            return SelectionDecision(
                target, chosen, "selected-first-node-on-best-path", detail + (("relay", chosen),)
            )

        covered_relay = preferred_neighbor(already, metric, direct_value)
        covered_detail = detail + (("relay", covered_relay),)

        # Already covered: apply the loop guard (lines 12-14 / the Figure 4 fix).
        if self.loop_guard is LoopGuardPolicy.OFF:
            return SelectionDecision(target, None, "covered-by-existing-ans", covered_detail)

        owner_has_smallest_id = view.owner < min(result.first_hops)
        if not owner_has_smallest_id:
            return SelectionDecision(target, None, "covered-by-existing-ans", covered_detail)

        if self.loop_guard is LoopGuardPolicy.LITERAL:
            # The printed text: select from fP(u, v) ∩ N(u), which is fP(u, v) itself.
            chosen = preferred_neighbor(result.first_hops, metric, direct_value)
            if chosen in ans:
                return SelectionDecision(
                    target, None, "loop-guard-already-selected", detail + (("relay", chosen),)
                )
            ans.add(chosen)
            return SelectionDecision(target, chosen, "loop-guard-literal", detail + (("relay", chosen),))

        # ADJACENT_TO_TARGET: the owner must guarantee a two-hop path u-w-v, preferring
        # relays that also start an optimal path.
        relays = view.common_relays(target)
        if not relays:
            return SelectionDecision(target, None, "loop-guard-no-two-hop-relay", covered_detail)
        preferred_pool = relays & result.first_hops or relays
        already_adjacent = preferred_pool & ans
        if already_adjacent:
            relay = preferred_neighbor(already_adjacent, metric, direct_value)
            return SelectionDecision(
                target, None, "loop-guard-relay-already-selected", detail + (("relay", relay),)
            )
        chosen = preferred_neighbor(preferred_pool, metric, direct_value)
        ans.add(chosen)
        return SelectionDecision(target, chosen, "loop-guard-selected-relay", detail + (("relay", chosen),))


#: The ablation variants ship under their own registry names so that specs and the
#: ``repro-sweep`` CLI can refer to them directly.
SELECTORS.register(
    "fnbp-literal-guard",
    lambda: FnbpSelector(loop_guard=LoopGuardPolicy.LITERAL),
    description="FNBP with the paper's literal (typo-ridden) loop-guard pseudocode",
)
SELECTORS.register(
    "fnbp-no-guard",
    lambda: FnbpSelector(loop_guard=LoopGuardPolicy.OFF),
    description="FNBP without the loop guard (ablation; can strand two-hop neighbors)",
)
SELECTORS.register(
    "fnbp-two-hop-only",
    lambda: FnbpSelector(cover_one_hop=False),
    description="FNBP covering two-hop neighbors only (ablation of step 1)",
)
