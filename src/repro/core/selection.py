"""The neighbor-selection framework shared by FNBP and every baseline.

A *selector* consumes a node's :class:`~repro.localview.view.LocalView` and a
:class:`~repro.metrics.base.Metric` and produces the set of neighbors the node will advertise
in its TC messages (the paper's ANS / QANS, or the plain MPR set when the protocol does not
distinguish the two).  Selectors also emit a decision trace so that examples, tests and the
worked-figure walk-throughs can explain *why* each node was (not) selected.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.localview.paths import prime_first_hops
from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.obs import runtime as obs
from repro.registry import SELECTORS
from repro.utils.ids import NodeId


@dataclass(frozen=True)
class SelectionDecision:
    """One step of a selector's reasoning, kept for explainability.

    Attributes
    ----------
    target:
        The one- or two-hop neighbor being covered (or ``None`` for global steps such as the
        RFC 3626 greedy rounds).
    chosen:
        The neighbor added to the advertised set at this step (``None`` when nothing was
        added).
    reason:
        A short machine-readable tag, e.g. ``"direct-link-optimal"`` or ``"loop-guard"``.
    detail:
        Optional extra payload (candidate sets, best values) for human-readable reports.
    """

    target: Optional[NodeId]
    chosen: Optional[NodeId]
    reason: str
    detail: Tuple[Tuple[str, object], ...] = ()

    def detail_dict(self) -> Dict[str, object]:
        """The ``detail`` payload as a dictionary."""
        return dict(self.detail)


@dataclass(frozen=True)
class SelectionResult:
    """The advertised neighbor set chosen by a selector for one node."""

    owner: NodeId
    selector_name: str
    metric_name: str
    selected: FrozenSet[NodeId]
    decisions: Tuple[SelectionDecision, ...] = ()

    def __len__(self) -> int:
        return len(self.selected)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.selected

    def explain(self) -> str:
        """A multi-line human-readable account of the selection (used by examples)."""
        lines = [
            f"{self.selector_name} selection at node {self.owner} "
            f"({self.metric_name}): {sorted(self.selected)}"
        ]
        for decision in self.decisions:
            target = "-" if decision.target is None else str(decision.target)
            chosen = "-" if decision.chosen is None else str(decision.chosen)
            lines.append(f"  target {target:>4}: {decision.reason:<28} chosen={chosen}")
        return "\n".join(lines)


class AnsSelector(ABC):
    """Interface of every advertised-neighbor-set selection algorithm."""

    #: Registry / display name of the algorithm.
    name: str = "abstract"

    #: Selectors whose per-view work is dominated by ``all_first_hops`` set this True;
    #: :meth:`select_all` then batch-primes the first-hop caches of every view that will
    #: actually re-run through the shared-CSR kernels (:func:`prime_first_hops`) before
    #: the per-view loop, so the scalar solvers only run where batching is impossible.
    batches_first_hops: bool = False

    @abstractmethod
    def select(self, view: LocalView, metric: Metric) -> SelectionResult:
        """Run the selection at ``view.owner`` for the given metric."""

    def select_all(
        self,
        network,
        metric: Metric,
        views: Optional[Dict[NodeId, LocalView]] = None,
        previous: Optional[Dict[NodeId, SelectionResult]] = None,
        dirty: Optional[Iterable[NodeId]] = None,
    ) -> Dict[NodeId, SelectionResult]:
        """Run the selection at every node of a network (convenience for experiments).

        Views are built in one batched adjacency pass rather than node by node (``network``
        is only consulted when ``views`` is not supplied).  Callers that run several
        selectors (or several metrics) on the same network should build the batch once and
        pass it as ``views``: each view memoizes its per-metric compact graph and
        bottleneck forest, so sharing the views shares that work across runs (this is what
        the sweep harness does through :class:`repro.experiments.runner.Trial`).

        ``previous`` and ``dirty`` (always passed together) make the run *incremental*:
        ``previous`` is a complete earlier result on the same metric and ``dirty`` names
        the owners whose local view has changed since.  Selection is a pure function of
        ``(view, metric)``, so every owner outside ``dirty`` reuses its previous
        :class:`SelectionResult` verbatim and only dirty (or newly appeared) owners re-run
        the selector -- bit-identical to a from-scratch run, just cheaper.  Dynamic trials
        drive this through :class:`SelectionCache` with the dirty sets reported by
        :attr:`StepDelta.dirty <repro.mobility.dynamic.StepDelta.dirty>`.
        """
        if (previous is None) != (dirty is None):
            raise ValueError("previous and dirty must be passed together")
        if views is None:
            views = LocalView.all_from_network(network)
        if previous is None:
            with obs.span("selection"):
                if self.batches_first_hops:
                    prime_first_hops(views.values(), metric)
                results = {node: self.select(view, metric) for node, view in views.items()}
            obs.add("selection.full_runs")
            obs.add("selection.owners_selected", len(results))
            return results
        if not isinstance(dirty, (set, frozenset)):
            dirty = set(dirty)
        with obs.span("selection"):
            # Batch only the owners that will actually re-run: everyone else's result is
            # reused verbatim below, so priming them would be pure waste.
            if self.batches_first_hops:
                prime_first_hops(
                    (
                        view
                        for node, view in views.items()
                        if previous.get(node) is None or node in dirty
                    ),
                    metric,
                )
            results: Dict[NodeId, SelectionResult] = {}
            reused = 0
            for node, view in views.items():
                cached = previous.get(node)
                if cached is not None and node not in dirty:
                    results[node] = cached
                    reused += 1
                else:
                    results[node] = self.select(view, metric)
        obs.add("selection.incremental_runs")
        obs.add("selection.cache_hits", reused)
        obs.add("selection.owners_selected", len(results) - reused)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SelectionCache:
    """Per-``(selector, metric)`` selection results reused across dynamic-trial timesteps.

    The last cache layer of the harness, same philosophy as the compact-graph and
    bottleneck-forest caches on :class:`~repro.localview.view.LocalView`: selection is a
    pure function of the owner's local view and the metric, so results stay valid exactly
    until the view changes.  A dynamic trial therefore only has to re-run a selector on
    the nodes each step's :attr:`StepDelta.dirty
    <repro.mobility.dynamic.StepDelta.dirty>` set names; everyone else's
    :class:`SelectionResult` is reused verbatim from the previous step.

    Usage: register :meth:`on_step` as a step listener of the trial's
    :class:`~repro.mobility.dynamic.DynamicTopology` (which
    :meth:`Trial.step_selections <repro.experiments.runner.Trial.step_selections>` does for
    you), then call :meth:`select_all` whenever a selector's current-step results are
    needed.  Invalidations accumulate *per key*: a key selected every step only re-runs
    the last step's dirty owners, while a key first selected after several steps re-runs
    the union of everything dirtied since its previous selection.  The cache is per-trial
    and therefore per-worker under ``REPRO_WORKERS``, and cached incremental selection is
    pinned bit-identical to from-scratch per-step selection by
    ``tests/test_incremental_selection.py``.
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple[str, object], Dict[NodeId, SelectionResult]] = {}
        self._dirty: Dict[Tuple[str, object], Set[NodeId]] = {}

    def on_step(self, delta) -> None:
        """Step-listener hook: invalidate the owners a :class:`StepDelta` dirtied."""
        self.invalidate(delta.dirty)

    def invalidate(self, nodes: Iterable[NodeId]) -> None:
        """Mark ``nodes`` as needing re-selection in every cached (selector, metric) key."""
        nodes = set(nodes)
        for pending in self._dirty.values():
            pending |= nodes

    def clear(self) -> None:
        """Drop every cached result (the next ``select_all`` per key runs from scratch)."""
        self._results.clear()
        self._dirty.clear()

    def select_all(
        self,
        selector_name: str,
        metric: Metric,
        views: Dict[NodeId, LocalView],
        network=None,
    ) -> Dict[NodeId, SelectionResult]:
        """Current per-node results of one selector, re-running only dirty owners."""
        key = (selector_name, metric.cache_token())
        selector = make_selector(selector_name)
        previous = self._results.get(key)
        if previous is None:
            obs.add("selection.cache_cold_keys")
            results = selector.select_all(network, metric, views=views)
        else:
            obs.observe("selection.dirty_owners", len(self._dirty[key]))
            results = selector.select_all(
                network, metric, views=views, previous=previous, dirty=self._dirty[key]
            )
        self._results[key] = results
        self._dirty[key] = set()
        return results


def register_selector(name: str, factory: Callable[[], AnsSelector]) -> None:
    """Register a selector factory under ``name`` (last registration wins).

    Thin wrapper over the unified :data:`repro.registry.SELECTORS` registry, kept for
    backward compatibility; new code can register through the registry's decorator
    directly (see :mod:`repro.registry`).  The built-in selectors register themselves in
    their defining modules and are loaded lazily on first lookup.
    """
    SELECTORS.register(name, factory)


def available_selectors() -> list[str]:
    """Names of every registered selector."""
    return SELECTORS.names()


def make_selector(name: str) -> AnsSelector:
    """Instantiate the selector registered under ``name``."""
    return SELECTORS.create(name)
