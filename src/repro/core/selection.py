"""The neighbor-selection framework shared by FNBP and every baseline.

A *selector* consumes a node's :class:`~repro.localview.view.LocalView` and a
:class:`~repro.metrics.base.Metric` and produces the set of neighbors the node will advertise
in its TC messages (the paper's ANS / QANS, or the plain MPR set when the protocol does not
distinguish the two).  Selectors also emit a decision trace so that examples, tests and the
worked-figure walk-throughs can explain *why* each node was (not) selected.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.registry import SELECTORS
from repro.utils.ids import NodeId


@dataclass(frozen=True)
class SelectionDecision:
    """One step of a selector's reasoning, kept for explainability.

    Attributes
    ----------
    target:
        The one- or two-hop neighbor being covered (or ``None`` for global steps such as the
        RFC 3626 greedy rounds).
    chosen:
        The neighbor added to the advertised set at this step (``None`` when nothing was
        added).
    reason:
        A short machine-readable tag, e.g. ``"direct-link-optimal"`` or ``"loop-guard"``.
    detail:
        Optional extra payload (candidate sets, best values) for human-readable reports.
    """

    target: Optional[NodeId]
    chosen: Optional[NodeId]
    reason: str
    detail: Tuple[Tuple[str, object], ...] = ()

    def detail_dict(self) -> Dict[str, object]:
        """The ``detail`` payload as a dictionary."""
        return dict(self.detail)


@dataclass(frozen=True)
class SelectionResult:
    """The advertised neighbor set chosen by a selector for one node."""

    owner: NodeId
    selector_name: str
    metric_name: str
    selected: FrozenSet[NodeId]
    decisions: Tuple[SelectionDecision, ...] = ()

    def __len__(self) -> int:
        return len(self.selected)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.selected

    def explain(self) -> str:
        """A multi-line human-readable account of the selection (used by examples)."""
        lines = [
            f"{self.selector_name} selection at node {self.owner} "
            f"({self.metric_name}): {sorted(self.selected)}"
        ]
        for decision in self.decisions:
            target = "-" if decision.target is None else str(decision.target)
            chosen = "-" if decision.chosen is None else str(decision.chosen)
            lines.append(f"  target {target:>4}: {decision.reason:<28} chosen={chosen}")
        return "\n".join(lines)


class AnsSelector(ABC):
    """Interface of every advertised-neighbor-set selection algorithm."""

    #: Registry / display name of the algorithm.
    name: str = "abstract"

    @abstractmethod
    def select(self, view: LocalView, metric: Metric) -> SelectionResult:
        """Run the selection at ``view.owner`` for the given metric."""

    def select_all(
        self,
        network,
        metric: Metric,
        views: Optional[Dict[NodeId, LocalView]] = None,
    ) -> Dict[NodeId, SelectionResult]:
        """Run the selection at every node of a network (convenience for experiments).

        Views are built in one batched adjacency pass rather than node by node.  Callers
        that run several selectors (or several metrics) on the same network should build
        the batch once and pass it as ``views``: each view memoizes its per-metric compact
        graph and bottleneck forest, so sharing the views shares that work across runs
        (this is what the sweep harness does through :class:`repro.experiments.runner.Trial`).
        """
        if views is None:
            views = LocalView.all_from_network(network)
        return {node: self.select(view, metric) for node, view in views.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def register_selector(name: str, factory: Callable[[], AnsSelector]) -> None:
    """Register a selector factory under ``name`` (last registration wins).

    Thin wrapper over the unified :data:`repro.registry.SELECTORS` registry, kept for
    backward compatibility; new code can register through the registry's decorator
    directly (see :mod:`repro.registry`).  The built-in selectors register themselves in
    their defining modules and are loaded lazily on first lookup.
    """
    SELECTORS.register(name, factory)


def available_selectors() -> list[str]:
    """Names of every registered selector."""
    return SELECTORS.names()


def make_selector(name: str) -> AnsSelector:
    """Instantiate the selector registered under ``name``."""
    return SELECTORS.create(name)
