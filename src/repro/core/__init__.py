"""The paper's contribution: FNBP selection, plus the shared selection framework.

Selectors can also be obtained by registry name through :func:`make_selector` (e.g.
``make_selector("fnbp")`` or ``make_selector("qolsr-mpr2")``), which is how the experiment
harness refers to them; registration of the built-ins happens lazily on first lookup.
"""

from repro.core.fnbp import FnbpSelector, LoopGuardPolicy, covering_relays
from repro.core.selection import (
    AnsSelector,
    SelectionCache,
    SelectionDecision,
    SelectionResult,
    available_selectors,
    make_selector,
    register_selector,
)

__all__ = [
    "FnbpSelector",
    "LoopGuardPolicy",
    "covering_relays",
    "AnsSelector",
    "SelectionCache",
    "SelectionDecision",
    "SelectionResult",
    "register_selector",
    "available_selectors",
    "make_selector",
]
