"""Centralized optimal QoS routing -- the evaluation's reference point.

The paper measures every protocol's bandwidth/delay overhead against "the optimal centralized
QoS-weighted shortest path (Dijkstra algorithm)" computed on the *full* network graph.  For
the additive metrics this is the textbook Dijkstra; for the concave metrics it is the
widest-path variant; both are instances of the same label-setting loop, parameterized by the
:class:`~repro.metrics.base.Metric`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.metrics.base import Metric
from repro.topology.network import Network
from repro.utils.ids import NodeId


@dataclass(frozen=True)
class OptimalRoute:
    """A QoS-optimal path between two nodes, with its value under the metric."""

    source: NodeId
    destination: NodeId
    path: Tuple[NodeId, ...]
    value: float

    @property
    def reachable(self) -> bool:
        return len(self.path) > 0

    @property
    def hop_count(self) -> int:
        return max(0, len(self.path) - 1)


def best_path(
    graph: nx.Graph,
    source: NodeId,
    destination: NodeId,
    metric: Metric,
) -> OptimalRoute:
    """The QoS-optimal path between two nodes of ``graph`` (empty path when unreachable).

    Among equally good paths the one found first by the label-setting order is returned; the
    value, which is what the evaluation compares, is unique.
    """
    if source not in graph or destination not in graph:
        return OptimalRoute(source, destination, (), metric.worst)
    if source == destination:
        return OptimalRoute(source, destination, (source,), metric.identity)

    best_value: Dict[NodeId, float] = {}
    predecessor: Dict[NodeId, Optional[NodeId]] = {}
    counter = 0
    # Heap entries carry the node they were relaxed from; the predecessor is committed only
    # when the entry is popped and the node finalized, which keeps the reconstruction correct
    # for both metric families without any tentative-value bookkeeping.
    heap: List[Tuple[object, int, NodeId, float, Optional[NodeId]]] = [
        (metric.sort_key(metric.identity), counter, source, metric.identity, None)
    ]
    while heap:
        _, __, node, value, parent = heapq.heappop(heap)
        if node in best_value:
            continue
        best_value[node] = value
        predecessor[node] = parent
        if node == destination:
            break
        for neighbor in graph.neighbors(node):
            if neighbor in best_value:
                continue
            link_value = metric.link_value_from_attributes(graph.edges[node, neighbor])
            candidate = metric.combine(value, link_value)
            counter += 1
            heapq.heappush(heap, (metric.sort_key(candidate), counter, neighbor, candidate, node))

    if destination not in best_value:
        return OptimalRoute(source, destination, (), metric.worst)

    path: List[NodeId] = [destination]
    while predecessor[path[-1]] is not None:
        path.append(predecessor[path[-1]])
    path.reverse()
    return OptimalRoute(source, destination, tuple(path), best_value[destination])


def optimal_route(network: Network, source: NodeId, destination: NodeId, metric: Metric) -> OptimalRoute:
    """Centralized optimal route on a :class:`~repro.topology.network.Network`."""
    return best_path(network.graph, source, destination, metric)


def optimal_values_from(network: Network, source: NodeId, metric: Metric) -> Dict[NodeId, float]:
    """Optimal path value from ``source`` to every reachable node (for bulk evaluations)."""
    from repro.localview.paths import best_values_from

    return best_values_from(network.graph, source, metric)
