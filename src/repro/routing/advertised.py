"""From per-node advertised sets to the network-wide advertised topology.

In OLSR, every node periodically floods a TC message listing the nodes that selected it (its
advertised/MPR selectors); the union of those announcements is the partial topology every
node ends up knowing and computing routes on.  Announcing "s selected me" for every selector
s is equivalent, link-wise, to announcing the links ``(u, w)`` for every ``w ∈ ANS(u)``, which
is the form used here: :func:`build_advertised_topology` turns the per-node selection results
into a single undirected graph whose edges carry the true link weights (nodes measure their
own link QoS and include it in the announcements, as QOLSR does).

Routing then happens *on this graph* plus, at each forwarding node, that node's own one-hop
links (known from HELLOs even when nobody advertised them) -- see
:mod:`repro.routing.hop_by_hop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping

import networkx as nx

from repro.core.selection import AnsSelector, SelectionResult
from repro.metrics.base import Metric
from repro.topology.network import Network
from repro.utils.ids import NodeId


@dataclass
class AdvertisedTopology:
    """The network-wide link-state database induced by an ANS selection.

    Attributes
    ----------
    graph:
        Undirected graph whose edges are exactly the advertised links, carrying the same
        per-metric attributes as the underlying network.
    ans_sets:
        The per-node advertised sets the graph was built from.
    """

    graph: nx.Graph
    ans_sets: Dict[NodeId, FrozenSet[NodeId]] = field(default_factory=dict)

    def advertised_link_count(self) -> int:
        """Number of distinct links present in the advertised topology."""
        return self.graph.number_of_edges()

    def average_set_size(self) -> float:
        """Mean advertised-set size per node (the quantity of the paper's Figures 6 and 7)."""
        if not self.ans_sets:
            return 0.0
        return sum(len(selected) for selected in self.ans_sets.values()) / len(self.ans_sets)


def run_selection(network: Network, selector: AnsSelector, metric: Metric) -> Dict[NodeId, SelectionResult]:
    """Run ``selector`` at every node of ``network`` (each node sees only its local view).

    All views are built in one batched pass over the network adjacency (see
    :meth:`LocalView.all_from_network`) before the per-node selections run.
    """
    return selector.select_all(network, metric)


def build_advertised_topology(
    network: Network,
    selections: Mapping[NodeId, SelectionResult] | Mapping[NodeId, FrozenSet[NodeId]],
) -> AdvertisedTopology:
    """Assemble the advertised topology from per-node selections.

    ``selections`` maps each node either to a :class:`SelectionResult` or directly to the set
    of selected neighbors.  Links are added undirected: a link appears as soon as *either*
    endpoint advertises the other.
    """
    graph = nx.Graph()
    graph.add_nodes_from(network.nodes())
    ans_sets: Dict[NodeId, FrozenSet[NodeId]] = {}
    for node, selection in selections.items():
        selected = selection.selected if isinstance(selection, SelectionResult) else frozenset(selection)
        ans_sets[node] = frozenset(selected)
        for relay in selected:
            if not network.has_link(node, relay):
                raise ValueError(
                    f"node {node} advertised {relay} but no such link exists in the network"
                )
            graph.add_edge(node, relay, **network.link_attributes(node, relay))
    return AdvertisedTopology(graph=graph, ans_sets=ans_sets)


def advertise(
    network: Network,
    selector: AnsSelector,
    metric: Metric,
) -> AdvertisedTopology:
    """Convenience: run the selection everywhere and build the advertised topology."""
    return build_advertised_topology(network, run_selection(network, selector, metric))
