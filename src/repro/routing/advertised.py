"""From per-node advertised sets to the network-wide advertised topology.

In OLSR, every node periodically floods a TC message listing the nodes that selected it (its
advertised/MPR selectors); the union of those announcements is the partial topology every
node ends up knowing and computing routes on.  Announcing "s selected me" for every selector
s is equivalent, link-wise, to announcing the links ``(u, w)`` for every ``w ∈ ANS(u)``, which
is the form used here: :func:`build_advertised_topology` turns the per-node selection results
into a single undirected graph whose edges carry the true link weights (nodes measure their
own link QoS and include it in the announcements, as QOLSR does).

Routing then happens *on this graph* plus, at each forwarding node, that node's own one-hop
links (known from HELLOs even when nobody advertised them) -- see
:mod:`repro.routing.hop_by_hop`.

Two construction paths are provided.  :func:`build_advertised_topology` assembles an
independent graph from zero -- the right tool when the topology must outlive later builds
(tests, examples, one-off analyses).  :class:`AdvertisedTopologyBuilder` is the incremental
variant the sweeps use: it keeps ONE working graph per network and, for each successive
selection, diffs the newly advertised edge-set against the currently materialized one,
removing stale links and adding fresh ones instead of re-inserting every edge and
re-copying every attribute dictionary.  Selectors on one topology advertise heavily
overlapping link sets (they are all subsets of the same physical links, dominated by the
same well-placed relays), so the diff touches a small fraction of the edges a full rebuild
would.  The price is a liveness contract: every :class:`AdvertisedTopology` returned by one
builder wraps the *same* underlying graph, so only the most recently built selection is
valid at any time (exactly the access pattern of the overhead sweep, which finishes routing
over one selector's topology before asking for the next).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

import networkx as nx

from repro.core.selection import AnsSelector, SelectionResult
from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.topology.network import Network
from repro.utils.ids import NodeId


@dataclass
class AdvertisedTopology:
    """The network-wide link-state database induced by an ANS selection.

    Attributes
    ----------
    graph:
        Undirected graph whose edges are exactly the advertised links, carrying the same
        per-metric attributes as the underlying network.
    ans_sets:
        The per-node advertised sets the graph was built from.
    """

    graph: nx.Graph
    ans_sets: Dict[NodeId, FrozenSet[NodeId]] = field(default_factory=dict)
    #: Set on topologies handed out by an :class:`AdvertisedTopologyBuilder`: the builder
    #: and its generation counter at build time.  Independent topologies leave them unset.
    _builder: object = None
    _generation: int = 0

    def assert_live(self) -> None:
        """Raise if this topology came from a builder that has since been re-targeted.

        Builder-produced topologies share one working graph, so once a newer build exists
        this object's ``graph`` no longer matches its ``ans_sets``; consumers that route
        over the graph (the hop-by-hop router) call this to turn silent corruption into an
        error.  No-op for independently built topologies.
        """
        if self._builder is not None and self._builder._generation != self._generation:
            raise RuntimeError(
                "this AdvertisedTopology is stale: its builder has since materialized a "
                "different selection on the shared graph; request it again (or use "
                "build_advertised_topology for an independent graph)"
            )

    def advertised_link_count(self) -> int:
        """Number of distinct links present in the advertised topology."""
        return self.graph.number_of_edges()

    def average_set_size(self) -> float:
        """Mean advertised-set size per node (the quantity of the paper's Figures 6 and 7)."""
        if not self.ans_sets:
            return 0.0
        return sum(len(selected) for selected in self.ans_sets.values()) / len(self.ans_sets)


def run_selection(
    network: Network,
    selector: AnsSelector,
    metric: Metric,
    views: Optional[Dict[NodeId, LocalView]] = None,
    previous: Optional[Dict[NodeId, SelectionResult]] = None,
    dirty: Optional[Iterable[NodeId]] = None,
) -> Dict[NodeId, SelectionResult]:
    """Run ``selector`` at every node of ``network`` (each node sees only its local view).

    All views are built in one batched pass over the network adjacency (see
    :meth:`LocalView.all_from_network`) before the per-node selections run.  Pass ``views``
    to reuse an already-built batch across several selector/metric runs: the views' cached
    compact graphs and bottleneck forests then serve every run, instead of being rebuilt
    per selector.  Pass ``previous`` and ``dirty`` together to make the run incremental --
    owners outside ``dirty`` reuse their previous :class:`SelectionResult` instead of
    re-running the selector (see :meth:`AnsSelector.select_all` for the exact contract;
    dynamic trials drive this through :class:`~repro.core.selection.SelectionCache`).
    """
    return selector.select_all(network, metric, views=views, previous=previous, dirty=dirty)


def _ans_sets(
    selections: Mapping[NodeId, SelectionResult] | Mapping[NodeId, FrozenSet[NodeId]],
) -> Dict[NodeId, FrozenSet[NodeId]]:
    """Normalize per-node selections to plain frozen advertised sets."""
    return {
        node: (
            selection.selected
            if isinstance(selection, SelectionResult)
            else frozenset(selection)
        )
        for node, selection in selections.items()
    }


def _advertised_edges(network: Network, ans_sets: Mapping[NodeId, FrozenSet[NodeId]]):
    """The undirected edge keys induced by advertised sets, validated against the network.

    A link appears as soon as *either* endpoint advertises the other; keys are frozensets so
    both orientations collapse to one edge.
    """
    edges = set()
    for node, selected in ans_sets.items():
        for relay in selected:
            if not network.has_link(node, relay):
                raise ValueError(
                    f"node {node} advertised {relay} but no such link exists in the network"
                )
            edges.add(frozenset((node, relay)))
    return edges


def build_advertised_topology(
    network: Network,
    selections: Mapping[NodeId, SelectionResult] | Mapping[NodeId, FrozenSet[NodeId]],
) -> AdvertisedTopology:
    """Assemble an independent advertised topology from per-node selections.

    ``selections`` maps each node either to a :class:`SelectionResult` or directly to the set
    of selected neighbors.  Links are added undirected: a link appears as soon as *either*
    endpoint advertises the other.  Every call builds a fresh graph; sweeps that build one
    topology per selector on the same network should use
    :class:`AdvertisedTopologyBuilder` instead.
    """
    graph = nx.Graph()
    graph.add_nodes_from(network.nodes())
    ans_sets = _ans_sets(selections)
    for key in _advertised_edges(network, ans_sets):
        u, v = key
        graph.add_edge(u, v, **network.link_attributes(u, v))
    return AdvertisedTopology(graph=graph, ans_sets=ans_sets)


class AdvertisedTopologyBuilder:
    """Incrementally maintained advertised topology for one network.

    Keeps a single working graph (all network nodes, currently advertised links) together
    with the set of materialized edges.  :meth:`build` diffs the edge-set induced by a new
    selection against the materialized one and only removes/adds the difference -- the
    advertised sets of different selectors on one topology overlap heavily, so consecutive
    builds touch few edges.  The edge diff never changes routing results relative to a full
    rebuild: the advertised *edge set and attributes* are identical, and every consumer of
    the graph (the hop-by-hop router, the compact-graph solvers) is insensitive to edge
    insertion order.

    Liveness contract: all :class:`AdvertisedTopology` objects returned by one builder share
    the same underlying graph, so only the selection passed to the most recent
    :meth:`build` call is represented at any moment.  Callers that need several selections
    alive at once must use :func:`build_advertised_topology`.
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self._graph = nx.Graph()
        self._graph.add_nodes_from(network.nodes())
        self._edges: set = set()
        self._generation = 0

    def build(
        self,
        selections: Mapping[NodeId, SelectionResult] | Mapping[NodeId, FrozenSet[NodeId]],
    ) -> AdvertisedTopology:
        """Re-target the working graph to ``selections`` and return it as a topology.

        Each build bumps the builder's generation; topologies from earlier builds raise
        from :meth:`AdvertisedTopology.assert_live` instead of silently describing one
        selection while carrying another's edges.
        """
        ans_sets = _ans_sets(selections)
        edges = _advertised_edges(self._network, ans_sets)
        graph = self._graph
        for key in self._edges - edges:
            graph.remove_edge(*key)
        network = self._network
        for key in edges - self._edges:
            u, v = key
            graph.add_edge(u, v, **network.link_attributes(u, v))
        self._edges = edges
        self._generation += 1
        return AdvertisedTopology(
            graph=graph, ans_sets=ans_sets, _builder=self, _generation=self._generation
        )

    def refresh_attributes(self, edges) -> None:
        """Re-copy the network's current attributes of the given links into the working graph.

        The edge diff of :meth:`build` leaves persisted links' attribute copies untouched,
        which is correct while the network's weights are immutable (every static sweep) but
        stale once they change underneath -- a dynamic trial whose churn model re-measures
        a link that stays advertised.  Callers advancing a
        :class:`~repro.mobility.dynamic.DynamicTopology` pass each step's reweighted edges
        here (see ``_route_stability_trial``); links not currently materialized are
        ignored (they get fresh attributes whenever a build adds them).
        """
        graph = self._graph
        network = self._network
        for u, v in edges:
            if frozenset((u, v)) in self._edges:
                graph.edges[u, v].update(network.link_attributes(u, v))


def advertise(
    network: Network,
    selector: AnsSelector,
    metric: Metric,
) -> AdvertisedTopology:
    """Convenience: run the selection everywhere and build the advertised topology."""
    return build_advertised_topology(network, run_selection(network, selector, metric))
