"""Hop-by-hop forwarding over the advertised topology.

OLSR routing is hop-by-hop: each node keeps a routing table that maps every destination to a
next hop, computed from the node's own knowledge -- the advertised (TC-learned) topology plus
the node's own one-hop links.  The packet's actual trajectory is therefore the concatenation
of locally optimal decisions, which may differ from any single node's idea of the full path;
when the advertised sets are chosen badly this is exactly how the paper's Figure 4 loop and
unreachable destinations arise, so the router below detects loops and dead ends and reports
them rather than hiding them.

The QoS value "consumed" by a delivered packet (the paper's ``b`` and ``d``) is the value of
the traversed path computed on the *true* link weights of the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.localview.compactgraph import CompactGraph
from repro.localview.paths import best_values_from
from repro.metrics.base import Metric
from repro.metrics.ordering import preferred_neighbor
from repro.routing.advertised import AdvertisedTopology
from repro.topology.network import Network
from repro.utils.ids import NodeId


def hello_learned_edges(network: Network, source: NodeId):
    """The ``(neighbor, other, attributes)`` link triples ``source`` knows from HELLOs.

    RFC 3626's route calculation seeds the routing table with the one- and two-hop links
    learned from HELLO piggybacking -- every link incident to a one-hop neighbor of the
    source.  This single walk (in adjacency order) is the definition both consumers share:
    the router's default per-source walk and the per-trial cache
    (:meth:`repro.experiments.runner.Trial.link_state_edges`) that shares one walk across
    the routers of every selector.
    """
    adjacency = network.graph.adj
    for neighbor in adjacency[source]:
        for other, attributes in adjacency[neighbor].items():
            yield (neighbor, other, attributes)


@dataclass(frozen=True)
class RouteOutcome:
    """The result of forwarding one packet hop by hop.

    ``value`` is the QoS value of the traversed path on the true link weights (only
    meaningful when ``delivered``); ``failure`` holds ``"loop"``, ``"no-route"`` or
    ``"ttl-exceeded"`` otherwise.
    """

    source: NodeId
    destination: NodeId
    path: Tuple[NodeId, ...]
    delivered: bool
    value: float
    failure: Optional[str] = None

    @property
    def hop_count(self) -> int:
        return max(0, len(self.path) - 1)


class HopByHopRouter:
    """Forwards packets using per-node next-hop decisions over an advertised topology.

    The router assumes the advertised topology is fixed for its lifetime and caches derived
    structures accordingly (a compact flat snapshot for the per-hop solves, the most recent
    source's augmented link-state graph for :meth:`link_state_route`).  When the topology
    comes from an incremental source -- :meth:`repro.experiments.runner.Trial.advertised_topology`
    returns *live* graphs that are re-targeted when a different selector is requested --
    finish routing with one router before building the next selector's topology; routing
    over a re-targeted topology raises (see :meth:`AdvertisedTopology.assert_live`) rather
    than silently mixing selections.
    """

    def __init__(
        self,
        network: Network,
        advertised: AdvertisedTopology,
        metric: Metric,
        local_edges: Optional[Callable[[NodeId], Sequence[Tuple]]] = None,
    ):
        """``local_edges`` optionally supplies a source's HELLO-learned link triples
        ``(neighbor, other, attributes)``; they depend only on the physical network, so a
        caller comparing several advertised topologies on one network (the overhead sweep)
        shares one per-source walk across all of its routers via
        :meth:`repro.experiments.runner.Trial.link_state_edges` instead of the router
        re-walking the adjacency per source (:meth:`_default_local_edges`, which is the
        same code path the cache precomputes).  Injected triples must match the default
        walk's enumeration (every link incident to a one-hop neighbor of the source, in
        adjacency order), keeping results bit-identical either way."""
        self.network = network
        self.advertised = advertised
        self.metric = metric
        self.local_edges = local_edges if local_edges is not None else self._default_local_edges
        self._advertised_compact: Optional[CompactGraph] = None
        self._advertised_compact_failed = False
        self._knowledge_source: Optional[NodeId] = None
        self._knowledge_graph: Optional[nx.Graph] = None

    def _default_local_edges(self, source: NodeId):
        """The source's HELLO-learned link triples, walked from the network adjacency."""
        return hello_learned_edges(self.network, source)

    def _advertised_compact_graph(self) -> Optional[CompactGraph]:
        """One flat snapshot of the advertised topology, shared by every next-hop solve.

        The advertised graph is fixed for the router's lifetime, so the per-hop
        ``best_values_from`` calls can all reuse it (excluded nodes are handled at solver
        level).  None when some advertised edge lacks the metric's attribute; the callers
        then pass the networkx graph and keep the lazy traversal semantics.
        """
        if self._advertised_compact is None and not self._advertised_compact_failed:
            self._advertised_compact = CompactGraph.try_from_networkx(
                self.advertised.graph, self.metric
            )
            self._advertised_compact_failed = self._advertised_compact is None
        return self._advertised_compact

    # ------------------------------------------------------------------ next-hop decision

    def next_hop(self, current: NodeId, destination: NodeId) -> Optional[NodeId]:
        """The neighbor ``current`` forwards to for ``destination`` (None when it has no route).

        The decision uses ``current``'s knowledge: the advertised topology (minus ``current``
        itself, since the remainder of the path will not revisit it) plus ``current``'s own
        one-hop links.  Among the first hops achieving the optimal QoS value, the shorter
        path (in hops over the advertised topology) is preferred, then the better direct
        link, then the smaller identifier.  The hop tie-break matters in practice: bottleneck
        metrics produce many equally wide next hops, and preferring hop progress is what
        keeps independent per-node decisions from bouncing a packet back and forth (QOLSR's
        own route computation also keeps hop-shortest among the QoS-optimal routes).
        """
        metric = self.metric
        if destination == current:
            return None
        self.advertised.assert_live()
        own_neighbors = self.network.neighbors(current)
        if destination in own_neighbors and not self.advertised.graph.has_node(destination):
            return destination

        # Best value and hop distance from the destination to every node over the advertised
        # links, never passing through ``current`` (the rest of the path cannot revisit it).
        if self.advertised.graph.has_node(destination):
            compact = self._advertised_compact_graph()
            from_destination = best_values_from(
                compact if compact is not None else self.advertised.graph,
                destination,
                metric,
                excluded=(current,),
            )
            hops_from_destination = self._hop_distances(destination, excluded=current)
        else:
            from_destination = {}
            hops_from_destination = {}

        candidates: Dict[NodeId, Tuple[float, float]] = {}
        for neighbor in own_neighbors:
            link_value = self.network.link_value(current, neighbor, metric)
            start = metric.combine(metric.identity, link_value)
            if neighbor == destination:
                candidates[neighbor] = (start, 1.0)
                continue
            remainder = from_destination.get(neighbor)
            if remainder is None:
                continue
            hop_estimate = 1.0 + hops_from_destination.get(neighbor, float("inf"))
            candidates[neighbor] = (metric.combine(start, remainder), hop_estimate)

        if not candidates:
            return None
        best_value = metric.optimum(value for value, _ in candidates.values())
        if not metric.is_usable(best_value):
            return None
        best_candidates = {
            neighbor: hops
            for neighbor, (value, hops) in candidates.items()
            if metric.values_equal(value, best_value)
        }
        fewest_hops = min(best_candidates.values())
        shortlist = [
            neighbor for neighbor, hops in best_candidates.items() if hops == fewest_hops
        ]
        return preferred_neighbor(
            shortlist,
            metric,
            lambda neighbor: self.network.link_value(current, neighbor, metric),
        )

    def _hop_distances(self, destination: NodeId, excluded: NodeId) -> Dict[NodeId, float]:
        """BFS hop distances from ``destination`` over the advertised topology minus a node."""
        graph = self.advertised.graph
        distances: Dict[NodeId, float] = {destination: 0.0}
        frontier = [destination]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in graph.neighbors(node):
                    if neighbor == excluded or neighbor in distances:
                        continue
                    distances[neighbor] = distances[node] + 1.0
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    # ------------------------------------------------------------------ link-state routing

    def link_state_route(self, source: NodeId, destination: NodeId) -> RouteOutcome:
        """The QoS-optimal route over the source's link-state database.

        In OLSR every node computes its routing table on the TC-learned topology plus the
        HELLO-learned neighborhood: RFC 3626's route calculation first adds routes to the
        one- and two-hop neighbors from the neighbor tables, then extends them over the
        advertised topology.  This method models exactly that: one QoS-weighted
        shortest/widest-path computation over the advertised topology augmented with the
        source's local view ``G_source`` (every link incident to one of its one-hop
        neighbors, known from HELLO piggybacking).  It is what the overhead experiments
        (the paper's Figures 8 and 9) use, and unlike per-hop recomputation it cannot loop:
        bottleneck metrics tie so often that independently recomputed per-hop decisions
        (see :meth:`route`) may bounce a packet between equally wide detours, something a
        real implementation avoids precisely because all nodes share the same link-state
        database.

        Including the HELLO-learned two-hop links (not only the source's own links) is what
        guarantees that every destination within two hops stays reachable even when its
        incident links go unadvertised -- both endpoints of a link consider each other
        covered by the optimal direct link, so neither selects (and hence advertises) the
        other; the regression test for that situation lives in
        ``tests/test_fnbp_loop_guard.py``.
        """
        from repro.routing.optimal import best_path

        if source not in self.network or destination not in self.network:
            raise KeyError("source and destination must belong to the network")
        if source == destination:
            return RouteOutcome(source, destination, (source,), True, self.metric.identity)
        self.advertised.assert_live()

        # The source's link-state database (advertised topology + its local view) is fixed
        # for the router's lifetime, so routing several destinations from one source in a
        # row reuses the same augmented graph instead of re-copying the advertised
        # topology per pair.  Only the most recent source's graph is kept: sweeps draw
        # sources randomly (little reuse, so retaining more would be pure memory cost)
        # while table-style consumers route all destinations of one source consecutively.
        if self._knowledge_source == source and self._knowledge_graph is not None:
            knowledge = self._knowledge_graph
        else:
            knowledge = self.advertised.graph.copy()
            knowledge.add_node(source)
            for neighbor, other, attributes in self.local_edges(source):
                knowledge.add_edge(neighbor, other, **attributes)
            self._knowledge_source = source
            self._knowledge_graph = knowledge

        route = best_path(knowledge, source, destination, self.metric)
        if not route.reachable or not self.metric.is_usable(route.value):
            return RouteOutcome(
                source, destination, (source,), False, self.metric.worst, "no-route"
            )
        return RouteOutcome(
            source,
            destination,
            route.path,
            True,
            self._path_value(list(route.path)),
        )

    # ------------------------------------------------------------------ packet forwarding

    def route(self, source: NodeId, destination: NodeId, max_hops: Optional[int] = None) -> RouteOutcome:
        """Forward a packet from ``source`` to ``destination`` and report the outcome."""
        if source not in self.network or destination not in self.network:
            raise KeyError("source and destination must belong to the network")
        if max_hops is None:
            max_hops = max(2 * len(self.network), 16)
        if source == destination:
            return RouteOutcome(source, destination, (source,), True, self.metric.identity)

        path: List[NodeId] = [source]
        visited = {source}
        current = source
        while len(path) - 1 < max_hops:
            hop = self.next_hop(current, destination)
            if hop is None:
                return RouteOutcome(source, destination, tuple(path), False, self.metric.worst, "no-route")
            path.append(hop)
            if hop == destination:
                return RouteOutcome(
                    source, destination, tuple(path), True, self._path_value(path)
                )
            if hop in visited:
                return RouteOutcome(source, destination, tuple(path), False, self.metric.worst, "loop")
            visited.add(hop)
            current = hop
        return RouteOutcome(source, destination, tuple(path), False, self.metric.worst, "ttl-exceeded")

    def routing_table(self, node: NodeId) -> Dict[NodeId, NodeId]:
        """The full next-hop table of ``node`` for every other node of the network."""
        table: Dict[NodeId, NodeId] = {}
        for destination in self.network.nodes():
            if destination == node:
                continue
            hop = self.next_hop(node, destination)
            if hop is not None:
                table[destination] = hop
        return table

    # ------------------------------------------------------------------ helpers

    def _path_value(self, path: List[NodeId]) -> float:
        value = self.metric.identity
        for u, v in zip(path, path[1:]):
            value = self.metric.combine(value, self.network.link_value(u, v, self.metric))
        return value
