"""Routing over advertised topologies, plus the centralized optimal reference."""

from repro.routing.advertised import (
    AdvertisedTopology,
    advertise,
    build_advertised_topology,
    run_selection,
)
from repro.routing.hop_by_hop import HopByHopRouter, RouteOutcome
from repro.routing.optimal import OptimalRoute, best_path, optimal_route, optimal_values_from

__all__ = [
    "AdvertisedTopology",
    "advertise",
    "build_advertised_topology",
    "run_selection",
    "HopByHopRouter",
    "RouteOutcome",
    "OptimalRoute",
    "best_path",
    "optimal_route",
    "optimal_values_from",
]
