"""The paper's Figure 4: the "limiting last link" loop and the identifier-based guard.

The scenario: the only access to node ``E`` is the weak link ``(D, E)``.  Looking only at
first-nodes-of-best-paths, node ``B`` relies on ``A`` to reach ``E`` (``A`` is on a best path
and is selected anyway, to cover ``D``), while node ``A`` relies on ``B`` for the same reason
-- each defers to the other, nobody advertises ``D``, and packets for ``E`` bounce between
``A`` and ``B``.  The fix: when a node's identifier is smaller than that of every node in
``fP(u, v)``, it must itself select a relay adjacent to ``v`` -- here ``A`` (the smallest id)
has to select ``D``.

The reconstruction below produces exactly that behaviour with this library's FNBP
implementation:

* with the loop guard disabled, ``covering_relays`` gives ``A → B`` and ``B → A`` for
  destination ``E`` (the mutual deferral of the paper), and ``D`` is selected by neither;
* with the default guard, ``A`` additionally selects ``D``, and the relay chain
  ``A → D → E`` terminates.
"""

from __future__ import annotations

from repro.topology.network import Network

#: Node identifiers (alphabetical order = identifier order, as in the paper's argument).
A, B, C, D, E = 1, 2, 3, 4, 5

#: Bandwidth of every link of the reconstructed Figure 4 topology.
FIGURE4_BANDWIDTH = {
    (A, B): 4.0,
    (A, D): 3.0,
    (B, D): 1.0,
    (B, C): 2.0,
    (D, E): 1.0,   # the limiting last link
}


def figure4_network() -> Network:
    """The reconstructed Figure 4 network (bandwidth weights only)."""
    network = Network()
    positions = {
        A: (0.0, 50.0),
        B: (50.0, 50.0),
        C: (100.0, 50.0),
        D: (25.0, 0.0),
        E: (25.0, -50.0),
    }
    for node, position in positions.items():
        network.add_node(node, position)
    for (u, v), bandwidth in FIGURE4_BANDWIDTH.items():
        network.add_link(u, v, bandwidth=bandwidth)
    return network
