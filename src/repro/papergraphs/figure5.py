"""The paper's Figure 5: MPR set vs topology-filtering ANS vs FNBP ANS on one neighborhood.

Figure 5 shows, for one node ``u`` and one bandwidth-weighted neighborhood, (a) the RFC 3626
MPR set, (b) the set advertised by the topology-filtering approach of [7] and (c) the set
FNBP selects -- illustrating that FNBP advertises the fewest neighbors while still covering
every one- and two-hop neighbor through QoS-good paths.

As with the other figures the printed weights are not fully recoverable, so this module
provides a representative neighborhood with the same qualitative outcome (|FNBP ANS| ≤
|topology-filtering ANS| ≤ |MPR| is asserted by the tests) and a helper returning all three
selections side by side for the walk-through example.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.olsr_mpr import OlsrMprSelector
from repro.baselines.topology_filtering import TopologyFilteringSelector
from repro.core.fnbp import FnbpSelector
from repro.core.selection import SelectionResult
from repro.localview.view import LocalView
from repro.metrics import BandwidthMetric
from repro.topology.network import Network

#: The central node of the example.
FIGURE5_OWNER = 10

#: Bandwidth of every link of the reconstructed Figure 5 neighborhood.
#:
#: The construction exercises every contrast the figure illustrates: a weak direct link
#: (10, 4) that both QoS-aware selections re-route around, two-hop fringe nodes (5, 6, 7)
#: reachable through *several* equally good relays -- which topology filtering advertises in
#: full while FNBP covers through already-selected neighbors -- and a fringe node (8) that
#: FNBP covers through a longer multi-hop path, which the two-hop-limited filtering baseline
#: cannot do (it must advertise relay 4 instead).
FIGURE5_BANDWIDTH = {
    # direct links of the owner
    (10, 1): 4.0,
    (10, 2): 4.0,
    (10, 3): 4.0,
    (10, 4): 2.0,
    # links among the one-hop ring
    (3, 4): 4.0,
    # links towards the two-hop fringe
    (1, 5): 4.0,
    (2, 5): 4.0,
    (2, 6): 4.0,
    (3, 6): 4.0,
    (3, 7): 4.0,
    (4, 7): 4.0,
    (4, 8): 3.0,
}


def figure5_network() -> Network:
    """The reconstructed Figure 5 neighborhood (bandwidth weights only)."""
    network = Network()
    positions = {
        10: (50.0, 50.0),
        1: (10.0, 70.0),
        2: (20.0, 20.0),
        3: (80.0, 20.0),
        4: (90.0, 70.0),
        5: (-20.0, 40.0),
        6: (50.0, -20.0),
        7: (120.0, 30.0),
        8: (130.0, 90.0),
    }
    for node, position in positions.items():
        network.add_node(node, position)
    for (u, v), bandwidth in FIGURE5_BANDWIDTH.items():
        network.add_link(u, v, bandwidth=bandwidth)
    return network


def figure5_selections() -> Dict[str, SelectionResult]:
    """The three subset selections of Figure 5 at the central node, keyed by selector name."""
    network = figure5_network()
    metric = BandwidthMetric()
    view = LocalView.from_network(network, FIGURE5_OWNER)
    selectors = (OlsrMprSelector(), TopologyFilteringSelector(), FnbpSelector())
    return {selector.name: selector.select(view, metric) for selector in selectors}
