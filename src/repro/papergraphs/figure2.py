"""The paper's Figure 2: the running example of FNBP's selection around node ``u``.

The text makes the following statements about this topology (bandwidth metric), all of which
the reconstruction below satisfies and the tests assert:

* ``PBW(u, v3) = {u v2 v3, u v1 v3}`` with value ``B̃W(u, v3) = 4`` and therefore
  ``fP_BW(u, v3) = {v1, v2}``;
* ``BW(u, v1) = BW(u, v2)`` and ``v1`` is preferred over ``v2`` because of its smaller id;
* ``BW(u, v5) < BW(u, v1)``;
* to reach its one-hop neighbor ``v4`` (direct bandwidth 3), ``u`` should use the three-hop
  path ``u v1 v5 v4`` of bandwidth 5;
* ``u`` selects no extra ANS for ``v7`` because the direct link is already the best path;
* once ``v1`` is in the ANS, reaching ``v5`` and ``v10`` needs no further selection;
* ``u`` does not know the link ``(v8, v9)`` (both endpoints are two-hop neighbors), so the
  best path it can find to ``v9`` has bandwidth 3 (via ``v7``) although a bandwidth-5 path
  ``u v6 v8 v9`` exists globally;
* for ``v11`` the advertised relay ends up being ``v6`` rather than ``v2`` because the link
  ``(u, v6)`` has the better bandwidth;
* the resulting ANS is small: ``{v1, v6, v7}``.

The owner ``u`` is given the identifier 12 (larger than its neighbors'), matching the figure
in which ``u`` is an unnumbered extra node; this keeps the loop guard (which fires only when
the owner has the *smallest* id) out of the way, as in the paper's narrative.
"""

from __future__ import annotations

from repro.topology.network import Network

V = {index: index for index in range(1, 12)}
#: The owner node of the example (the paper's ``u``).
FIGURE2_OWNER = 12

#: Bandwidth of every link of the reconstructed Figure 2 topology.
FIGURE2_BANDWIDTH = {
    (FIGURE2_OWNER, 1): 5.0,
    (FIGURE2_OWNER, 2): 5.0,
    (FIGURE2_OWNER, 4): 3.0,
    (FIGURE2_OWNER, 5): 1.0,
    (FIGURE2_OWNER, 6): 6.0,
    (FIGURE2_OWNER, 7): 3.0,
    (1, 3): 4.0,
    (2, 3): 4.0,
    (1, 5): 5.0,
    (5, 4): 5.0,
    (5, 10): 5.0,
    (6, 8): 5.0,
    (8, 9): 5.0,   # invisible from u: both endpoints are two-hop neighbors
    (7, 9): 3.0,
    (2, 11): 2.0,
    (6, 11): 2.0,
}


def figure2_network() -> Network:
    """The reconstructed Figure 2 network (bandwidth weights only)."""
    network = Network()
    positions = {
        FIGURE2_OWNER: (50.0, 50.0),
        1: (20.0, 70.0),
        2: (20.0, 30.0),
        3: (0.0, 50.0),
        4: (80.0, 90.0),
        5: (50.0, 90.0),
        6: (80.0, 30.0),
        7: (80.0, 60.0),
        8: (110.0, 30.0),
        9: (110.0, 60.0),
        10: (20.0, 110.0),
        11: (60.0, 0.0),
    }
    for node, position in positions.items():
        network.add_node(node, position)
    for (u, v), bandwidth in FIGURE2_BANDWIDTH.items():
        network.add_link(u, v, bandwidth=bandwidth)
    return network
