"""The paper's Figure 1: QOLSR can miss the widest path.

The figure shows six nodes ``v1..v6`` with bandwidth-weighted links and makes two claims:

* the path ``v1 v2 v3`` used by QOLSR to route from ``v1`` to ``v3`` has bandwidth 6;
* the widest ``v1 → v3`` path is ``v1 v6 v5 v4 v3`` with bandwidth 10, and QOLSR never uses
  it because its heuristics only ever consider alternatives of at most two hops.

The published figure does not label every link legibly, so this module reconstructs a
topology with exactly those two properties: a two-hop "shortcut" of bottleneck 6 through
``v2`` and a four-hop chain of bandwidth 10 through ``v6, v5, v4``.  The accompanying tests
check the claims directly (best two-hop-constrained bandwidth = 6, unconstrained widest path
= 10 along the stated node sequence) and that FNBP's advertised topology preserves the wide
path while a two-hop-constrained selection cannot.
"""

from __future__ import annotations

from repro.topology.network import Network

#: Node identifiers; ``v1`` is 1, ..., ``v6`` is 6.
V1, V2, V3, V4, V5, V6 = 1, 2, 3, 4, 5, 6

#: Bandwidth of every link of the reconstructed Figure 1 topology.
FIGURE1_BANDWIDTH = {
    (V1, V2): 7.0,
    (V2, V3): 6.0,
    (V1, V6): 10.0,
    (V6, V5): 10.0,
    (V5, V4): 10.0,
    (V4, V3): 10.0,
    (V2, V6): 1.0,
    (V2, V4): 3.0,
}


def figure1_network() -> Network:
    """The reconstructed Figure 1 network (bandwidth weights only)."""
    network = Network()
    positions = {
        V1: (0.0, 50.0),
        V2: (50.0, 50.0),
        V3: (100.0, 50.0),
        V4: (100.0, 0.0),
        V5: (50.0, 0.0),
        V6: (0.0, 0.0),
    }
    for node, position in positions.items():
        network.add_node(node, position)
    for (u, v), bandwidth in FIGURE1_BANDWIDTH.items():
        network.add_link(u, v, bandwidth=bandwidth)
    return network


def best_two_hop_bandwidth(network: Network, source: int, destination: int) -> float:
    """Best bandwidth achievable from ``source`` to ``destination`` in at most two hops.

    This is the constraint QOLSR's MPR-based selection effectively imposes (the paper's
    critique of [1]): only the direct link and the two-hop detours are ever candidates.
    """
    from repro.metrics import BandwidthMetric

    metric = BandwidthMetric()
    best = metric.worst
    if network.has_link(source, destination):
        best = metric.better_of(best, network.link_value(source, destination, metric))
    for relay in network.neighbors(source):
        if relay == destination or not network.has_link(relay, destination):
            continue
        value = min(
            network.link_value(source, relay, metric),
            network.link_value(relay, destination, metric),
        )
        best = metric.better_of(best, value)
    return best
