"""The paper's worked-example topologies (Figures 1, 2, 4 and 5).

The published figures give node layouts and link weights graphically and only part of that
information survives in the text, so these modules *reconstruct* each example: a topology
with explicit weights that satisfies every statement the paper makes about the figure (the
path values, the first-hop sets, which nodes get selected and why).  Each module's docstring
lists the statements it reproduces; the test-suite's ``test_paper_figures.py`` asserts them.
"""

from repro.papergraphs.figure1 import figure1_network
from repro.papergraphs.figure2 import FIGURE2_OWNER, figure2_network
from repro.papergraphs.figure4 import figure4_network
from repro.papergraphs.figure5 import figure5_network, figure5_selections

__all__ = [
    "figure1_network",
    "figure2_network",
    "FIGURE2_OWNER",
    "figure4_network",
    "figure5_network",
    "figure5_selections",
]
