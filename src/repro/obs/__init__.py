"""Telemetry subsystem: deterministic counters, timing spans, run introspection.

Two layers:

* :mod:`repro.obs.registry` -- :class:`MetricsRegistry` (counters, gauges, histograms,
  spans) with the hard deterministic-vs-wall-clock split, plus the
  :class:`TrialTelemetry` envelope workers ship their snapshots back in.
* :mod:`repro.obs.runtime` -- the ambient per-process current registry the
  instrumentation sites record through; every helper is a near-free no-op while
  telemetry is off (the default).

Enable per sweep with ``run_experiment(..., metrics=True)``, ``repro-sweep --metrics``
or ``REPRO_METRICS=1``; snapshots stream to sinks as ``on_metrics`` events.  Contracts
in ``docs/observability.md``.
"""

from repro.obs.registry import (
    MetricsRegistry,
    TrialTelemetry,
    deterministic_sections,
    merge_trial,
    unwrap_payload,
)
from repro.obs.runtime import add, current, enabled, gauge, install, observe, resolve_metrics, span

__all__ = [
    "MetricsRegistry",
    "TrialTelemetry",
    "deterministic_sections",
    "merge_trial",
    "unwrap_payload",
    "add",
    "current",
    "enabled",
    "gauge",
    "install",
    "observe",
    "resolve_metrics",
    "span",
]
