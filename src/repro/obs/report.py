"""Human-readable and machine-diffable renderings of telemetry snapshots.

:func:`render_metrics_summary` is the end-of-run table the text sink (and ``repro-sweep``
with ``--metrics``) appends below the result report; :func:`build_profile` shapes a
snapshot's span histograms into the JSON document ``--profile-trials`` writes, using the
same ``mean``/``min``/``max`` seconds-per-phase vocabulary as the timing entries of
``BENCH_selection.json`` so profiles and benchmark trajectories diff side by side.
"""

from __future__ import annotations

from typing import List


def _format_value(value: float) -> str:
    """Counters print as integers, everything else as short floats."""
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def render_metrics_summary(snapshot: dict) -> str:
    """The end-of-run telemetry summary as a fixed-width text table."""
    lines: List[str] = ["telemetry summary", "-----------------"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    spans = snapshot.get("spans", {})
    scalar_rows = [(name, _format_value(value)) for name, value in sorted(counters.items())]
    scalar_rows += [(name, _format_value(value)) for name, value in sorted(gauges.items())]
    if scalar_rows:
        width = max(len(name) for name, _ in scalar_rows)
        lines.append("counters/gauges (deterministic):")
        for name, rendered in scalar_rows:
            lines.append(f"  {name.ljust(width)}  {rendered}")
    if histograms:
        width = max(len(name) for name in histograms)
        lines.append("histograms (deterministic; count/mean/min/max):")
        for name, stats in sorted(histograms.items()):
            mean = stats["total"] / stats["count"] if stats["count"] else 0.0
            lines.append(
                f"  {name.ljust(width)}  n={int(stats['count'])} mean={mean:.6g} "
                f"min={_format_value(stats['min'])} max={_format_value(stats['max'])}"
            )
    if spans:
        width = max(len(name) for name in spans)
        lines.append("spans (wall-clock seconds; count/total/mean/max):")
        for name, stats in sorted(spans.items()):
            mean = stats.get("mean", stats["total"] / stats["count"] if stats["count"] else 0.0)
            lines.append(
                f"  {name.ljust(width)}  n={int(stats['count'])} total={stats['total']:.4f} "
                f"mean={mean:.6f} max={stats['max']:.6f}"
            )
    if len(lines) == 2:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)


def build_profile(spec, snapshot: dict) -> dict:
    """The ``--profile-trials`` report: per-phase span histograms, BENCH-diffable.

    Span entries use the same seconds vocabulary as ``BENCH_selection.json`` timing
    entries (``mean``/``min``/``max`` plus ``total`` and ``count``); the deterministic
    counters ride along for context.
    """
    spans = {}
    for name, stats in sorted(snapshot.get("spans", {}).items()):
        count = int(stats["count"])
        spans[name] = {
            "count": count,
            "total": stats["total"],
            "mean": stats["total"] / count if count else 0.0,
            "min": stats["min"],
            "max": stats["max"],
        }
    return {
        "experiment_id": spec.experiment_id,
        "spans": spans,
        "counters": dict(snapshot.get("counters", {})),
        "histograms": dict(snapshot.get("histograms", {})),
    }
