"""Ambient telemetry plumbing: a process-wide current registry, off by default.

Instrumentation sites throughout the harness (selection cache, batched kernels, mobility
driver, protocol simulator, runner supervisor) record through the module-level helpers
here -- :func:`add`, :func:`gauge`, :func:`observe`, :func:`span` -- instead of threading
a registry object through every call signature.  When no registry is installed (the
default) every helper is a near-free no-op: one module-global load and an ``is None``
test, which is what keeps the telemetry-off engine path within its <=2% overhead budget
(floor-guarded by ``benchmarks/test_bench_metrics_overhead.py``).

The installed registry is per-process state, which matches the harness's cache
architecture (caches are per-worker by construction): the engine installs the *run*
registry in the parent process for the duration of a sweep, and
:func:`repro.experiments.runner._execute_trial` installs a fresh *trial* registry around
each trial's execution -- in whichever process the trial runs -- then ships its snapshot
back with the result.  ``install`` returns the previously installed registry so nesting
restores cleanly (serial sweeps nest the trial registry inside the run registry).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.registry import MetricsRegistry

_REGISTRY: Optional[MetricsRegistry] = None

_ENV_TRUE = frozenset(("1", "true", "yes", "on"))
_ENV_FALSE = frozenset(("", "0", "false", "no", "off"))


class _NullSpan:
    """The shared do-nothing context manager handed out while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


def current() -> Optional[MetricsRegistry]:
    """The currently installed registry (``None`` while telemetry is off)."""
    return _REGISTRY


def enabled() -> bool:
    """Whether a registry is installed in this process."""
    return _REGISTRY is not None


def install(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` as this process's current one; returns the previous.

    Callers restore the previous registry in a ``finally`` (see ``_execute_trial``), so
    a raising trial cannot leave its private registry installed.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def add(name: str, value: int = 1) -> None:
    """Increment a counter on the current registry (no-op while telemetry is off)."""
    registry = _REGISTRY
    if registry is not None:
        registry.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the current registry (no-op while telemetry is off)."""
    registry = _REGISTRY
    if registry is not None:
        registry.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Fold a histogram observation on the current registry (no-op while off)."""
    registry = _REGISTRY
    if registry is not None:
        registry.observe(name, value)


def span(name: str):
    """A timing span on the current registry (a shared null context while off)."""
    registry = _REGISTRY
    if registry is None:
        return _NULL_SPAN
    return registry.span(name)


def resolve_metrics(metrics: Optional[bool] = None) -> bool:
    """Whether telemetry is enabled for a sweep.

    ``metrics=None`` (the engine default) falls back to the ``REPRO_METRICS``
    environment variable: unset/empty/``0``/``false``/``no``/``off`` means off,
    ``1``/``true``/``yes``/``on`` means on, anything else is a configuration mistake
    rejected with an error naming the variable.
    """
    if metrics is not None:
        return bool(metrics)
    raw = os.environ.get("REPRO_METRICS", "").strip().lower()
    if raw in _ENV_FALSE:
        return False
    if raw in _ENV_TRUE:
        return True
    raise ValueError(
        f"REPRO_METRICS must be a boolean flag (1/true/yes/on or 0/false/no/off), got {raw!r}"
    )
