"""The telemetry registry: counters, gauges, histograms and timing spans.

One :class:`MetricsRegistry` holds everything a run (or a single trial) records, split
into two hard groups with different guarantees:

* **Deterministic metrics** -- ``counters`` (integer event counts: cache hits, kernel
  dispatches, retries, protocol transmissions, ...), ``gauges`` (last-written values) and
  ``histograms`` (value distributions folded as count/total/min/max, e.g. dirty-set
  sizes).  These are pure functions of the sweep's inputs: a parallel sweep merges each
  worker's per-trial registry back **in run order** (the same order a serial sweep folds
  them in), so the deterministic sections of every emitted snapshot are bit-identical
  serial vs ``REPRO_WORKERS=N``.  The serial-vs-parallel identity is pinned by
  ``tests/test_observability.py``.
* **Wall-clock measurements** -- ``spans`` (per-phase duration histograms recorded by the
  :meth:`MetricsRegistry.span` context manager).  Useful for profiling, meaningless to
  compare byte-for-byte; they are reported in snapshots but explicitly excluded from the
  determinism contract (see ``docs/observability.md``).

Registries are cheap plain-dict state -- a worker process snapshots its per-trial
registry to a JSON-able dict, ships it back with the trial payload, and the engine folds
it into the run registry with :meth:`MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


def _fold_stats(bucket: Dict[str, Dict[str, float]], name: str, value: float) -> None:
    """Fold one observation into a count/total/min/max stats dict (in place)."""
    stats = bucket.get(name)
    if stats is None:
        bucket[name] = {"count": 1, "total": value, "min": value, "max": value}
        return
    stats["count"] += 1
    stats["total"] += value
    if value < stats["min"]:
        stats["min"] = value
    if value > stats["max"]:
        stats["max"] = value


def _merge_stats(bucket: Dict[str, Dict[str, float]], name: str, other: Dict[str, float]) -> None:
    """Fold a whole count/total/min/max stats dict into ``bucket[name]`` (in place)."""
    stats = bucket.get(name)
    if stats is None:
        bucket[name] = dict(other)
        return
    stats["count"] += other["count"]
    stats["total"] += other["total"]
    if other["min"] < stats["min"]:
        stats["min"] = other["min"]
    if other["max"] > stats["max"]:
        stats["max"] = other["max"]


class _Span:
    """Context manager timing one phase; exception-safe (the duration is recorded and the
    nesting stack popped in ``finally``, so a raising trial cannot leak an open span)."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        self._registry._active.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        registry = self._registry
        try:
            _fold_stats(registry.spans, self._name, elapsed)
        finally:
            registry._active.pop()


class MetricsRegistry:
    """Counters, gauges, histograms and spans of one run (or one trial).

    The deterministic sections (``counters``, ``gauges``, ``histograms``) aggregate
    bit-identically serial vs parallel because merging is commutative-per-key and the
    engine merges trial snapshots in run order; ``spans`` are wall-clock and excluded
    from that contract.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}
        self.spans: Dict[str, Dict[str, float]] = {}
        self._active: List[str] = []

    # ------------------------------------------------------------- recording

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (deterministic)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (last write wins; deterministic when the writes are)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the histogram ``name`` (deterministic)."""
        _fold_stats(self.histograms, name, value)

    def span(self, name: str) -> _Span:
        """Time a phase: ``with registry.span("selection"): ...`` (wall-clock)."""
        return _Span(self, name)

    def active_spans(self) -> List[str]:
        """The currently open span names, outermost first (empty between phases)."""
        return list(self._active)

    # ------------------------------------------------------------- aggregation

    def snapshot(self) -> dict:
        """The registry as a JSON-able dict, deterministic sections key-sorted.

        ``counters``/``gauges``/``histograms`` are the deterministic sections;
        ``spans`` is wall-clock (every stats dict gains a derived ``mean``).
        """
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: dict(self.histograms[name]) for name in sorted(self.histograms)
            },
            "spans": {
                name: {**stats, "mean": stats["total"] / stats["count"]}
                for name, stats in sorted(self.spans.items())
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. shipped back from a worker) into this registry.

        Counter/histogram merging is commutative per key; gauges are last-write-wins, so
        call sites must merge in run order (the engine does) for gauge determinism.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, stats in snapshot.get("histograms", {}).items():
            _merge_stats(self.histograms, name, stats)
        for name, stats in snapshot.get("spans", {}).items():
            _merge_stats(self.spans, name, {key: stats[key] for key in ("count", "total", "min", "max")})


def deterministic_sections(snapshot: dict) -> dict:
    """The parts of a snapshot covered by the serial-vs-parallel identity contract."""
    return {
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "histograms": snapshot.get("histograms", {}),
    }


class TrialTelemetry:
    """Envelope pairing one trial's payload with its registry snapshot.

    Workers return these (picklable: payload + plain dict) when telemetry is enabled;
    the engine unwraps the payload for the measures and merges the snapshot, in run
    order, into the run registry.
    """

    __slots__ = ("payload", "snapshot")

    def __init__(self, payload: object, snapshot: dict) -> None:
        self.payload = payload
        self.snapshot = snapshot

    def __reduce__(self):
        return (TrialTelemetry, (self.payload, self.snapshot))


def unwrap_payload(result: object) -> object:
    """The bare trial payload, whether or not it rides in a :class:`TrialTelemetry`."""
    return result.payload if isinstance(result, TrialTelemetry) else result


def merge_trial(registry: Optional[MetricsRegistry], result: object) -> object:
    """Merge a trial envelope's snapshot into ``registry`` and return the bare payload.

    The single place the engine folds worker telemetry from -- called exactly once per
    trial, in run order, which is what makes the merged counters deterministic.
    """
    if isinstance(result, TrialTelemetry):
        if registry is not None:
            registry.merge_snapshot(result.snapshot)
        return result.payload
    return result
