"""The wireless-network model.

The paper models the network as an undirected graph ``G = (V, E)`` in which an edge exists
between two nodes exactly when their Euclidean distance is at most the (common) communication
radius ``R``, links are bidirectional, and every link carries one weight per QoS metric.
:class:`Network` is that object: node positions, undirected links, per-metric link weights --
backed by a :class:`networkx.Graph` so the rest of the library (and downstream users) can
reuse the networkx ecosystem when convenient.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.metrics.base import Metric
from repro.metrics.assignment import WeightAssigner, canonical_edge
from repro.utils.ids import NodeId, normalize_node_id

Position = Tuple[float, float]


class Network:
    """An ad-hoc wireless network: positioned nodes, bidirectional QoS-weighted links."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    # ------------------------------------------------------------------ construction

    def add_node(self, node: NodeId, position: Optional[Position] = None) -> NodeId:
        """Add a node (idempotent).  ``position`` defaults to the origin."""
        node = normalize_node_id(node)
        x, y = position if position is not None else (0.0, 0.0)
        self._graph.add_node(node, pos=(float(x), float(y)))
        return node

    def add_link(self, u: NodeId, v: NodeId, **weights: float) -> None:
        """Add a bidirectional link between ``u`` and ``v`` carrying the given metric weights.

        Weights are keyword arguments keyed by metric name, e.g.
        ``network.add_link(1, 2, bandwidth=5.0, delay=2.0)``.  Both endpoints must already
        exist (or they are created at the origin).  Self-links are rejected.
        """
        u, v = normalize_node_id(u), normalize_node_id(v)
        if u == v:
            raise ValueError(f"self-links are not allowed (node {u})")
        if u not in self._graph:
            self.add_node(u)
        if v not in self._graph:
            self.add_node(v)
        self._graph.add_edge(u, v, **{name: float(value) for name, value in weights.items()})

    def set_link_weight(self, u: NodeId, v: NodeId, metric_name: str, value: float) -> None:
        """Set (or overwrite) one metric weight on an existing link."""
        if not self.has_link(u, v):
            raise KeyError(f"no link between {u} and {v}")
        self._graph.edges[u, v][metric_name] = float(value)

    def apply_weight_assigner(self, assigner: WeightAssigner) -> None:
        """Populate every link's weight for ``assigner.metric`` using the assigner."""
        weights = assigner.assign(list(self.links()), dict(self.positions()))
        for (u, v), value in weights.items():
            self.set_link_weight(u, v, assigner.metric.name, value)

    @classmethod
    def from_links(
        cls,
        links: Mapping[Tuple[NodeId, NodeId], Mapping[str, float]] | Iterable[Tuple[NodeId, NodeId]],
        positions: Optional[Mapping[NodeId, Position]] = None,
    ) -> "Network":
        """Build a network from an explicit link table.

        ``links`` is either a mapping ``{(u, v): {metric: weight, ...}}`` or a bare iterable
        of ``(u, v)`` pairs (weightless links, useful with a weight assigner).
        """
        network = cls()
        if positions:
            for node, position in positions.items():
                network.add_node(node, position)
        if isinstance(links, Mapping):
            for (u, v), weights in links.items():
                network.add_link(u, v, **dict(weights))
        else:
            for u, v in links:
                network.add_link(u, v)
        return network

    # ------------------------------------------------------------------ queries

    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (shared, not a copy)."""
        return self._graph

    def nodes(self) -> list[NodeId]:
        """All node identifiers, sorted."""
        return sorted(self._graph.nodes)

    def links(self) -> list[Tuple[NodeId, NodeId]]:
        """All links in canonical (sorted-endpoint) orientation."""
        return [canonical_edge(u, v) for u, v in self._graph.edges]

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, node: NodeId) -> bool:
        return node in self._graph

    def __iter__(self) -> Iterator[NodeId]:
        return iter(sorted(self._graph.nodes))

    def number_of_links(self) -> int:
        """Number of (undirected) links."""
        return self._graph.number_of_edges()

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        """True when a (bidirectional) link exists between ``u`` and ``v``."""
        return self._graph.has_edge(u, v)

    def position(self, node: NodeId) -> Position:
        """The (x, y) position of ``node``."""
        return self._graph.nodes[node]["pos"]

    def positions(self) -> Dict[NodeId, Position]:
        """Mapping of every node to its position."""
        return {node: data["pos"] for node, data in self._graph.nodes(data=True)}

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance between two nodes."""
        (x1, y1), (x2, y2) = self.position(u), self.position(v)
        return math.hypot(x1 - x2, y1 - y2)

    def link_attributes(self, u: NodeId, v: NodeId) -> Dict[str, float]:
        """All metric weights carried by the link (a copy)."""
        if not self.has_link(u, v):
            raise KeyError(f"no link between {u} and {v}")
        return dict(self._graph.edges[u, v])

    def link_value(self, u: NodeId, v: NodeId, metric: Metric) -> float:
        """The weight of link (u, v) under ``metric``."""
        return metric.link_value_from_attributes(self.link_attributes(u, v))

    # ------------------------------------------------------------------ neighborhoods

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """The one-hop neighborhood ``N(node)``."""
        return set(self._graph.neighbors(node))

    def two_hop_neighbors(self, node: NodeId) -> Set[NodeId]:
        """The strict two-hop neighborhood ``N²(node)``.

        Per the paper's definition this excludes the node itself and its one-hop neighbors.
        """
        one_hop = self.neighbors(node)
        two_hop: Set[NodeId] = set()
        for neighbor in one_hop:
            two_hop.update(self._graph.neighbors(neighbor))
        two_hop.discard(node)
        return two_hop - one_hop

    def degree(self, node: NodeId) -> int:
        """Number of one-hop neighbors of ``node``."""
        return self._graph.degree[node]

    def average_degree(self) -> float:
        """Mean node degree over the network (0.0 for an empty network)."""
        if self._graph.number_of_nodes() == 0:
            return 0.0
        return 2.0 * self._graph.number_of_edges() / self._graph.number_of_nodes()

    # ------------------------------------------------------------------ connectivity

    def is_connected(self) -> bool:
        """True when the network has at least one node and is connected."""
        return self._graph.number_of_nodes() > 0 and nx.is_connected(self._graph)

    def connected_components(self) -> list[Set[NodeId]]:
        """The connected components, largest first."""
        return sorted((set(c) for c in nx.connected_components(self._graph)), key=len, reverse=True)

    def largest_component(self) -> "Network":
        """A copy of the network restricted to its largest connected component."""
        components = self.connected_components()
        if not components:
            return Network()
        return self.subnetwork(components[0])

    def subnetwork(self, nodes: Iterable[NodeId]) -> "Network":
        """A copy of the network induced by ``nodes``."""
        keep = set(nodes)
        sub = Network()
        for node in keep:
            if node in self._graph:
                sub.add_node(node, self.position(node))
        for u, v in self._graph.edges:
            if u in keep and v in keep:
                sub.add_link(u, v, **self.link_attributes(u, v))
        return sub

    def copy(self) -> "Network":
        """A deep copy of the network."""
        return self.subnetwork(self._graph.nodes)

    # ------------------------------------------------------------------ misc

    def validate_metric_coverage(self, metric: Metric) -> None:
        """Check that every link carries a (legal) weight for ``metric``.

        Experiments call this once up front so a missing weight surfaces as a clear error
        rather than a :class:`KeyError` deep inside a path computation.
        """
        for u, v in self.links():
            value = self.link_value(u, v, metric)
            metric.validate_link_value(value)

    def describe(self) -> str:
        """One-line human-readable summary, used by examples and the CLI."""
        return (
            f"Network(nodes={len(self)}, links={self.number_of_links()}, "
            f"avg_degree={self.average_degree():.2f}, connected={self.is_connected()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
