"""Wireless-network topologies: the network model, unit-disk construction and generators."""

from repro.topology.generators import (
    PAPER_FIELD,
    FieldSpec,
    FixedCountNetworkGenerator,
    GridNetworkGenerator,
    PoissonNetworkGenerator,
    network_from_positions,
)
from repro.topology.network import Network
from repro.topology.unit_disk import (
    degree_to_intensity,
    intensity_to_expected_nodes,
    unit_disk_links,
)

__all__ = [
    "Network",
    "FieldSpec",
    "PAPER_FIELD",
    "PoissonNetworkGenerator",
    "FixedCountNetworkGenerator",
    "GridNetworkGenerator",
    "network_from_positions",
    "unit_disk_links",
    "degree_to_intensity",
    "intensity_to_expected_nodes",
]
