"""Unit-disk graph construction.

The paper's connectivity model: ``(u, v) ∈ E`` if and only if the Euclidean distance
``|uv|`` is at most the common communication radius ``R``, and all links are bidirectional.
Given node positions, :func:`unit_disk_links` returns exactly that edge set; a spatial grid
index keeps construction near-linear in the number of nodes for the dense deployments used
in the evaluation (several hundred nodes at degree 35).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Mapping, Tuple

from repro.utils.ids import NodeId
from repro.utils.validation import require_positive

Position = Tuple[float, float]


def unit_disk_links(
    positions: Mapping[NodeId, Position],
    radius: float,
) -> List[Tuple[NodeId, NodeId]]:
    """Return every unordered pair of nodes within ``radius`` of each other.

    Uses a uniform grid of cell size ``radius`` so only the 3x3 neighborhood of cells needs
    to be examined per node, instead of all O(n²) pairs.
    """
    require_positive(radius, "radius")
    cells: Dict[Tuple[int, int], List[NodeId]] = defaultdict(list)
    for node, (x, y) in positions.items():
        cells[(int(x // radius), int(y // radius))].append(node)

    links: List[Tuple[NodeId, NodeId]] = []
    for (cx, cy), members in cells.items():
        # Pairs within the cell.
        members_sorted = sorted(members)
        for i, u in enumerate(members_sorted):
            for v in members_sorted[i + 1:]:
                if _within(positions[u], positions[v], radius):
                    links.append((u, v))
        # Pairs with the "forward" neighboring cells (each unordered cell pair visited once).
        for dx, dy in ((1, 0), (0, 1), (1, 1), (1, -1)):
            other = cells.get((cx + dx, cy + dy))
            if not other:
                continue
            for u in members:
                for v in other:
                    if _within(positions[u], positions[v], radius):
                        links.append((u, v) if u <= v else (v, u))
    return sorted(set(links))


def _within(a: Position, b: Position, radius: float) -> bool:
    return math.hypot(a[0] - b[0], a[1] - b[1]) <= radius


def degree_to_intensity(degree: float, radius: float) -> float:
    """Convert a target mean node degree to a Poisson point process intensity.

    The paper (footnote 1): the deployment is a Poisson point process of intensity
    ``λ = δ / (π R²)`` so that the expected number of neighbors of a typical node is ``δ``.
    """
    require_positive(degree, "degree")
    require_positive(radius, "radius")
    return degree / (math.pi * radius * radius)


def intensity_to_expected_nodes(intensity: float, width: float, height: float) -> float:
    """Expected number of nodes a Poisson point process of ``intensity`` drops on the field."""
    require_positive(width, "width")
    require_positive(height, "height")
    return intensity * width * height
