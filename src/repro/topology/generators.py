"""Topology generators.

The paper's evaluation deploys nodes in a 1000 x 1000 square with a Poisson point process
whose intensity is chosen to hit a target mean degree δ, uses a communication radius of 100,
and draws link weights uniformly at random.  :class:`PoissonNetworkGenerator` reproduces that
setup; the grid and explicit generators support tests, examples and the paper's worked
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.metrics.assignment import WeightAssigner
from repro.registry import TOPOLOGY_MODELS
from repro.topology.network import Network, Position
from repro.topology.unit_disk import degree_to_intensity, unit_disk_links
from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng
from repro.utils.validation import require_positive


@dataclass
class FieldSpec:
    """The deployment area and radio model used throughout the evaluation."""

    width: float = 1000.0
    height: float = 1000.0
    radius: float = 100.0

    def __post_init__(self) -> None:
        require_positive(self.width, "width")
        require_positive(self.height, "height")
        require_positive(self.radius, "radius")


#: The exact field the paper uses (1000 x 1000, R = 100).
PAPER_FIELD = FieldSpec()


@dataclass
class PoissonNetworkGenerator:
    """Poisson-point-process deployment at a target mean degree, as in the paper.

    The number of nodes is itself Poisson distributed (intensity ``δ / (π R²)`` times the
    field area); node positions are independent uniforms.  Link weights for each metric in
    ``weight_assigners`` are applied after the unit-disk edges are built.
    """

    field: FieldSpec = field(default_factory=FieldSpec)
    degree: float = 20.0
    seed: int = 0
    weight_assigners: Sequence[WeightAssigner] = ()
    restrict_to_largest_component: bool = False

    def generate(self, run_index: int = 0) -> Network:
        """Generate one topology.  Different ``run_index`` values give independent draws."""
        require_positive(self.degree, "degree")
        rng = spawn_rng(self.seed, "poisson-topology", self.degree, run_index)
        intensity = degree_to_intensity(self.degree, self.field.radius)
        expected_nodes = intensity * self.field.width * self.field.height
        count = _poisson_sample(rng, expected_nodes)
        positions: Dict[NodeId, Position] = {
            node: (rng.uniform(0.0, self.field.width), rng.uniform(0.0, self.field.height))
            for node in range(count)
        }
        network = _build_unit_disk_network(positions, self.field.radius, self.weight_assigners)
        if self.restrict_to_largest_component and len(network) > 0:
            network = network.largest_component()
        return network


@dataclass
class FixedCountNetworkGenerator:
    """Uniform deployment of an exact number of nodes (a binomial point process).

    Handy for tests and micro-benchmarks where the Poisson-distributed node count of the
    paper's process would make runtimes and assertions noisy.
    """

    field: FieldSpec = field(default_factory=FieldSpec)
    node_count: int = 100
    seed: int = 0
    weight_assigners: Sequence[WeightAssigner] = ()
    restrict_to_largest_component: bool = False

    def generate(self, run_index: int = 0) -> Network:
        if self.node_count < 0:
            raise ValueError(f"node_count must be non-negative, got {self.node_count}")
        rng = spawn_rng(self.seed, "fixed-topology", self.node_count, run_index)
        positions: Dict[NodeId, Position] = {
            node: (rng.uniform(0.0, self.field.width), rng.uniform(0.0, self.field.height))
            for node in range(self.node_count)
        }
        network = _build_unit_disk_network(positions, self.field.radius, self.weight_assigners)
        if self.restrict_to_largest_component and len(network) > 0:
            network = network.largest_component()
        return network


@dataclass
class GridNetworkGenerator:
    """A regular grid of nodes with the given spacing.

    Deterministic topology used by unit tests (known neighborhoods) and by the quickstart
    example; with spacing below the radius it yields a connected, predictable network.
    """

    rows: int = 5
    columns: int = 5
    spacing: float = 80.0
    radius: float = 100.0
    weight_assigners: Sequence[WeightAssigner] = ()

    def generate(self, run_index: int = 0) -> Network:
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError("grid dimensions must be positive")
        require_positive(self.spacing, "spacing")
        positions: Dict[NodeId, Position] = {}
        node = 0
        for row in range(self.rows):
            for column in range(self.columns):
                positions[node] = (column * self.spacing, row * self.spacing)
                node += 1
        return _build_unit_disk_network(positions, self.radius, self.weight_assigners)


def network_from_positions(
    positions: Mapping[NodeId, Position],
    radius: float,
    weight_assigners: Sequence[WeightAssigner] = (),
) -> Network:
    """Build a unit-disk network from explicit node positions."""
    return _build_unit_disk_network(dict(positions), radius, weight_assigners)


def _build_unit_disk_network(
    positions: Dict[NodeId, Position],
    radius: float,
    weight_assigners: Sequence[WeightAssigner],
) -> Network:
    network = Network()
    for node, position in positions.items():
        network.add_node(node, position)
    for u, v in unit_disk_links(positions, radius):
        network.add_link(u, v)
    for assigner in weight_assigners:
        network.apply_weight_assigner(assigner)
    return network


def _poisson_sample(rng, mean: float) -> int:
    """Draw from a Poisson distribution with the given mean.

    Uses Knuth's product-of-uniforms method for small means and a normal approximation for
    large ones (the evaluation's densest setting has a mean of ~1100 nodes, far inside the
    regime where the approximation error is negligible compared to run-to-run variance).
    """
    if mean < 0:
        raise ValueError(f"the mean of a Poisson distribution must be non-negative, got {mean}")
    if mean == 0:
        return 0
    if mean > 50:
        return max(0, int(round(rng.normalvariate(mean, mean ** 0.5))))
    import math

    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


# ---------------------------------------------------------------------- registered models
#
# The scenario API refers to topology models by registry name (the ``topology`` field of an
# ``ExperimentSpec`` / ``SweepConfig``).  A model factory receives the sweep's field, the
# density value being swept, the root seed and the per-metric weight assigners, and returns
# a generator object whose ``generate(run_index)`` yields one topology per run.  How the
# density axis is interpreted is up to the model (mean degree, node count, grid side, ...).


@TOPOLOGY_MODELS.register(
    "poisson",
    description="Poisson point process at target mean degree, largest component (the paper's model)",
)
def poisson_model(field: FieldSpec, density: float, seed: int, weight_assigners: Sequence[WeightAssigner] = ()):
    """``density`` is the target mean node degree δ, as in the paper's evaluation."""
    return PoissonNetworkGenerator(
        field=field,
        degree=density,
        seed=seed,
        weight_assigners=tuple(weight_assigners),
        restrict_to_largest_component=True,
    )


@TOPOLOGY_MODELS.register(
    "fixed-count",
    description="uniform deployment of exactly round(density) nodes, largest component",
)
def fixed_count_model(field: FieldSpec, density: float, seed: int, weight_assigners: Sequence[WeightAssigner] = ()):
    """``density`` is the exact number of deployed nodes (binomial point process)."""
    return FixedCountNetworkGenerator(
        field=field,
        node_count=int(round(density)),
        seed=seed,
        weight_assigners=tuple(weight_assigners),
        restrict_to_largest_component=True,
    )


@TOPOLOGY_MODELS.register(
    "grid",
    description="deterministic round(density) x round(density) grid at 0.8 radius spacing",
)
def grid_model(field: FieldSpec, density: float, seed: int, weight_assigners: Sequence[WeightAssigner] = ()):
    """``density`` is the grid side; the seed only affects weight draws, not positions."""
    side = max(1, int(round(density)))
    return GridNetworkGenerator(
        rows=side,
        columns=side,
        spacing=field.radius * 0.8,
        radius=field.radius,
        weight_assigners=tuple(weight_assigners),
    )
