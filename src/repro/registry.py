"""Unified plugin registries for the scenario API.

Every pluggable ingredient of an experiment -- selection algorithms, QoS metrics, topology
models, measure kinds, result sinks and spec presets -- is published in one of the
:class:`Registry` instances below and referred to *by name* from a declarative
:class:`~repro.experiments.spec.ExperimentSpec`.  This replaces the bespoke per-subsystem
mechanisms the harness grew historically (the private ``_SELECTOR_FACTORIES`` dict, the
``METRICS`` dict, hard-coded generator imports, and the ``number in (6, 8)`` metric dispatch
in the CLI).

Registries are **lazy**: importing this module imports nothing else, and the built-in
entries of each registry are loaded on first lookup by importing their defining modules
(which register themselves, usually through the :meth:`Registry.register` decorator).  That
keeps the import graph acyclic -- defining modules may import ``repro.registry``, never the
other way around at import time.

Extending the harness is one decorator, no core edits::

    from repro.registry import SELECTORS

    @SELECTORS.register("my-selector", description="always advertises everything")
    class MySelector(AnsSelector):
        ...

after which ``"my-selector"`` is valid anywhere a selector name appears: in an
``ExperimentSpec``, in ``repro-sweep --selectors``, and in ``repro-sweep --list`` output.
The same pattern applies to ``METRICS`` (register a factory returning a
:class:`~repro.metrics.base.Metric`), ``TOPOLOGY_MODELS`` (a factory
``(field, density, seed, weight_assigners) -> generator`` whose product has a
``generate(run_index)`` method), ``MEASURES`` (a :class:`~repro.experiments.measures.Measure`
subclass), ``SINKS`` and ``PRESETS`` (zero-argument factories returning an
``ExperimentSpec``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional


class Registry:
    """A named, lazily populated mapping from registry names to factories.

    ``kind`` is the human-readable noun used in error messages (``"selector"``,
    ``"metric"``, ...).  Built-ins are loaded on first lookup by the ``populate`` hook
    (attached with :meth:`on_populate`), which imports the defining modules; those modules
    call :meth:`register` -- directly or as a decorator -- to publish their entries.
    """

    def __init__(self, kind: str, populate: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}
        self._descriptions: Dict[str, str] = {}
        self._populate = populate
        self._populated = False

    # ------------------------------------------------------------------ registration

    def register(self, name: str, factory: Optional[Callable] = None, *, description: str = ""):
        """Register ``factory`` under ``name`` (last registration wins).

        Usable as a plain call (``REGISTRY.register("name", factory)``) or as a class /
        function decorator (``@REGISTRY.register("name")``).  Returns the factory either
        way, so decorated objects are unchanged.
        """
        if factory is None:

            def decorator(obj: Callable) -> Callable:
                self.register(name, obj, description=description)
                return obj

            return decorator
        if not callable(factory):
            raise TypeError(f"{self.kind} factory for {name!r} must be callable, got {factory!r}")
        self._factories[name] = factory
        self._descriptions[name] = description or _first_doc_line(factory)
        return factory

    def on_populate(self, hook: Callable[[], None]) -> Callable[[], None]:
        """Attach (as a decorator) the lazy loader that registers the built-in entries."""
        self._populate = hook
        return hook

    def _ensure_populated(self) -> None:
        if self._populated or self._populate is None:
            return
        self._populated = True  # set first: the hook's imports may look the registry up
        try:
            self._populate()
        except BaseException:
            # A failed load (e.g. a broken import) must surface on every lookup, not turn
            # into a misleading "registry knows []" on the second one.
            self._populated = False
            raise

    # ------------------------------------------------------------------ lookup

    def names(self) -> List[str]:
        """Sorted names of every registered entry."""
        self._ensure_populated()
        return sorted(self._factories)

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``.

        Raises ``KeyError`` naming the registry and its known entries, so that a typo in a
        spec or on the command line is self-explanatory.
        """
        self._ensure_populated()
        try:
            return self._factories[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown {self.kind} {name!r}; the {self.kind} registry knows {self.names()}"
            ) from exc

    def create(self, name: str, *args, **kwargs):
        """Instantiate the entry registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def describe(self) -> Dict[str, str]:
        """``{name: one-line description}`` for every entry (used by ``repro-sweep --list``)."""
        self._ensure_populated()
        return {name: self._descriptions.get(name, "") for name in self.names()}

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = "populated" if self._populated else "lazy"
        return f"Registry(kind={self.kind!r}, {populated}, entries={len(self._factories)})"


def _first_doc_line(factory: Callable) -> str:
    doc = getattr(factory, "__doc__", None) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


#: Advertised-neighbor-set selection algorithms (:class:`repro.core.selection.AnsSelector`).
SELECTORS = Registry("selector")

#: QoS metrics; factories return shared :class:`repro.metrics.base.Metric` instances.
METRICS = Registry("metric")

#: Topology models: ``factory(field, density, seed, weight_assigners)`` returning a
#: generator object with a ``generate(run_index)`` method.
TOPOLOGY_MODELS = Registry("topology model")

#: Measure kinds: what one sweep trial measures and how trials aggregate into series
#: (:class:`repro.experiments.measures.Measure`).
MEASURES = Registry("measure")

#: Result sinks: streaming consumers of sweep events (:class:`repro.experiments.sinks.ResultSink`).
SINKS = Registry("sink")

#: Spec presets: zero-argument factories returning a full paper-profile
#: :class:`~repro.experiments.spec.ExperimentSpec` (the paper's Figures 6-9 live here).
PRESETS = Registry("preset")

#: Every registry by plural section name, in ``repro-sweep --list`` display order.
ALL_REGISTRIES: Dict[str, Registry] = {
    "measures": MEASURES,
    "metrics": METRICS,
    "selectors": SELECTORS,
    "topology-models": TOPOLOGY_MODELS,
    "sinks": SINKS,
    "presets": PRESETS,
}


@SELECTORS.on_populate
def _load_builtin_selectors() -> None:
    # The selector classes register themselves (decorators in their defining modules);
    # importing the modules is all it takes.  Deferred because they import the selection
    # framework, which itself re-exports registry wrappers.
    import repro.baselines.olsr_mpr  # noqa: F401
    import repro.baselines.qolsr  # noqa: F401
    import repro.baselines.topology_filtering  # noqa: F401
    import repro.core.fnbp  # noqa: F401


@METRICS.on_populate
def _load_builtin_metrics() -> None:
    import repro.metrics  # noqa: F401


@TOPOLOGY_MODELS.on_populate
def _load_builtin_topology_models() -> None:
    import repro.mobility.models  # noqa: F401
    import repro.topology.generators  # noqa: F401


@MEASURES.on_populate
def _load_builtin_measures() -> None:
    import repro.experiments.measures  # noqa: F401
    import repro.mobility.measures  # noqa: F401
    import repro.protocol.measures  # noqa: F401


@SINKS.on_populate
def _load_builtin_sinks() -> None:
    import repro.experiments.sinks  # noqa: F401


@PRESETS.on_populate
def _load_builtin_presets() -> None:
    import repro.experiments.presets  # noqa: F401
