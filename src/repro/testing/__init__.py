"""Deterministic test instrumentation shipped with the library.

:mod:`repro.testing.faults` is the fault-injection harness the fault-tolerance suite and
CI drive the crash-resilient sweep engine with; it lives in ``src`` (not ``tests``)
because its trial-level hooks must be importable inside worker processes and sweep
subprocesses.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultySink,
    InjectedFault,
    apply_trial_faults,
    parse_fault_plans,
)

__all__ = [
    "FaultPlan",
    "FaultySink",
    "InjectedFault",
    "apply_trial_faults",
    "parse_fault_plans",
]
