"""Deterministic fault injection for the crash-resilient sweep engine.

Hope is not a test plan: the fault-tolerance suite (``tests/test_fault_tolerance.py``) and
the CI kill-and-resume smoke test drive the supervisor, the checkpoint/resume path and the
sink quarantine with *injected* faults that fire at exactly addressed trials.  A fault
plan is addressed by the same coordinates that make trials deterministic -- ``(density,
run_index, attempt)`` -- so a plan means the same thing in a serial run, inside a
``REPRO_WORKERS`` worker, and across a kill/resume boundary.

Plans travel through the ``REPRO_FAULTS`` environment variable (inherited by worker
processes and sweep subprocesses alike), as a ``;``-separated list of
``kind@key=value,key=value`` clauses::

    raise@density=9,run=0                 # poisoned trial: raises on every attempt
    raise@density=9,run=0,attempts=2      # transient: raises on attempts 0 and 1 only
    kill@density=9,run=1,attempts=1       # SIGKILL the executing process, first attempt only
    kill@density=9,run=0                  # SIGKILL every attempt (under a serial sweep this
                                          # kills the whole run -- the kill-then-resume scenario)

Keys: ``density`` (float, matched exactly), ``run`` (int), and optional ``attempts``
(int K: the fault fires while ``attempt < K``; omitted = every attempt).  ``kind`` is
``raise`` (an :class:`InjectedFault`) or ``kill`` (``SIGKILL`` to the executing process --
under ``REPRO_WORKERS`` that is a pool worker, exercising respawn-and-retry; serially it
is the sweep process itself, exercising checkpoint/resume).

The hook point is :func:`repro.experiments.runner._execute_trial`, which consults
:func:`apply_trial_faults` only when ``REPRO_FAULTS`` is set -- production sweeps never
import this module.  Sink-side faults do not need the environment channel (sinks run in
the parent process): :class:`FaultySink` raises on an addressed event, exercising the
engine's quarantine path.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.sinks import ResultSink

#: The environment variable fault plans travel through.
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """The deterministic exception a ``raise`` fault plan throws inside a trial."""


class FaultPlanError(ValueError):
    """A ``REPRO_FAULTS`` value that does not parse."""


@dataclass(frozen=True)
class FaultPlan:
    """One addressed fault: fire ``kind`` at trial ``(density, run_index)``.

    ``attempts`` bounds the fault to the first K attempts (``None`` = every attempt), which
    is how transient faults -- the kind supervision must *recover* from -- are expressed.
    """

    kind: str
    density: float
    run_index: int
    attempts: Optional[int] = None

    def matches(self, density: float, run_index: int, attempt: int) -> bool:
        if density != self.density or run_index != self.run_index:
            return False
        return self.attempts is None or attempt < self.attempts

    def fire(self) -> None:
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedFault(
            f"injected fault at density={self.density:g} run={self.run_index}"
        )


def parse_fault_plans(text: str) -> List[FaultPlan]:
    """Parse a ``REPRO_FAULTS`` value (see the module docstring for the syntax)."""
    plans: List[FaultPlan] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, body = clause.partition("@")
        kind = kind.strip()
        if kind not in ("raise", "kill"):
            raise FaultPlanError(f"unknown fault kind {kind!r} in {clause!r} (known: raise, kill)")
        keys = {}
        for pair in body.split(","):
            name, _, value = pair.partition("=")
            keys[name.strip()] = value.strip()
        unknown = sorted(set(keys) - {"density", "run", "attempts"})
        if unknown:
            raise FaultPlanError(f"unknown fault key(s) {unknown} in {clause!r}")
        try:
            plans.append(
                FaultPlan(
                    kind=kind,
                    density=float(keys["density"]),
                    run_index=int(keys["run"]),
                    attempts=int(keys["attempts"]) if "attempts" in keys else None,
                )
            )
        except (KeyError, ValueError) as exc:
            raise FaultPlanError(
                f"fault clause {clause!r} needs density=<float>,run=<int>[,attempts=<int>] ({exc})"
            ) from exc
    return plans


def apply_trial_faults(density: float, run_index: int, attempt: int) -> None:
    """Fire the first matching ``REPRO_FAULTS`` plan for this trial attempt (if any).

    Called from the runner's trial choke point in whichever process executes the trial;
    re-reads the environment on every call so tests can monkeypatch plans per case.
    """
    text = os.environ.get(FAULTS_ENV, "")
    if not text:
        return
    for plan in parse_fault_plans(text):
        if plan.matches(density, run_index, attempt):
            plan.fire()


class FaultySink(ResultSink):
    """A sink that raises ``OSError`` from an addressed handler (quarantine fodder).

    ``fail_on`` names the handler (``"on_trial"``, ``"on_density"``, ...); ``after``
    skips that many calls first, so mid-run failures are expressible.  Every event is
    also counted in ``calls`` so tests can assert how far the sink got before (and
    whether it was called after) quarantine.
    """

    def __init__(self, fail_on: str = "on_density", after: int = 0) -> None:
        self.fail_on = fail_on
        self.after = after
        self.calls: List[str] = []
        self._remaining = after

    def _observe(self, handler: str) -> None:
        self.calls.append(handler)
        if handler == self.fail_on:
            if self._remaining > 0:
                self._remaining -= 1
                return
            raise OSError(f"injected sink failure in {handler}")

    def on_sweep_start(self, spec) -> None:
        self._observe("on_sweep_start")

    def on_trial(self, spec, density, run_index, payload, message) -> None:
        self._observe("on_trial")

    def on_trial_error(self, spec, density, run_index, failure) -> None:
        self._observe("on_trial_error")

    def on_warning(self, spec, message) -> None:
        self._observe("on_warning")

    def on_density(self, spec, density, points) -> None:
        self._observe("on_density")

    def on_metrics(self, spec, snapshot) -> None:
        self._observe("on_metrics")

    def on_result(self, result) -> None:
        self._observe("on_result")
