"""Event-driven OLSR protocol simulation over live (possibly mobile) topologies.

The analytic harness (:mod:`repro.experiments`) computes converged advertised sets
directly from topology snapshots; this package makes the control traffic *real*: one
:class:`~repro.protocol.simulator.ProtocolSimulator` drives a full
:class:`~repro.olsr.node.OlsrNode` agent per network node -- jittered periodic HELLO/TC
broadcasts, finite table-entry lifetimes with purge loops, triggered TCs on MPR-selector
change -- over a :class:`~repro.sim.engine.Simulator` event queue and a
:class:`~repro.protocol.radio.LossyRadio` whose per-transmission loss/delay draws come
from a :class:`~repro.protocol.loss.LossModel` that is a pure function of
``(seed, src, dst, seq)``.  Attached to a
:class:`~repro.mobility.dynamic.DynamicTopology` as a step listener, the simulator opens
the time axis the analytic pipeline cannot reach: convergence time after churn, staleness
of advertised link state, route flaps under lossy control traffic (the measures of
:mod:`repro.protocol.measures`).

Contracts live in ``docs/protocol.md``; with ``loss_rate=0`` and aligned intervals the
simulated advertised sets converge to exactly what the analytic pipeline reports
(``tests/test_protocol_sim.py`` pins this, extending the differential-suite convention).
"""

from repro.protocol.trace import EventTrace, TraceEvent
from repro.protocol.loss import LossModel
from repro.protocol.radio import LossyRadio, LossyRadioStatistics
from repro.protocol.simulator import ProtocolSimulator

__all__ = [
    "EventTrace",
    "TraceEvent",
    "LossModel",
    "LossyRadio",
    "LossyRadioStatistics",
    "ProtocolSimulator",
]
