"""Event tracing for protocol simulations (the one tracing path of the repo).

The trace records what happened and when (message emissions, triggered TCs, topology
steps, data-packet hops) so that tests and examples can inspect protocol behaviour --
e.g. reconstruct the path a data packet actually took, count the control overhead
generated per protocol variant, or check that a churn step triggered a TC.  Both the
static end-to-end scenario (:class:`repro.sim.scenario.OlsrSimulation`) and the
event-driven :class:`~repro.protocol.simulator.ProtocolSimulator` record into the same
structure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.utils.ids import NodeId


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    node: Optional[NodeId] = None
    detail: Tuple[Tuple[str, object], ...] = ()

    def detail_dict(self) -> dict:
        return dict(self.detail)


class EventTrace:
    """An append-only list of :class:`TraceEvent` with simple query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, time: float, kind: str, node: Optional[NodeId] = None, **detail: object) -> None:
        self._events.append(
            TraceEvent(time=time, kind=kind, node=node, detail=tuple(sorted(detail.items())))
        )

    # ------------------------------------------------------------------ queries

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Number of recorded events per kind."""
        return dict(Counter(event.kind for event in self._events))

    def data_packet_path(self, packet_id: int) -> List[NodeId]:
        """The sequence of nodes a data packet visited (origination + every reception)."""
        path: List[NodeId] = []
        for event in self._events:
            if event.kind in ("data-originated", "data-received") and event.detail_dict().get("packet_id") == packet_id:
                if event.node is not None and (not path or path[-1] != event.node):
                    path.append(event.node)
        return path

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
