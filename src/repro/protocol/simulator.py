"""The event-driven OLSR protocol simulator.

One :class:`ProtocolSimulator` runs one selection algorithm over one (live) network: a
full :class:`~repro.olsr.node.OlsrNode` agent per network node, driven by per-node
asynchronous timers on a shared :class:`~repro.sim.engine.Simulator` event queue, over
the :class:`~repro.protocol.radio.LossyRadio` control channel.

Per-node behaviour (RFC 3626 shapes, intervals configurable per spec):

* **HELLO loop** -- emission ``k`` fires at ``k * hello_interval`` plus a small seeded
  jitter (decorrelating neighbors without leaving the period), after expiring stale
  table entries and refreshing the node's MPR/ANS selection.
* **TC loop** -- emission ``k`` fires at ``k * tc_interval`` plus jitter (``k >= 1``);
  a node whose advertised set is empty stays silent, like an RFC 3626 node with no MPR
  selectors.
* **Purge loop** -- halfway through every HELLO period each node expires neighbor,
  topology and duplicate entries, so stale state dies even while a node's own HELLO
  timer is still pending.  Entry lifetimes scale with the configured intervals:
  neighbor entries live ``3 x hello_interval``, topology entries ``3 x tc_interval``.
* **Triggered TC** -- when a received HELLO changes the node's MPR-selector set (someone
  started or stopped announcing it as MPR), a one-shot TC is scheduled after a short
  jitter, RFC 3626's triggered-update rule.  At most one trigger is pending per node.

Attached to a :class:`~repro.mobility.dynamic.DynamicTopology` via :meth:`attach`, the
simulator observes every ``advance()`` through the driver's step-listener stream: link
flips take effect immediately (the radio reads neighbors at send time), the step's churn
is recorded for the convergence measures, and the agents discover the change the
protocol way -- missed HELLOs, expiring entries, re-flooded TCs.

Determinism: every draw (jitter, loss, delay) derives from the constructor ``seed``
through pure :func:`~repro.utils.seeding.spawn_rng` labels, event ties break by
insertion order, and neighbor iteration is sorted -- equal seeds give bit-identical
runs in any process (the serial-vs-``REPRO_WORKERS`` contract of the measures built on
top, see :mod:`repro.protocol.measures`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.selection import make_selector
from repro.metrics.base import Metric
from repro.obs import runtime as obs
from repro.olsr.messages import HelloMessage, Packet, TcMessage
from repro.olsr.node import OlsrNode
from repro.protocol.loss import LossModel
from repro.protocol.radio import LossyRadio
from repro.protocol.trace import EventTrace
from repro.sim.engine import Simulator
from repro.topology.network import Network
from repro.utils.ids import NodeId
from repro.utils.seeding import derive_seed, spawn_rng
from repro.utils.validation import require_positive

#: Fraction of the period used as the maximum emission jitter (RFC 3626 recommends
#: jittering periodic emissions; keeping it well under one period keeps emissions
#: aligned to their period window, which the zero-loss anchor test relies on).
JITTER_FRACTION = 0.1

#: Hold times as multiples of the emission interval (RFC 3626: validity = 3 periods).
HOLD_PERIODS = 3.0


class ProtocolSimulator:
    """Per-node OLSR agents exchanging real HELLO/TC traffic over a lossy channel."""

    def __init__(
        self,
        network: Network,
        metric: Metric,
        selector_name: str = "fnbp",
        seed: int = 0,
        hello_interval: float = 2.0,
        tc_interval: float = 5.0,
        loss_model: Optional[LossModel] = None,
    ) -> None:
        require_positive(hello_interval, "hello_interval")
        require_positive(tc_interval, "tc_interval")
        self.network = network
        self.metric = metric
        self.selector_name = selector_name
        self.seed = seed
        self.hello_interval = hello_interval
        self.tc_interval = tc_interval
        self.loss_model = (
            loss_model if loss_model is not None else LossModel(seed=derive_seed(seed, "loss-model"))
        )
        self.simulator = Simulator()
        self.trace = EventTrace()
        self.neighbor_hold_time = HOLD_PERIODS * hello_interval
        self.topology_hold_time = HOLD_PERIODS * tc_interval

        self.nodes: Dict[NodeId, OlsrNode] = {}
        for node_id in network.nodes():
            self.nodes[node_id] = OlsrNode(
                node_id=node_id,
                metric=metric,
                selector=make_selector(selector_name),
                neighbor_hold_time=self.neighbor_hold_time,
                topology_hold_time=self.topology_hold_time,
            )

        self.radio = LossyRadio(
            network=network,
            simulator=self.simulator,
            deliver=self._deliver,
            loss_model=self.loss_model,
        )

        #: Steps (by :attr:`StepDelta.step` index) whose advance flipped at least one link.
        self.churn_steps: List[int] = []
        self._triggered_pending: Set[NodeId] = set()
        self._trigger_counts: Dict[NodeId, int] = {}
        for node_id in network.nodes():
            self._schedule_hello(node_id, 0)
            self._schedule_tc(node_id, 1)
            self._schedule_purge(node_id, 0)

    # ------------------------------------------------------------------ timers

    def _jitter(self, label: str, node_id: NodeId, index: int, interval: float) -> float:
        return spawn_rng(self.seed, label, node_id, index).uniform(0.0, JITTER_FRACTION * interval)

    def _schedule_hello(self, node_id: NodeId, index: int) -> None:
        at = index * self.hello_interval + self._jitter("hello-jitter", node_id, index, self.hello_interval)

        def emit() -> None:
            node = self.nodes[node_id]
            self._purge_node(node)
            node.refresh_selection()
            hello = node.make_hello()
            self.trace.record(self.simulator.now, "hello-sent", node_id)
            self.radio.broadcast(node_id, Packet(message=hello, sender=node_id))
            self._schedule_hello(node_id, index + 1)

        self.simulator.schedule_at(at, emit)

    def _schedule_tc(self, node_id: NodeId, index: int) -> None:
        at = index * self.tc_interval + self._jitter("tc-jitter", node_id, index, self.tc_interval)

        def emit() -> None:
            node = self.nodes[node_id]
            node.refresh_selection()
            tc = node.make_tc()
            if tc is not None:
                self.trace.record(self.simulator.now, "tc-sent", node_id)
                self.radio.broadcast(node_id, Packet(message=tc, sender=node_id))
            self._schedule_tc(node_id, index + 1)

        self.simulator.schedule_at(at, emit)

    def _schedule_purge(self, node_id: NodeId, index: int) -> None:
        at = (index + 0.5) * self.hello_interval

        def run() -> None:
            self._purge_node(self.nodes[node_id])
            self._schedule_purge(node_id, index + 1)

        self.simulator.schedule_at(at, run)

    def _purge_node(self, node: OlsrNode) -> None:
        now = self.simulator.now
        node.neighbor_table.expire(now)
        node.topology_table.expire(now)
        node.duplicates.expire(now)

    def _trigger_tc(self, node_id: NodeId) -> None:
        if node_id in self._triggered_pending:
            return
        self._triggered_pending.add(node_id)
        count = self._trigger_counts.get(node_id, 0)
        self._trigger_counts[node_id] = count + 1
        delay = spawn_rng(self.seed, "trigger-jitter", node_id, count).uniform(
            0.0, JITTER_FRACTION * self.hello_interval
        )

        def emit() -> None:
            self._triggered_pending.discard(node_id)
            node = self.nodes[node_id]
            node.refresh_selection()
            tc = node.make_tc()
            if tc is not None:
                self.trace.record(self.simulator.now, "tc-triggered", node_id)
                self.radio.broadcast(node_id, Packet(message=tc, sender=node_id))

        self.simulator.schedule_in(delay, emit)

    # ------------------------------------------------------------------ reception

    def _deliver(self, receiver: NodeId, packet: Packet) -> None:
        node = self.nodes[receiver]
        now = self.simulator.now
        message = packet.message
        if isinstance(message, HelloMessage):
            # Hearing a neighbor's HELLO is when a node (re-)measures the link towards it;
            # the simulator injects the live topology's ground-truth attributes (QoS
            # measurement itself is out of the paper's scope).  The link may have vanished
            # between transmission and delivery -- then the last measurement stands.
            origin = message.originator
            if self.network.has_link(receiver, origin):
                node.set_link_weights(origin, self.network.link_attributes(receiver, origin))
            before = node.neighbor_table.mpr_selectors()
            node.handle_packet(packet, now=now)
            if node.neighbor_table.mpr_selectors() != before:
                self._trigger_tc(receiver)
            return
        for response in node.handle_packet(packet, now=now):
            if isinstance(response.message, TcMessage):
                self.trace.record(now, "tc-forwarded", receiver)
            self.radio.broadcast(receiver, response)

    # ------------------------------------------------------------------ topology steps

    def attach(self, dynamic) -> None:
        """Subscribe to a :class:`~repro.mobility.dynamic.DynamicTopology` step stream.

        The driver must own the same live :class:`Network` this simulator transmits
        over.  Each ``advance()`` is recorded in the trace (and in :attr:`churn_steps`
        when it flipped links); the agents themselves only notice through the channel.
        """
        if dynamic.network is not self.network:
            raise ValueError("the dynamic topology must drive the simulator's own network")
        dynamic.add_step_listener(self._on_step)

    def _on_step(self, delta) -> None:
        if delta.link_churn:
            self.churn_steps.append(delta.step)
        self.trace.record(
            self.simulator.now, "topology-step", None, step=delta.step, churn=delta.link_churn
        )

    # ------------------------------------------------------------------ running

    def run_until(self, end_time: float) -> None:
        """Advance the protocol to absolute simulation time ``end_time``."""
        self.simulator.run_until(end_time)

    # ------------------------------------------------------------------ observation

    def ans_snapshot(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        """The advertised set each node's *current tables* imply (non-mutating probe).

        Unlike :meth:`ans_sets` this does not depend on where each node is in its HELLO
        period: it runs the selector on every node's table-derived local view without
        touching protocol state, so observations at window boundaries see the tables as
        they are, not as they were at the last periodic refresh.
        """
        snapshot: Dict[NodeId, FrozenSet[NodeId]] = {}
        for node_id, node in self.nodes.items():
            view = node.local_view()
            snapshot[node_id] = frozenset(node.selector.select(view, node.metric).selected)
        return snapshot

    def ans_sets(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        """Every node's advertised set as of its last selection refresh."""
        return {node_id: node.ans_set for node_id, node in self.nodes.items()}

    def mpr_sets(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        """Every node's RFC 3626 MPR set as of its last selection refresh."""
        return {node_id: node.mpr_set for node_id, node in self.nodes.items()}

    def advertised_link_sets(self) -> Dict[NodeId, FrozenSet[Tuple[NodeId, NodeId]]]:
        """Each node's topology-table content as a set of canonical undirected links."""
        return {
            node_id: frozenset(node.topology_table.advertised_links())
            for node_id, node in self.nodes.items()
        }

    def next_hops(self, pairs: Sequence[Tuple[NodeId, NodeId]]) -> List[Optional[NodeId]]:
        """Current next hop of every (source, destination) pair, from the source's tables.

        Routing tables are recomputed for each distinct source first (route computation
        is demand-driven here; the periodic loops only maintain the tables routes are
        computed *from*).
        """
        for source in sorted({source for source, _ in pairs}):
            self.nodes[source].recompute_routes()
        return [self.nodes[source].routing_table.next_hop(destination) for source, destination in pairs]

    def control_message_counts(self) -> Dict[str, int]:
        """Aggregate control-traffic counters across all nodes and the channel."""
        totals = {"hellos_sent": 0, "tcs_sent": 0, "tcs_forwarded": 0}
        for node in self.nodes.values():
            totals["hellos_sent"] += node.statistics.hellos_sent
            totals["tcs_sent"] += node.statistics.tcs_sent
            totals["tcs_forwarded"] += node.statistics.tcs_forwarded
        totals["transmissions"] = self.radio.statistics.transmissions
        totals["deliveries"] = self.radio.statistics.deliveries
        totals["losses"] = self.radio.statistics.losses
        return totals

    def record_telemetry(self) -> None:
        """Fold this simulation's control-traffic truth into the ambient telemetry registry.

        Called by the protocol measures when a per-selector simulation finishes: the
        per-message-type counts (``protocol.hellos_sent`` etc.), the event queue's
        ``protocol.events_processed`` and the channel's full
        :meth:`~repro.protocol.radio.LossyRadioStatistics.as_dict` counters
        (``protocol.radio.*``).  Everything recorded here is a pure function of the
        seeded event history, i.e. deterministic serial vs ``REPRO_WORKERS``.  A no-op
        while telemetry is off.
        """
        if not obs.enabled():
            return
        for name, value in self.control_message_counts().items():
            if name in ("transmissions", "deliveries", "losses"):
                continue  # already covered, with more detail, by protocol.radio.*
            obs.add(f"protocol.{name}", value)
        obs.add("protocol.events_processed", self.simulator.processed_events)
        self.radio.record_telemetry()
