"""Time-axis measures of the event-driven protocol simulator.

The mobility measures (:mod:`repro.mobility.measures`) diff *analytically converged*
selections step to step -- they assume control traffic is instantaneous and lossless.
The three measures here drop that assumption: each trial runs one
:class:`~repro.protocol.simulator.ProtocolSimulator` per selector over the trial's live
:class:`~repro.mobility.dynamic.DynamicTopology`, with real jittered HELLO/TC traffic
over the seeded lossy channel, and observes at the end of every step window

* ``convergence-time`` -- for every step whose advance flipped at least one link (a
  *churn event*), the number of step windows until every node's table-implied advertised
  set first matches the analytic ground truth again (the per-node selections the
  incremental pipeline reports for the then-current topology).  The window of the event
  itself counts, so the minimum is 1; an event the trial's remaining windows never
  recover from carries no sample (``None``).
* ``advertised-staleness`` -- stale advertised link state: the number of links present
  in nodes' topology tables but absent from the live topology's analytic advertised
  link set, averaged over nodes.  This is the residue lost TCs and finite entry
  lifetimes leave behind.
* ``route-flaps`` -- the fraction of sampled (source, destination) pairs whose
  next hop (from the source's simulated tables) changed across the step, including
  appearing/disappearing routes.

All three ride the standard streaming pipeline unchanged (per-density pooled summary,
``extra["per_step_mean"]`` time curves, every sink/spec/CLI); the per-trial work is a
plain picklable function of the trial, so ``REPRO_WORKERS`` fan-out stays bit-identical
to a serial sweep -- every stochastic ingredient (jitter, loss, delay) derives from pure
``(spec.seed, density, run_index, selector)`` labels.

The zero-loss anchor: with ``loss_rate=0`` and HELLO/TC intervals aligned to the step
clock, the simulated advertised sets converge to exactly what the analytic
``tc-overhead``/advertised-topology pipeline reports (``tests/test_protocol_sim.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.metrics.assignment import canonical_edge
from repro.mobility.measures import TimeSeriesMeasure
from repro.obs import runtime as obs
from repro.protocol.loss import LossModel
from repro.protocol.simulator import ProtocolSimulator
from repro.registry import MEASURES
from repro.utils.seeding import derive_seed

#: Cold-start settling allowance before the first step window, in units of the slowest
#: emission period: two rounds to learn the two-hop neighborhood, one to propagate the
#: settled MPR-selector flags (flooding relays), one to flood TCs over them.
WARMUP_PERIODS = 4.0


def warmup_time(hello_interval: float, tc_interval: float) -> float:
    """Simulated time the protocol gets to converge on the time-zero topology."""
    return WARMUP_PERIODS * max(hello_interval, tc_interval)


def _convergence_series(
    link_churn: List[float], matched: List[bool]
) -> List[Optional[float]]:
    """Per-step convergence times: steps from each churn event until the first match.

    Index-aligned to timesteps: non-event steps and events the trial never saw converge
    (censored by the horizon) carry ``None`` and contribute no sample.
    """
    series: List[Optional[float]] = []
    for index in range(len(matched)):
        if link_churn[index] <= 0:
            series.append(None)
            continue
        value: Optional[float] = None
        for later in range(index, len(matched)):
            if matched[later]:
                value = float(later - index + 1)
                break
        series.append(value)
    return series


def _protocol_trial(trial) -> dict:
    """Per-trial protocol simulation feeding all three measures (worker-safe).

    One simulator per selector shares the trial's live dynamic network: each step first
    advances the topology once, then runs every simulator's event queue to the end of
    the step window and compares its table state against the analytic ground truth of
    the then-current topology (``trial.step_selections``, the same incremental pipeline
    the mobility measures use).
    """
    config = trial.config
    dynamic = trial.dynamic_topology()
    selectors = config.selectors
    node_count = len(dynamic.network)
    if node_count == 0:
        return {"node_count": 0, "link_churn": [], "convergence": {}, "staleness": {}, "flaps": {}}
    pairs = trial.sample_pairs(config.pairs_per_run)

    sims: Dict[str, ProtocolSimulator] = {}
    for name in selectors:
        sim = ProtocolSimulator(
            network=dynamic.network,
            metric=trial.metric,
            selector_name=name,
            seed=derive_seed(config.seed, "protocol", trial.density, trial.run_index, name),
            hello_interval=config.hello_interval,
            tc_interval=config.tc_interval,
            loss_model=LossModel(
                seed=derive_seed(
                    config.seed, "protocol-loss", trial.density, trial.run_index, name
                ),
                loss_rate=config.loss_rate,
            ),
        )
        sim.attach(dynamic)
        sims[name] = sim

    warmup = warmup_time(config.hello_interval, config.tc_interval)
    with obs.span("protocol_sim"):
        for sim in sims.values():
            sim.run_until(warmup)

    previous_hops = {name: sims[name].next_hops(pairs) for name in selectors}
    matched: Dict[str, List[bool]] = {name: [] for name in selectors}
    staleness: Dict[str, List[float]] = {name: [] for name in selectors}
    flaps: Dict[str, List[Optional[float]]] = {name: [] for name in selectors}
    link_churn: List[float] = []
    for step in range(1, config.timesteps + 1):
        delta = dynamic.advance()
        link_churn.append(float(delta.link_churn))
        horizon = warmup + step * config.step_interval
        for name in selectors:
            sim = sims[name]
            with obs.span("protocol_sim"):
                sim.run_until(horizon)
            analytic = {
                node: frozenset(result.selected)
                for node, result in trial.step_selections(name).items()
            }
            matched[name].append(sim.ans_snapshot() == analytic)
            truth_edges = {
                canonical_edge(node, relay)
                for node, selected in analytic.items()
                for relay in selected
            }
            stale_total = sum(
                sum(1 for edge in links if edge not in truth_edges)
                for links in sim.advertised_link_sets().values()
            )
            staleness[name].append(stale_total / node_count)
            if pairs:
                hops = sim.next_hops(pairs)
                changed = sum(
                    1 for hop, previous in zip(hops, previous_hops[name]) if hop != previous
                )
                flaps[name].append(changed / len(pairs))
                previous_hops[name] = hops
            else:
                flaps[name].append(None)

    convergence = {
        name: _convergence_series(link_churn, matched[name]) for name in selectors
    }
    for sim in sims.values():
        sim.record_telemetry()
    return {
        "node_count": node_count,
        "link_churn": link_churn,
        "convergence": convergence,
        "staleness": staleness,
        "flaps": flaps,
        # Per-selector control-traffic truth (message counts + channel tx/delivery/loss),
        # aggregated by _ProtocolMeasure into every density point's extra["control"].
        "control": {name: sims[name].control_message_counts() for name in selectors},
    }


class _ProtocolMeasure(TimeSeriesMeasure):
    """Shared shape of the protocol measures: one simulated trial, three payload keys.

    Beyond the per-step series pipeline, every density point carries the summed
    per-selector control-traffic counters of its trials in ``extra["control"]``
    (hellos/TCs sent and forwarded, channel transmissions/deliveries/losses), so sinks
    see the protocol *cost* next to the quality series it buys.
    """

    def per_trial(self) -> Callable:
        return _protocol_trial

    def start(self, spec) -> dict:
        state = super().start(spec)
        state["control"] = {
            name: {d: {} for d in spec.densities} for name in spec.selectors
        }
        return state

    def consume(self, state, density: float, payload: dict) -> None:
        super().consume(state, density, payload)
        for name, counts in payload.get("control", {}).items():
            totals = state["control"][name][density]
            for key, value in counts.items():
                totals[key] = totals.get(key, 0) + value

    def density_points(self, state, spec, density: float):
        points = super().density_points(state, spec, density)
        for name, point in points.items():
            point.extra["control"] = dict(state["control"][name][density])
        return points

    def notes(self, spec) -> List[str]:
        return [
            f"protocol sim: hello={spec.hello_interval:g}, tc={spec.tc_interval:g}, "
            f"loss_rate={spec.loss_rate:g} (seeded per-transmission draws)",
            *super().notes(spec),
        ]


@MEASURES.register(
    "convergence-time",
    description="steps from a churn event until simulated tables match ground truth (protocol sim)",
)
class ConvergenceTimeMeasure(_ProtocolMeasure):
    """Protocol re-convergence time after topology churn, per selector."""

    name = "convergence-time"
    payload_key = "convergence"

    def y_label(self, metric) -> str:
        return "steps until re-convergence after churn"


@MEASURES.register(
    "advertised-staleness",
    description="stale advertised links per node vs the live topology (protocol sim)",
)
class AdvertisedStalenessMeasure(_ProtocolMeasure):
    """Stale advertised link-state entries per node, per selector."""

    name = "advertised-staleness"
    payload_key = "staleness"

    def y_label(self, metric) -> str:
        return "stale advertised links per node"


@MEASURES.register(
    "route-flaps",
    description="fraction of sampled pairs whose next hop changed across a step (protocol sim)",
)
class RouteFlapsMeasure(_ProtocolMeasure):
    """Next-hop changes of sampled routes under lossy control traffic, per selector."""

    name = "route-flaps"
    payload_key = "flaps"

    def y_label(self, metric) -> str:
        return "fraction of pairs whose next hop flapped"

    def notes(self, spec) -> List[str]:
        return [
            f"{spec.pairs_per_run} sampled pair(s) per run; a flap = different next hop "
            f"at the source (including gained/lost routes)",
            *super().notes(spec),
        ]
