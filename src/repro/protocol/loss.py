"""The seeded per-link loss/delay model of the lossy control channel.

Every transmission the :class:`~repro.protocol.radio.LossyRadio` attempts is identified
by its directed link and a per-link transmission counter, and the model answers two
questions about it -- is it delivered, and after how long -- as *pure functions* of
``(seed, src, dst, seq)``.  Nothing is drawn from shared generator state: each decision
derives its own :class:`random.Random` through :func:`repro.utils.seeding.spawn_rng`, so
the draw for transmission ``seq`` on link ``src -> dst`` is the same number whether the
trial runs serially, in a ``REPRO_WORKERS`` pool, or in a different process entirely.
That is the contract that keeps protocol sweeps bit-identical serial vs parallel.

``seq`` deliberately is the radio's own per-directed-link transmission counter, *not* an
OLSR message sequence number: message sequence numbers come from a process-wide counter
(:func:`repro.olsr.messages.next_sequence_number`) whose absolute values differ between
worker processes, so keying loss off them would break the determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng


@dataclass(frozen=True)
class LossModel:
    """Per-transmission loss and delay, drawn purely from ``(seed, src, dst, seq)``.

    Attributes
    ----------
    seed:
        Root seed of the channel.  Equal seeds give bit-identical channels across
        processes.
    loss_rate:
        Probability in ``[0, 1)`` that any single transmission is lost.  ``0`` is the
        paper's ideal MAC layer (and skips the draw entirely).
    propagation_delay:
        Base delivery latency of a successful transmission (simulated time units).
    delay_jitter:
        Width of the uniform extra delay added on top of ``propagation_delay``
        (``0`` = fixed latency).
    """

    seed: int
    loss_rate: float = 0.0
    propagation_delay: float = 0.001
    delay_jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.propagation_delay < 0:
            raise ValueError(f"propagation_delay must be non-negative, got {self.propagation_delay}")
        if self.delay_jitter < 0:
            raise ValueError(f"delay_jitter must be non-negative, got {self.delay_jitter}")

    def delivered(self, src: NodeId, dst: NodeId, seq: int) -> bool:
        """Whether transmission ``seq`` on the directed link ``src -> dst`` arrives."""
        if self.loss_rate == 0.0:
            return True
        return spawn_rng(self.seed, "loss", src, dst, seq).random() >= self.loss_rate

    def delay(self, src: NodeId, dst: NodeId, seq: int) -> float:
        """Delivery latency of transmission ``seq`` on the directed link ``src -> dst``."""
        if self.delay_jitter == 0.0:
            return self.propagation_delay
        return self.propagation_delay + spawn_rng(self.seed, "delay", src, dst, seq).uniform(
            0.0, self.delay_jitter
        )
