"""The lossy broadcast channel of the event-driven protocol simulator.

Like :class:`repro.sim.radio.IdealRadio`, transmissions reach the sender's current
neighbors via delivery callbacks scheduled on the shared event queue -- but the network
here may be *live* (a :class:`~repro.mobility.dynamic.DynamicTopology` mutates it in
place between windows, and the neighbor set is read at send time), and every individual
transmission is subjected to the :class:`~repro.protocol.loss.LossModel`.

The radio owns the per-directed-link transmission counters that identify draws: the
``seq`` handed to the loss model is "how many transmissions this radio has attempted on
``src -> dst`` so far", a pure function of the trial's own event history (see
:mod:`repro.protocol.loss` for why OLSR message sequence numbers must not be used).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, Tuple

from repro.obs import runtime as obs
from repro.olsr.messages import Packet
from repro.protocol.loss import LossModel
from repro.sim.engine import Simulator
from repro.topology.network import Network
from repro.utils.ids import NodeId

DeliveryCallback = Callable[[NodeId, Packet], None]


@dataclass
class LossyRadioStatistics:
    """Channel-level counters (transmissions = attempted per-receiver deliveries)."""

    broadcasts: int = 0
    unicasts: int = 0
    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    undeliverable_unicasts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (sweep ``extra`` payloads, telemetry)."""
        return asdict(self)


class LossyRadio:
    """Broadcast medium over a live topology with seeded per-transmission loss/delay."""

    def __init__(
        self,
        network: Network,
        simulator: Simulator,
        deliver: DeliveryCallback,
        loss_model: LossModel,
    ) -> None:
        self.network = network
        self.simulator = simulator
        self.deliver = deliver
        self.loss_model = loss_model
        self.statistics = LossyRadioStatistics()
        self._tx_counts: Dict[Tuple[NodeId, NodeId], int] = {}

    # ------------------------------------------------------------------ transmissions

    def broadcast(self, sender: NodeId, packet: Packet) -> None:
        """Attempt delivery to every *current* neighbor of ``sender``."""
        self.statistics.broadcasts += 1
        for neighbor in sorted(self.network.neighbors(sender)):
            self._transmit(sender, neighbor, packet)

    def unicast(self, sender: NodeId, receiver: NodeId, packet: Packet) -> None:
        """Attempt delivery to ``receiver`` if it is currently within range of ``sender``."""
        self.statistics.unicasts += 1
        if not self.network.has_link(sender, receiver):
            self.statistics.undeliverable_unicasts += 1
            return
        self._transmit(sender, receiver, packet)

    # ------------------------------------------------------------------ internals

    def _transmit(self, src: NodeId, dst: NodeId, packet: Packet) -> None:
        seq = self._tx_counts.get((src, dst), 0)
        self._tx_counts[(src, dst)] = seq + 1
        self.statistics.transmissions += 1
        if not self.loss_model.delivered(src, dst, seq):
            self.statistics.losses += 1
            return

        def deliver() -> None:
            self.statistics.deliveries += 1
            self.deliver(dst, packet)

        self.simulator.schedule_in(self.loss_model.delay(src, dst, seq), deliver)

    # ------------------------------------------------------------------ telemetry

    def record_telemetry(self, prefix: str = "protocol.radio") -> None:
        """Fold the channel counters into the ambient telemetry registry (if enabled).

        Counter values are pure functions of the seeded event history, so they land in
        the deterministic section of the registry snapshot.
        """
        if not obs.enabled():
            return
        for name, value in self.statistics.as_dict().items():
            obs.add(f"{prefix}.{name}", value)
