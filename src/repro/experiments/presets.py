"""The paper's Figures 6-9 as registered spec presets.

Each preset is a zero-argument factory returning the *paper-profile*
:class:`~repro.experiments.spec.ExperimentSpec` of one evaluation figure (100 runs at the
paper's densities).  The figure wrappers and the CLIs narrow a preset to a profile with
:meth:`ExperimentSpec.with_sweep_config`; everything else about the figure -- its id,
title, measure kind and metric -- lives here, so nothing dispatches on figure numbers or
hard-codes ``"bandwidth" if number in (6, 8)`` any more.

======  =========  ==========  ===============================================
Preset  Measure    Metric      What it shows
======  =========  ==========  ===============================================
fig6    ans-size   bandwidth   advertised-set size per node vs density
fig7    ans-size   delay       advertised-set size per node vs density
fig8    overhead   bandwidth   bandwidth overhead vs the centralized optimum
fig9    overhead   delay       delay overhead vs the centralized optimum
======  =========  ==========  ===============================================
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.config import BANDWIDTH_DENSITIES, DELAY_DENSITIES
from repro.experiments.spec import ExperimentSpec
from repro.registry import PRESETS
from repro.topology.generators import FieldSpec


@PRESETS.register("fig6", description="Figure 6: advertised-set size vs density, bandwidth")
def fig6_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="fig6",
        title="Size of the set advertised in TC messages (bandwidth)",
        measure="ans-size",
        metric="bandwidth",
        densities=BANDWIDTH_DENSITIES,
    )


@PRESETS.register("fig7", description="Figure 7: advertised-set size vs density, delay")
def fig7_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="fig7",
        title="Size of the set advertised in TC messages (delay)",
        measure="ans-size",
        metric="delay",
        densities=DELAY_DENSITIES,
    )


@PRESETS.register("fig8", description="Figure 8: bandwidth overhead vs the centralized optimum")
def fig8_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="fig8",
        title="Bandwidth overhead vs centralized optimum",
        measure="overhead",
        metric="bandwidth",
        densities=BANDWIDTH_DENSITIES,
    )


@PRESETS.register("fig9", description="Figure 9: delay overhead vs the centralized optimum")
def fig9_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="fig9",
        title="Delay overhead vs centralized optimum",
        measure="overhead",
        metric="delay",
        densities=DELAY_DENSITIES,
    )


@PRESETS.register(
    "mobility-churn",
    description="ANS churn per step under random-waypoint mobility (dynamic sweep)",
)
def mobility_churn_spec() -> ExperimentSpec:
    """Beyond the paper's static snapshots: how turbulent is each protocol's advertised
    topology when nodes move?  Densities are node counts (the mobility models deploy an
    exact number of nodes so churn statistics are not confounded by population noise); on
    the 600x600 field they span mean degrees ~5-10, the lower half of the paper's range."""
    return ExperimentSpec(
        experiment_id="mobility-churn",
        title="Advertised-topology churn under random-waypoint mobility",
        measure="ans-churn",
        metric="bandwidth",
        topology="rwp",
        densities=(60.0, 90.0, 120.0),
        runs=20,
        timesteps=10,
        step_interval=1.0,
        field=FieldSpec(width=600.0, height=600.0, radius=100.0),
    )


@PRESETS.register(
    "mobility-stability",
    description="first-hop route stability per step under random-waypoint mobility (dynamic sweep)",
)
def mobility_stability_spec() -> ExperimentSpec:
    """The user-visible face of churn: what fraction of routes survive one timestep."""
    return ExperimentSpec(
        experiment_id="mobility-stability",
        title="First-hop route stability under random-waypoint mobility",
        measure="route-stability",
        metric="bandwidth",
        topology="rwp",
        densities=(60.0, 90.0, 120.0),
        runs=20,
        pairs_per_run=5,
        timesteps=10,
        step_interval=1.0,
        field=FieldSpec(width=600.0, height=600.0, radius=100.0),
    )


@PRESETS.register(
    "protocol-convergence",
    description="protocol re-convergence time after churn under lossy HELLO/TC traffic (protocol sim)",
)
def protocol_convergence_spec() -> ExperimentSpec:
    """Event-driven counterpart of the analytic overhead comparison: per-node OLSR agents
    exchange real HELLO/TC traffic over a 10%-lossy channel while links churn, and the
    measure reports how many step windows each protocol needs to re-converge on ground
    truth.  Each step window spans two emission rounds so two-hop weight propagation
    (one HELLO hop of lag per hop) fits inside one window; densities are node counts,
    as in the mobility presets."""
    return ExperimentSpec(
        experiment_id="protocol-convergence",
        title="Protocol re-convergence after churn under lossy control traffic",
        measure="convergence-time",
        metric="bandwidth",
        topology="churn",
        densities=(40.0, 60.0),
        runs=10,
        pairs_per_run=5,
        timesteps=8,
        step_interval=2.0,
        hello_interval=1.0,
        tc_interval=1.0,
        loss_rate=0.1,
        field=FieldSpec(width=600.0, height=600.0, radius=100.0),
    )


#: The figure numbers of the paper's evaluation section, keyed to their preset names.
FIGURE_PRESETS: Dict[int, str] = {6: "fig6", 7: "fig7", 8: "fig8", 9: "fig9"}


def figure_spec(number: int) -> ExperimentSpec:
    """The paper-profile spec preset of one figure by number (6, 7, 8 or 9)."""
    try:
        preset_name = FIGURE_PRESETS[number]
    except KeyError as exc:
        raise KeyError(
            f"the paper has no result figure {number}; choose one of {sorted(FIGURE_PRESETS)}"
        ) from exc
    return PRESETS.create(preset_name)
