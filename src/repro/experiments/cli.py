"""Command-line interface for regenerating the paper's figures.

Installed as ``repro-figures`` (see ``pyproject.toml``).  Examples::

    repro-figures --figure 6 --profile quick
    repro-figures --all --profile paper --runs 100 --output results.txt --json results.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.experiments.config import config_for_profile
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.reporting import render_report, write_json, write_report
from repro.experiments.results import ExperimentResult


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate the evaluation figures of the QOLSR/FNBP paper.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", type=int, choices=sorted(FIGURES), help="figure number to run")
    group.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--profile",
        choices=("paper", "quick", "smoke"),
        default="quick",
        help="parameter profile (paper = 100 runs at the paper's densities)",
    )
    parser.add_argument("--runs", type=int, default=None, help="override the number of runs per density")
    parser.add_argument("--pairs", type=int, default=None, help="override source/destination pairs per run")
    parser.add_argument("--seed", type=int, default=None, help="override the root random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per sweep (0 = one per CPU; default: $REPRO_WORKERS or serial); "
        "results are identical to a serial run",
    )
    parser.add_argument("--output", default=None, help="write the text report to this file")
    parser.add_argument("--json", dest="json_output", default=None, help="write results as JSON to this file")
    parser.add_argument("--quiet", action="store_true", help="do not print per-run progress")
    return parser


def _config_for(args: argparse.Namespace, metric_name: str):
    config = config_for_profile(args.profile, metric_name)
    overrides = {}
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.pairs is not None:
        overrides["pairs_per_run"] = args.pairs
    if args.seed is not None:
        overrides["seed"] = args.seed
    return config.with_overrides(**overrides) if overrides else config


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    progress = None if args.quiet else lambda message: print(message, file=sys.stderr)

    figure_numbers = sorted(FIGURES) if args.all else [args.figure]
    results: Dict[int, ExperimentResult] = {}
    for number in figure_numbers:
        metric_name = "bandwidth" if number in (6, 8) else "delay"
        config = _config_for(args, metric_name)
        results[number] = run_figure(number, config, progress=progress, workers=args.workers)

    report = render_report(results, header=f"profile={args.profile}")
    print(report)
    if args.output:
        write_report(results, args.output, header=f"profile={args.profile}")
    if args.json_output:
        write_json(results, args.json_output)
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    raise SystemExit(main())
