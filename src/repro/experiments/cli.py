"""Command-line interface for regenerating the paper's figures.

Installed as ``repro-figures`` (see ``pyproject.toml``).  Examples::

    repro-figures --figure 6 --profile quick
    repro-figures --all --profile paper --runs 100 --output results.txt --json results.json
    repro-figures --figure 7 --profile smoke --densities 5,8 --node-sample 30

This is a thin preset wrapper over the generic spec-driven engine: each figure is a
registered :class:`~repro.experiments.spec.ExperimentSpec` preset (so the metric of a
figure comes from its preset, not from a figure-number dispatch), narrowed to the chosen
profile and overrides, and the file outputs flow through the streaming sink API
(:mod:`repro.experiments.sinks`).  Arbitrary non-figure sweeps belong to ``repro-sweep``
(:mod:`repro.experiments.sweep_cli`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.experiments.config import config_for_profile
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.presets import figure_spec
from repro.experiments.reporting import render_report
from repro.experiments.results import ExperimentResult
from repro.experiments.sinks import JsonSink, ResultSink, TextReportSink
from repro.experiments.sweep_cli import parse_densities, parse_node_sample, NODE_SAMPLE_UNSET


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate the evaluation figures of the QOLSR/FNBP paper.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", type=int, choices=sorted(FIGURES), help="figure number to run")
    group.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--profile",
        choices=("paper", "quick", "smoke"),
        default="quick",
        help="parameter profile (paper = 100 runs at the paper's densities)",
    )
    parser.add_argument("--runs", type=int, default=None, help="override the number of runs per density")
    parser.add_argument("--pairs", type=int, default=None, help="override source/destination pairs per run")
    parser.add_argument("--seed", type=int, default=None, help="override the root random seed")
    parser.add_argument(
        "--densities",
        type=parse_densities,
        default=None,
        help="override the swept densities (comma-separated, e.g. 10,15,20)",
    )
    parser.add_argument(
        "--node-sample",
        type=parse_node_sample,
        default=NODE_SAMPLE_UNSET,
        help="override nodes sampled per topology in the set-size figures (0 or 'all' = every node)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per sweep (0 = one per CPU; default: $REPRO_WORKERS or serial); "
        "results are identical to a serial run",
    )
    parser.add_argument("--output", default=None, help="write the text report to this file")
    parser.add_argument("--json", dest="json_output", default=None, help="write results as JSON to this file")
    parser.add_argument("--quiet", action="store_true", help="do not print per-run progress")
    return parser


def _config_for(args: argparse.Namespace, metric_name: str):
    config = config_for_profile(args.profile, metric_name)
    overrides = {}
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.pairs is not None:
        overrides["pairs_per_run"] = args.pairs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.densities is not None:
        overrides["densities"] = args.densities
    if args.node_sample is not NODE_SAMPLE_UNSET:
        overrides["node_sample"] = args.node_sample
    return config.with_overrides(**overrides) if overrides else config


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    progress = None if args.quiet else lambda message: print(message, file=sys.stderr)

    header = f"profile={args.profile}"
    sinks: List[ResultSink] = []
    if args.output:
        sinks.append(TextReportSink(args.output, header=header))
    if args.json_output:
        sinks.append(JsonSink(args.json_output))

    figure_numbers = sorted(FIGURES) if args.all else [args.figure]
    results: Dict[int, ExperimentResult] = {}
    try:
        for number in figure_numbers:
            # The figure's metric comes from its registered spec preset.
            config = _config_for(args, figure_spec(number).metric)
            results[number] = run_figure(number, config, progress=progress, workers=args.workers)
            for sink in sinks:
                sink.on_result(results[number])
    except KeyboardInterrupt:
        # Buffered report sinks stay unwritten on purpose (never clobber good outputs
        # with a partial report); resumable runs are repro-sweep --jsonl territory.
        print(
            "interrupted -- no output files were written (repro-figures does not "
            "checkpoint; use repro-sweep --jsonl/--resume for resumable sweeps)",
            file=sys.stderr,
        )
        return 130
    # The report sinks buffer and write at close; closing only after every figure
    # succeeded means a failed run never clobbers existing output files with a partial
    # report (the pre-sink CLI had the same all-or-nothing behavior).
    for sink in sinks:
        sink.close()

    print(render_report(results, header=header))
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    raise SystemExit(main())
