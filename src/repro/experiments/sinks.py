"""Streaming result sinks.

The generic engine (:func:`repro.experiments.engine.run_experiment`) does not only
materialize a monolithic :class:`ExperimentResult` at the end of a sweep -- while running it
emits a stream of events to any number of :class:`ResultSink` instances.  That is what
per-density checkpointing and long paper-profile runs need: with a :class:`JsonlSink`
attached, a sweep that dies at density 25 leaves every finished density on disk.

Sink contract
-------------
For each experiment the engine calls, in order:

1. ``on_sweep_start(spec)`` -- once, before any trial runs.
2. ``on_trial(spec, density, run_index, payload, message)`` -- once per trial, in run
   order (also under ``REPRO_WORKERS`` parallelism; the engine re-serializes events).
   ``payload`` is the measure's plain-data trial measurement; ``message`` is the measure's
   human-readable progress line or ``None``.  Progress reporting *is* this event: the
   legacy ``progress=callable`` keyword is a :class:`ProgressSink` wrapping the callable.
   Under ``on_error="skip"`` a trial that exhausted its retries emits
   ``on_trial_error(spec, density, run_index, failure)`` in its slot instead (``failure``
   is a :class:`~repro.experiments.runner.TrialFailure`).
3. ``on_density(spec, density, points)`` -- once per density, as soon as it is fully
   aggregated, with ``{selector_name: SeriesPoint}``.
4. ``on_metrics(spec, snapshot)`` -- only when telemetry is enabled (``--metrics`` /
   ``REPRO_METRICS`` / ``run_experiment(metrics=True)``): a cumulative
   :class:`~repro.obs.registry.MetricsRegistry` snapshot immediately after each
   ``on_density`` (``snapshot["density"]`` names the density) and one final run-total
   with ``density=None`` just before ``on_result``.  See ``docs/observability.md``.
5. ``on_result(result)`` -- once, with the complete :class:`ExperimentResult`.

``on_warning(spec, message)`` may interleave anywhere after ``on_sweep_start``: the engine
emits it when it quarantines a raising sink (see below).  A sink whose handler raises is
*quarantined*, not fatal -- the engine drops it from the sweep and tells the surviving
sinks via ``on_warning``, so one broken consumer cannot kill a long run.

``close()`` is called by whoever created the sink, not by the engine -- one sink may span
several experiments (``repro-figures --all`` feeds all four figures through the same
text/JSON sinks).  The CLIs close the buffered report sinks only after a fully successful
run (so a failure never clobbers existing output files with a partial report) but close
the incremental JSONL sink unconditionally (its per-density checkpoints surviving a dead
run is the point).  Every handler has a no-op default, so a sink overrides only what it
consumes.  Sinks must not mutate ``spec``, ``payload`` or ``points``.

Built-ins (registered in :data:`repro.registry.SINKS`): ``text`` writes the fixed-width
report at close, ``json`` the results-keyed JSON document at close, ``jsonl`` one
self-describing JSON line per event *incrementally* (flushed per line), ``progress``
forwards progress messages to a writer callable, and ``metrics`` streams the telemetry
snapshots of ``on_metrics`` as their own JSONL file.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO, Union

from repro.experiments.reporting import render_report, write_json, write_report
from repro.experiments.results import ExperimentResult, SeriesPoint
from repro.obs.report import render_metrics_summary
from repro.registry import SINKS


class ResultSink:
    """Base class of every streaming result consumer (all handlers default to no-ops)."""

    def on_sweep_start(self, spec) -> None:
        pass

    def on_trial(self, spec, density: float, run_index: int, payload: dict, message: Optional[str]) -> None:
        pass

    def on_trial_error(self, spec, density: float, run_index: int, failure) -> None:
        """One trial exhausted its retries (``failure`` is a ``TrialFailure``)."""

    def on_warning(self, spec, message: str) -> None:
        """A non-fatal engine warning (e.g. another sink was quarantined)."""

    def on_density(self, spec, density: float, points: Dict[str, SeriesPoint]) -> None:
        pass

    def on_metrics(self, spec, snapshot: dict) -> None:
        """A cumulative telemetry snapshot (only emitted when telemetry is enabled)."""

    def on_result(self, result: ExperimentResult) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _format_duration(seconds: float) -> str:
    """A short human-readable duration (``42.3s``, ``3m05s``, ``2h14m``)."""
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


@SINKS.register("progress", description="forwards per-trial progress lines to a writer callable")
class ProgressSink(ResultSink):
    """Adapter from the trial event stream to a ``write(message)`` callable.

    This is how the legacy ``progress=`` callbacks ride on the sink API: the engine wraps
    them in a ``ProgressSink``, and the CLIs build one writing to stderr unless ``--quiet``.

    With ``throughput=True`` (on for the CLIs' stderr sink) each finished density also
    reports the sweep's trials/sec and an ETA extrapolated from the completed densities'
    share of wall-clock time.  Off by default: the numbers are wall-clock, so enabling
    them makes otherwise-identical runs' progress streams differ (everything else a
    ``ProgressSink`` writes is deterministic).  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        write: Callable[[str], None],
        throughput: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.write = write
        self.throughput = throughput
        self.clock = clock
        self._started: Optional[float] = None
        self._trials_seen = 0
        self._densities_done = 0
        self._densities_total = 0

    def on_sweep_start(self, spec) -> None:
        if self.throughput:
            self._started = self.clock()
            self._trials_seen = 0
            self._densities_done = 0
            self._densities_total = len(spec.densities)

    def on_trial(self, spec, density, run_index, payload, message) -> None:
        self._trials_seen += 1
        if message is not None:
            self.write(message)

    def on_trial_error(self, spec, density, run_index, failure) -> None:
        self._trials_seen += 1
        self.write(
            f"[{spec.experiment_id}] density={density:g} run={run_index + 1} FAILED "
            f"after {failure.attempts} attempt(s): {failure.error_type}: {failure.error}"
        )

    def on_warning(self, spec, message) -> None:
        self.write(f"warning: {message}")

    def on_density(self, spec, density, points) -> None:
        if not self.throughput or self._started is None:
            return
        self._densities_done += 1
        elapsed = max(self.clock() - self._started, 1e-9)
        rate = self._trials_seen / elapsed
        remaining = self._densities_total - self._densities_done
        eta = (elapsed / self._densities_done) * remaining
        self.write(
            f"[{spec.experiment_id}] density={density:g} finished "
            f"({self._densities_done}/{self._densities_total} densities) | "
            f"{rate:.1f} trials/s | ETA {_format_duration(eta)}"
        )


class MemorySink(ResultSink):
    """Collects every completed :class:`ExperimentResult` in ``results`` (mainly for tests)."""

    def __init__(self) -> None:
        self.results: List[ExperimentResult] = []

    def on_result(self, result: ExperimentResult) -> None:
        self.results.append(result)


@SINKS.register("text", description="fixed-width text report, written when the sink closes")
class TextReportSink(MemorySink):
    """Accumulates results and writes the stitched text report (as ``write_report``) at close.

    When telemetry is enabled the run-total ``on_metrics`` snapshot of each experiment is
    appended below the report as a human-readable summary table; with telemetry off (no
    ``on_metrics`` events) the written file is byte-identical to the classic report.
    """

    def __init__(self, path: Union[str, Path], header: str = "") -> None:
        super().__init__()
        self.path = Path(path)
        self.header = header
        self._metrics: Dict[str, dict] = {}

    def on_metrics(self, spec, snapshot) -> None:
        # Snapshots are cumulative; keeping the latest per experiment leaves the
        # run-total (density=None) one in place at close.
        self._metrics[spec.experiment_id] = snapshot

    def close(self) -> None:
        if not self._metrics:
            write_report(self.results, self.path, header=self.header)
            return
        sections = [render_report(self.results, header=self.header).rstrip("\n")]
        for experiment_id in sorted(self._metrics):
            summary = render_metrics_summary(self._metrics[experiment_id])
            sections.append(f"[{experiment_id}] {summary}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("\n\n".join(sections) + "\n", encoding="utf-8")


@SINKS.register("json", description="results keyed by experiment id as one JSON document at close")
class JsonSink(MemorySink):
    """Accumulates results and writes the experiment-keyed JSON document (as ``write_json``)
    at close."""

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = Path(path)

    def close(self) -> None:
        write_json(self.results, self.path)


@SINKS.register("jsonl", description="one JSON line per event, flushed incrementally (checkpointing)")
class JsonlSink(ResultSink):
    """Appends one self-describing JSON line per event, flushed as soon as it happens.

    Event lines (each carries ``event`` and ``experiment_id``):

    * ``sweep_start`` -- the full spec (``spec``), so the file is self-contained;
    * ``trial`` -- ``density``, ``run`` and the raw measure ``payload``;
    * ``trial_error`` -- a trial that exhausted its retries under ``on_error="skip"``
      (``density``, ``run``, ``error``, ``error_type``, ``attempts``);
    * ``warning`` -- a non-fatal engine warning (``message``), e.g. a quarantined sink;
    * ``density`` -- the per-selector point summaries of one finished density
      (``series: {name: {density, mean, std, count, ...}}``), the checkpointing unit;
    * ``result`` -- the complete result dictionary.

    ``trial`` lines can be disabled (``trials=False``) to keep long-run files compact
    while retaining the per-density checkpoints.  The stream is exactly what
    :func:`repro.experiments.checkpoint.load_checkpoint` reads back to resume a killed
    sweep (see ``docs/events.md`` for the resumability contract).
    """

    def __init__(self, path: Union[str, Path], trials: bool = True) -> None:
        self.path = Path(path)
        self.trials = trials
        self._stream: Optional[TextIO] = None

    def ensure_writable(self) -> None:
        """Fail fast (before any sweep work) if the sink's path cannot be written.

        Probes by appending nothing, so an existing checkpoint stream at the same path --
        the ``--resume`` case -- is left intact; the real stream still truncates lazily on
        the first write.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8"):
            pass

    def _write(self, record: dict) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w", encoding="utf-8")
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()

    def on_sweep_start(self, spec) -> None:
        self._write(
            {"event": "sweep_start", "experiment_id": spec.experiment_id, "spec": spec.to_dict()}
        )

    def on_trial(self, spec, density, run_index, payload, message) -> None:
        if self.trials:
            self._write(
                {
                    "event": "trial",
                    "experiment_id": spec.experiment_id,
                    "density": density,
                    "run": run_index,
                    "payload": payload,
                }
            )

    def on_trial_error(self, spec, density, run_index, failure) -> None:
        self._write(
            {
                "event": "trial_error",
                "experiment_id": spec.experiment_id,
                "density": density,
                "run": run_index,
                "error": failure.error,
                "error_type": failure.error_type,
                "attempts": failure.attempts,
            }
        )

    def on_warning(self, spec, message) -> None:
        self._write(
            {"event": "warning", "experiment_id": spec.experiment_id, "message": message}
        )

    def on_density(self, spec, density, points) -> None:
        self._write(
            {
                "event": "density",
                "experiment_id": spec.experiment_id,
                "density": density,
                "series": {name: point.to_dict() for name, point in points.items()},
            }
        )

    def on_result(self, result: ExperimentResult) -> None:
        self._write(
            {"event": "result", "experiment_id": result.experiment_id, "result": result.to_dict()}
        )

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class MetricsCapture(ResultSink):
    """Collects every ``on_metrics`` snapshot in ``snapshots`` (tests, CLI summaries)."""

    def __init__(self) -> None:
        self.snapshots: List[dict] = []

    def on_metrics(self, spec, snapshot) -> None:
        self.snapshots.append(snapshot)

    @property
    def last(self) -> Optional[dict]:
        """The most recent snapshot (the run-total one after a finished sweep)."""
        return self.snapshots[-1] if self.snapshots else None


@SINKS.register(
    "metrics", description="one JSON line per on_metrics telemetry snapshot (--metrics)"
)
class MetricsJsonlSink(JsonlSink):
    """Streams telemetry snapshots as their own JSONL file, one line per ``on_metrics``.

    Each line carries ``event: "metrics"``, the ``experiment_id``, the snapshot's
    ``density`` (``null`` on the final run-total line) and the four registry sections.
    Kept separate from the main :class:`JsonlSink` stream so checkpoint files stay
    byte-identical with telemetry on; the checkpoint loader would tolerate interleaved
    ``metrics`` lines, but nothing needs to pay for them.  Deterministic sections of the
    lines are bit-identical serial vs ``REPRO_WORKERS=N``; ``spans`` are wall-clock.
    """

    def on_sweep_start(self, spec) -> None:
        pass

    def on_trial(self, spec, density, run_index, payload, message) -> None:
        pass

    def on_trial_error(self, spec, density, run_index, failure) -> None:
        pass

    def on_warning(self, spec, message) -> None:
        pass

    def on_density(self, spec, density, points) -> None:
        pass

    def on_result(self, result: ExperimentResult) -> None:
        pass

    def on_metrics(self, spec, snapshot) -> None:
        self._write({"event": "metrics", "experiment_id": spec.experiment_id, **snapshot})


def stderr_progress_sink() -> ProgressSink:
    """The CLIs' default progress sink (one line per trial to stderr, with throughput)."""
    return ProgressSink(lambda message: print(message, file=sys.stderr), throughput=True)
