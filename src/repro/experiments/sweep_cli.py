"""Generic spec-driven sweep command-line interface.

Installed as ``repro-sweep`` (see ``pyproject.toml``).  Runs *any* experiment the registries
can express -- not just the paper's four figures::

    repro-sweep --list                                   # what can I plug together?
    repro-sweep --spec examples/specs/custom_delay_sweep.json --jsonl out.jsonl
    repro-sweep --preset fig6 --densities 12,18,24 --runs 10 --json fig6_custom.json
    repro-sweep --measure ans-size --metric jitter --densities 10,20 --runs 2 \\
        --selectors fnbp,olsr-mpr --id jitter-ans --title "Jitter ANS sizes"

A sweep is described by an :class:`~repro.experiments.spec.ExperimentSpec`, obtained from
``--spec file.json``, from a registered preset (``--preset fig8``), or built from scratch
(requires at least ``--measure``, ``--metric`` and ``--densities``); every per-field
override flag applies on top.  Results stream through the sink API: the text table always
prints to stdout, ``--output`` adds a text-report file, ``--json`` the experiment-keyed
JSON document, and ``--jsonl`` an incremental line-per-event file whose per-density
checkpoints survive a killed run.

A killed run is not a lost run: ``repro-sweep --resume out.jsonl`` reads the stream back
(:mod:`repro.experiments.checkpoint`), skips the finished densities and rewrites the
stream seamlessly -- the resumed output files are byte-identical to an uninterrupted
run's.  A spec-hash guard refuses to resume under a different spec.  ``--on-error skip``
lets a long sweep outlive trials that fail every retry (structured ``trial_error`` events
plus per-point failure counts instead of an abort); ctrl-C exits with code 130 after
flushing the checkpoint stream and printing where it lives.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.experiments.checkpoint import Checkpoint, CheckpointError, load_checkpoint, spec_hash
from repro.experiments.engine import run_experiment
from repro.experiments.reporting import render_report
from repro.experiments.sinks import (
    JsonlSink,
    JsonSink,
    MetricsCapture,
    MetricsJsonlSink,
    ResultSink,
    TextReportSink,
    stderr_progress_sink,
)
from repro.experiments.spec import ExperimentSpec
from repro.obs import resolve_metrics
from repro.obs.report import build_profile, render_metrics_summary
from repro.registry import ALL_REGISTRIES, PRESETS


def parse_name_list(text: str) -> Tuple[str, ...]:
    """A comma-separated list of registry names -> tuple (``"a,b"`` -> ``("a", "b")``)."""
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(f"expected a comma-separated list of names, got {text!r}")
    return names


def parse_densities(text: str) -> Tuple[float, ...]:
    """A comma-separated density list -> tuple of floats (``"10,15"`` -> ``(10.0, 15.0)``)."""
    try:
        densities = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}") from exc
    if not densities:
        raise argparse.ArgumentTypeError(f"expected at least one density, got {text!r}")
    return densities


#: Sentinel distinguishing "--node-sample absent" from "--node-sample all" (which parses
#: to None, the spec's every-node value).
NODE_SAMPLE_UNSET = object()


def parse_node_sample(text: str) -> Optional[int]:
    """Nodes sampled per topology; ``0`` or ``all`` means every node (``None``)."""
    if text.strip().lower() == "all":
        return None
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected an integer or 'all', got {text!r}") from exc
    return None if value == 0 else value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run an arbitrary spec-driven density sweep against the plugin registries.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--spec", default=None, help="load the experiment spec from this JSON file")
    source.add_argument("--preset", default=None, choices=None, help="start from a registered spec preset (e.g. fig6)")
    parser.add_argument("--list", action="store_true", help="list every registry's entries and exit")
    parser.add_argument(
        "--resume",
        default=None,
        metavar="JSONL",
        help="resume a killed sweep from this JSONL checkpoint stream (finished densities "
        "are skipped and re-emitted; without --spec/--preset the spec comes from the "
        "stream itself, otherwise it must hash-match the stream's); also the default "
        "--jsonl output path",
    )

    overrides = parser.add_argument_group("spec field overrides")
    overrides.add_argument("--id", dest="experiment_id", default=None, help="experiment id (series key in JSON outputs)")
    overrides.add_argument("--title", default=None, help="human-readable experiment title")
    overrides.add_argument("--measure", default=None, help="measure kind (registry name, e.g. ans-size, overhead)")
    overrides.add_argument("--metric", default=None, help="QoS metric (registry name, e.g. bandwidth, delay)")
    overrides.add_argument("--topology", default=None, help="topology model (registry name, e.g. poisson)")
    overrides.add_argument(
        "--selectors", type=parse_name_list, default=None, help="comma-separated selector registry names"
    )
    overrides.add_argument(
        "--densities", type=parse_densities, default=None, help="comma-separated density values to sweep"
    )
    overrides.add_argument("--runs", type=int, default=None, help="independent topologies per density")
    overrides.add_argument("--pairs", type=int, default=None, help="source/destination pairs per run")
    overrides.add_argument(
        "--node-sample",
        type=parse_node_sample,
        default=NODE_SAMPLE_UNSET,
        help="nodes sampled per topology in set-size measures (0 or 'all' = every node)",
    )
    overrides.add_argument("--seed", type=int, default=None, help="root random seed")
    overrides.add_argument(
        "--timesteps",
        type=int,
        default=None,
        help="timesteps each trial's topology advances through (dynamic sweeps; 0 = static)",
    )
    overrides.add_argument(
        "--step-interval",
        type=float,
        default=None,
        help="simulated time units per timestep (dynamic sweeps)",
    )
    overrides.add_argument(
        "--loss-rate",
        dest="loss_rate",
        type=float,
        default=None,
        help="control-channel loss probability in [0, 1) (protocol measures)",
    )
    overrides.add_argument(
        "--hello-interval",
        dest="hello_interval",
        type=float,
        default=None,
        help="simulated HELLO period in time units (protocol measures)",
    )
    overrides.add_argument(
        "--tc-interval",
        dest="tc_interval",
        type=float,
        default=None,
        help="simulated TC period in time units (protocol measures)",
    )

    outputs = parser.add_argument_group("outputs (result sinks)")
    outputs.add_argument("--output", default=None, help="write the text report to this file")
    outputs.add_argument("--json", dest="json_output", default=None, help="write results as JSON to this file")
    outputs.add_argument(
        "--jsonl",
        dest="jsonl_output",
        default=None,
        help="stream events incrementally to this JSONL file (per-density checkpoints)",
    )

    telemetry = parser.add_argument_group("telemetry (off by default; see docs/observability.md)")
    telemetry.add_argument(
        "--metrics",
        action="store_true",
        help="enable the telemetry layer (deterministic counters + wall-clock spans; "
        "also via REPRO_METRICS=1) and print the end-of-run summary table",
    )
    telemetry.add_argument(
        "--metrics-jsonl",
        dest="metrics_jsonl",
        default=None,
        metavar="JSONL",
        help="stream on_metrics telemetry snapshots to this JSONL file (implies --metrics)",
    )
    telemetry.add_argument(
        "--profile-trials",
        dest="profile_trials",
        default=None,
        metavar="JSON",
        help="write the per-phase span-histogram profile of the run to this JSON file, "
        "diffable against BENCH_selection.json timings (implies --metrics)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per sweep (0 = one per CPU; default: $REPRO_WORKERS or serial); "
        "results are identical to a serial run",
    )
    parser.add_argument(
        "--on-error",
        choices=("fail", "skip"),
        default="fail",
        help="fate of a trial that fails every retry: 'fail' aborts the sweep (default), "
        "'skip' records a structured trial_error event plus per-point failure counts and "
        "lets the sweep complete",
    )
    parser.add_argument("--quiet", action="store_true", help="do not print per-run progress")
    return parser


def render_registries() -> str:
    """The ``--list`` output: every registry section with its entries and descriptions.

    Sections are emitted in sorted section-name order and entries in sorted entry order,
    independent of registration or ``ALL_REGISTRIES`` construction order, so the output is
    stable enough to golden-test (``tests/test_sweep_cli_and_sinks.py`` pins it against
    ``tests/data/sweep_list_golden.txt``).
    """
    lines: List[str] = []
    for section, registry in sorted(ALL_REGISTRIES.items()):
        lines.append(f"{section} ({registry.kind} registry):")
        descriptions = registry.describe()
        if not descriptions:
            lines.append("  (empty)")
        width = max((len(name) for name in descriptions), default=0)
        for name, description in descriptions.items():
            suffix = f"  {description}" if description else ""
            lines.append(f"  {name.ljust(width)}{suffix}")
    return "\n".join(lines)


def _base_spec(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    checkpoint: Optional[Checkpoint] = None,
) -> ExperimentSpec:
    if args.spec is not None:
        return ExperimentSpec.load(args.spec)
    if args.preset is not None:
        return PRESETS.create(args.preset)
    if checkpoint is not None:
        # --resume alone: the stream is self-contained, its sweep_start spec is the spec.
        return checkpoint.spec
    missing = [flag for flag, value in (("--measure", args.measure), ("--metric", args.metric), ("--densities", args.densities)) if value is None]
    if missing:
        parser.error(
            "without --spec or --preset, a sweep needs at least "
            + ", ".join(missing)
            + " (see --list for registry contents)"
        )
    return ExperimentSpec(
        experiment_id=args.experiment_id or "sweep",
        title=args.title or "Ad-hoc sweep",
        measure=args.measure,
        metric=args.metric,
        densities=args.densities,
    )


def _apply_overrides(spec: ExperimentSpec, args: argparse.Namespace) -> ExperimentSpec:
    overrides = {}
    for spec_field, value in (
        ("experiment_id", args.experiment_id),
        ("title", args.title),
        ("measure", args.measure),
        ("metric", args.metric),
        ("topology", args.topology),
        ("selectors", args.selectors),
        ("densities", args.densities),
        ("runs", args.runs),
        ("pairs_per_run", args.pairs),
        ("seed", args.seed),
        ("timesteps", args.timesteps),
        ("step_interval", args.step_interval),
        ("loss_rate", args.loss_rate),
        ("hello_interval", args.hello_interval),
        ("tc_interval", args.tc_interval),
    ):
        if value is not None:
            overrides[spec_field] = value
    if args.node_sample is not NODE_SAMPLE_UNSET:
        overrides["node_sample"] = args.node_sample
    return spec.with_overrides(**overrides) if overrides else spec


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(render_registries())
        return 0

    checkpoint: Optional[Checkpoint] = None
    if args.resume:
        try:
            checkpoint = load_checkpoint(args.resume)
        except (CheckpointError, OSError) as exc:
            parser.error(f"cannot resume: {exc}")

    try:
        spec = _apply_overrides(_base_spec(args, parser, checkpoint), args).validate_names()
    except (KeyError, ValueError, OSError) as exc:
        # Unknown registry names, malformed spec files and bad field values all carry
        # self-explanatory messages (the registry errors name their known entries).
        message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else str(exc)
        parser.error(message)

    if checkpoint is not None and spec_hash(spec) != checkpoint.spec_hash:
        # The guard the engine would also apply -- surfaced here as a CLI error so a
        # mismatched --spec/--preset/override never even starts a sweep.
        parser.error(
            f"refusing to resume {args.resume}: the requested spec does not match the "
            f"one the stream was written by (spec-hash {spec_hash(spec)[:12]}... vs "
            f"{checkpoint.spec_hash[:12]}...); drop the conflicting flags or start a "
            f"fresh sweep without --resume"
        )

    try:
        # --metrics/--metrics-jsonl/--profile-trials force telemetry on; otherwise the
        # REPRO_METRICS environment variable decides (off when unset).
        requested = bool(args.metrics or args.metrics_jsonl or args.profile_trials)
        metrics_enabled = resolve_metrics(True if requested else None)
    except ValueError as exc:
        parser.error(str(exc))

    sinks: List[ResultSink] = []
    if not args.quiet:
        sinks.append(stderr_progress_sink())
    if args.output:
        sinks.append(TextReportSink(args.output, header=f"spec={spec.experiment_id}"))
    if args.json_output:
        sinks.append(JsonSink(args.json_output))
    jsonl_sink: Optional[JsonlSink] = None
    jsonl_path = args.jsonl_output or args.resume
    if jsonl_path:
        jsonl_sink = JsonlSink(jsonl_path)
        try:
            # Fail fast -- before any trial runs -- rather than losing a sweep to an
            # unwritable path at the first checkpoint flush.  (The probe appends nothing,
            # so a --resume stream at the same path is untouched until re-emission.)
            jsonl_sink.ensure_writable()
        except OSError as exc:
            parser.error(f"cannot write the JSONL stream {jsonl_path}: {exc}")
        sinks.append(jsonl_sink)
    metrics_capture: Optional[MetricsCapture] = None
    metrics_sink: Optional[MetricsJsonlSink] = None
    if metrics_enabled:
        metrics_capture = MetricsCapture()
        sinks.append(metrics_capture)
        if args.metrics_jsonl:
            metrics_sink = MetricsJsonlSink(args.metrics_jsonl)
            try:
                metrics_sink.ensure_writable()
            except OSError as exc:
                parser.error(f"cannot write the metrics JSONL stream {args.metrics_jsonl}: {exc}")
            sinks.append(metrics_sink)

    # The JSONL sink streams incrementally and must keep its per-density checkpoints even
    # when the run dies -- that is its purpose -- so it closes unconditionally.  The text
    # and JSON report sinks buffer and write at close; they are closed only after success,
    # so a failed run never clobbers existing output files with a partial report.
    try:
        result = run_experiment(
            spec,
            sinks=sinks,
            workers=args.workers,
            resume_from=checkpoint,
            on_error=args.on_error,
            metrics=metrics_enabled,
        )
    except KeyboardInterrupt:
        # The finally below flushes and closes the checkpoint stream; tell the user where
        # it lives so the interrupted sweep is one --resume away from completion.
        if jsonl_sink is not None:
            print(
                f"interrupted -- per-density checkpoints are in {jsonl_sink.path}; "
                f"resume with: repro-sweep --resume {jsonl_sink.path}",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted -- no --jsonl stream was attached, so nothing was "
                "checkpointed (add --jsonl to make sweeps resumable)",
                file=sys.stderr,
            )
        return 130
    finally:
        # Both JSONL streams flush incrementally -- their lines surviving a dead run is
        # the point -- so they close unconditionally.
        if jsonl_sink is not None:
            jsonl_sink.close()
        if metrics_sink is not None:
            metrics_sink.close()
    for sink in sinks:
        if sink is not jsonl_sink and sink is not metrics_sink:
            sink.close()
    if args.profile_trials and metrics_capture is not None and metrics_capture.last is not None:
        profile_path = Path(args.profile_trials)
        profile_path.parent.mkdir(parents=True, exist_ok=True)
        profile_path.write_text(
            json.dumps(build_profile(spec, metrics_capture.last), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    print(render_report([result], header=f"spec={spec.experiment_id}"))
    if metrics_capture is not None and metrics_capture.last is not None:
        print(render_metrics_summary(metrics_capture.last))
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    raise SystemExit(main())
