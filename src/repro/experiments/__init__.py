"""The evaluation harness: density sweeps reproducing the paper's Figures 6-9."""

from repro.experiments.ans_size import run_ans_size_experiment
from repro.experiments.config import (
    BANDWIDTH_DENSITIES,
    DELAY_DENSITIES,
    PAPER_SELECTORS,
    SweepConfig,
    config_for_profile,
    paper_config,
    quick_config,
    smoke_config,
)
from repro.experiments.figures import (
    FIGURES,
    figure6,
    figure7,
    figure8,
    figure9,
    run_all_figures,
    run_figure,
)
from repro.experiments.overhead import qos_overhead, run_overhead_experiment
from repro.experiments.reporting import render_report, write_json, write_report
from repro.experiments.results import ExperimentResult, Series, SeriesPoint
from repro.experiments.runner import Trial, build_trial, iter_trials
from repro.experiments.stats import Summary, summarize

__all__ = [
    "SweepConfig",
    "paper_config",
    "quick_config",
    "smoke_config",
    "config_for_profile",
    "BANDWIDTH_DENSITIES",
    "DELAY_DENSITIES",
    "PAPER_SELECTORS",
    "run_ans_size_experiment",
    "run_overhead_experiment",
    "qos_overhead",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "run_figure",
    "run_all_figures",
    "FIGURES",
    "ExperimentResult",
    "Series",
    "SeriesPoint",
    "Summary",
    "summarize",
    "Trial",
    "build_trial",
    "iter_trials",
    "render_report",
    "write_report",
    "write_json",
]
