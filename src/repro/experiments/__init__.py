"""The evaluation harness: spec-driven density sweeps, with the paper's Figures 6-9 as presets.

The scenario API in one sentence: a frozen, JSON-round-trippable
:class:`~repro.experiments.spec.ExperimentSpec` names every ingredient of a sweep (measure
kind, metric, selectors, topology model -- all resolved against the unified registries in
:mod:`repro.registry`), the generic :func:`~repro.experiments.engine.run_experiment` engine
executes any spec, and results stream through
:class:`~repro.experiments.sinks.ResultSink` consumers (text report, JSON, incremental
JSONL checkpoints, progress lines) besides materializing an
:class:`~repro.experiments.results.ExperimentResult`.
"""

from repro.experiments.ans_size import run_ans_size_experiment
from repro.experiments.checkpoint import (
    Checkpoint,
    CheckpointError,
    DensityCheckpoint,
    load_checkpoint,
    spec_hash,
)
from repro.experiments.config import (
    BANDWIDTH_DENSITIES,
    DELAY_DENSITIES,
    PAPER_SELECTORS,
    SweepConfig,
    config_for_profile,
    paper_config,
    quick_config,
    smoke_config,
)
from repro.experiments.figures import (
    FIGURES,
    figure6,
    figure7,
    figure8,
    figure9,
    run_all_figures,
    run_figure,
)
from repro.experiments.engine import run_experiment
from repro.experiments.measures import AnsSizeMeasure, Measure, OverheadMeasure
from repro.experiments.overhead import qos_overhead, run_overhead_experiment
from repro.experiments.presets import FIGURE_PRESETS, figure_spec
from repro.experiments.reporting import render_report, write_json, write_report
from repro.experiments.results import ExperimentResult, Series, SeriesPoint
from repro.experiments.runner import (
    Trial,
    TrialExecutionError,
    TrialFailure,
    build_trial,
    iter_trials,
    map_trials,
)
from repro.experiments.sinks import (
    JsonlSink,
    JsonSink,
    MemorySink,
    ProgressSink,
    ResultSink,
    TextReportSink,
)
from repro.experiments.spec import ExperimentSpec
from repro.experiments.stats import Summary, summarize

__all__ = [
    "ExperimentSpec",
    "run_experiment",
    "Measure",
    "AnsSizeMeasure",
    "OverheadMeasure",
    "ResultSink",
    "ProgressSink",
    "MemorySink",
    "TextReportSink",
    "JsonSink",
    "JsonlSink",
    "FIGURE_PRESETS",
    "figure_spec",
    "SweepConfig",
    "paper_config",
    "quick_config",
    "smoke_config",
    "config_for_profile",
    "BANDWIDTH_DENSITIES",
    "DELAY_DENSITIES",
    "PAPER_SELECTORS",
    "run_ans_size_experiment",
    "run_overhead_experiment",
    "qos_overhead",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "run_figure",
    "run_all_figures",
    "FIGURES",
    "ExperimentResult",
    "Series",
    "SeriesPoint",
    "Summary",
    "summarize",
    "Trial",
    "TrialFailure",
    "TrialExecutionError",
    "build_trial",
    "iter_trials",
    "map_trials",
    "Checkpoint",
    "CheckpointError",
    "DensityCheckpoint",
    "load_checkpoint",
    "spec_hash",
    "render_report",
    "write_report",
    "write_json",
]
