"""Advertised-set size experiment (the paper's Figures 6 and 7).

For every density and every protocol, measure the mean number of neighbors a node has to
advertise in its TC messages: the MPR set for original QOLSR (which uses a single set for
flooding and routing) and the QANS for topology filtering and FNBP (which keep the RFC 3626
MPR set separately for flooding).  The paper's headline observations, which the benchmark
suite checks qualitatively, are that FNBP's set is the smallest and stays roughly constant
with density while QOLSR's keeps growing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import SweepConfig
from repro.experiments.results import ExperimentResult, SeriesPoint
from repro.experiments.runner import Trial, map_trials
from repro.experiments.stats import summarize
from repro.metrics import Metric


def _ans_size_trial(trial: Trial) -> dict:
    """Per-trial measurement: advertised-set sizes per selector (runs in a worker under the
    parallel path, so it must return plain picklable data)."""
    if len(trial.network) == 0:
        return {"node_count": 0, "sizes": {}}
    sampled = set(trial.sample_nodes(trial.config.node_sample, "ans-size-sample"))
    sizes: Dict[str, List[float]] = {}
    for selector_name in trial.config.selectors:
        selections = _selections_for_sample(trial, selector_name, sampled)
        sizes[selector_name] = [float(len(selection.selected)) for selection in selections]
    return {"node_count": len(trial.network), "sizes": sizes}


def run_ans_size_experiment(
    config: SweepConfig,
    metric: Metric,
    experiment_id: str = "fig6",
    title: str = "Size of the advertised set",
    progress: Optional[callable] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the advertised-set-size sweep and return one series per selector.

    ``progress`` (if given) is called with a short human-readable string after each trial;
    the CLI uses it to show sweep progress.  ``workers`` (default: the ``REPRO_WORKERS``
    environment variable) fans the trials of each density out over worker processes; the
    results are aggregated in run order either way, so the output is identical.
    """
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        metric_name=metric.name,
        x_label="density",
        y_label="advertised neighbors per node",
    )
    per_selector_sizes: dict[str, dict[float, list[float]]] = {
        name: {density: [] for density in config.densities} for name in config.selectors
    }

    for density in config.densities:

        def on_result(run_index: int, payload: dict) -> None:
            if progress is not None and payload["node_count"] > 0:
                progress(
                    f"[{experiment_id}] density={density:g} run={run_index + 1}/{config.runs} "
                    f"nodes={payload['node_count']}"
                )

        payloads = map_trials(
            config, metric, density, _ans_size_trial, workers=workers, on_result=on_result
        )
        for payload in payloads:
            for selector_name, sizes in payload["sizes"].items():
                per_selector_sizes[selector_name][density].extend(sizes)

    for selector_name in config.selectors:
        for density in config.densities:
            summary = summarize(per_selector_sizes[selector_name][density])
            result.add_point(selector_name, SeriesPoint(density=density, summary=summary))

    if config.node_sample is not None:
        result.add_note(f"averaged over a sample of up to {config.node_sample} nodes per topology")
    result.add_note(f"{config.runs} run(s) per density; seed={config.seed}")
    return result


def _selections_for_sample(trial, selector_name: str, sampled: set) -> Sequence:
    """Selection results for the sampled nodes only (avoids running selectors network-wide).

    The trial's views -- and with them the per-metric compact-graph and bottleneck-forest
    caches -- are shared across every selector of the sweep.
    """
    from repro.core.selection import make_selector

    selector = make_selector(selector_name)
    views = trial.views()
    return [selector.select(views[node], trial.metric) for node in sorted(sampled)]
