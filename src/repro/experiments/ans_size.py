"""Advertised-set size experiment (the paper's Figures 6 and 7) -- legacy entry point.

The measurement and aggregation logic lives in
:class:`repro.experiments.measures.AnsSizeMeasure` (registry name ``"ans-size"``) and runs
through the generic spec-driven engine; :func:`run_ans_size_experiment` is kept as a thin
wrapper over :func:`repro.experiments.engine.run_experiment` for callers that still hold a
:class:`SweepConfig` and a :class:`Metric` instance.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import SweepConfig
from repro.experiments.engine import run_experiment
from repro.experiments.measures import AnsSizeMeasure, _ans_size_trial  # noqa: F401  (re-export)
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.metrics import Metric


def run_ans_size_experiment(
    config: SweepConfig,
    metric: Metric,
    experiment_id: str = "fig6",
    title: str = "Size of the advertised set",
    progress: Optional[callable] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the advertised-set-size sweep and return one series per selector.

    ``progress`` (if given) is called with a short human-readable string after each trial;
    the CLI uses it to show sweep progress.  ``workers`` (default: the ``REPRO_WORKERS``
    environment variable) fans the trials of each density out over worker processes; the
    results are aggregated in run order either way, so the output is identical.
    """
    spec = ExperimentSpec.from_config(
        config, experiment_id=experiment_id, title=title, measure="ans-size", metric=metric.name
    )
    return run_experiment(spec, workers=workers, metric=metric, progress=progress)
