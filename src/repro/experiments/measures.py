"""Measure kinds: what one sweep trial measures and how trials aggregate into series.

A :class:`Measure` is the pluggable core of the generic experiment engine
(:func:`repro.experiments.engine.run_experiment`).  It provides

* ``per_trial()`` -- a picklable module-level function mapping a :class:`Trial` to a plain
  payload dictionary (it runs inside worker processes under ``REPRO_WORKERS``);
* streaming aggregation -- ``start`` / ``consume`` / ``density_points`` fold payloads into
  per-density :class:`SeriesPoint` objects as soon as a density finishes, which is what lets
  incremental sinks checkpoint long paper-profile sweeps density by density;
* presentation -- the y-axis label, the per-trial progress line, and the footnotes of the
  final result table.

The built-ins reproduce the paper's two experiment families and register themselves in the
unified :data:`repro.registry.MEASURES` registry: ``"ans-size"`` (Figures 6 and 7: mean
advertised-set size per node) and ``"overhead"`` (Figures 8 and 9: achieved QoS versus the
centralized optimum).  Registering a new subclass opens a new measure kind to every spec,
the ``repro-sweep`` CLI and the preset machinery without touching the engine -- a worked,
test-executed example lives in ``docs/extending.md``, and the event stream a measure's
aggregation feeds is specified in ``docs/events.md``.  Time-axis measures (the dynamic
sweeps of :mod:`repro.mobility.measures`) additionally override :meth:`Measure.validate_spec`
and consume the trial's incrementally maintained selections
(:meth:`Trial.step_selections <repro.experiments.runner.Trial.step_selections>`) instead of
re-running every selector from scratch each step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.results import SeriesPoint
from repro.experiments.runner import Trial
from repro.experiments.stats import summarize
from repro.metrics import Metric, MetricKind
from repro.registry import MEASURES
from repro.routing.hop_by_hop import HopByHopRouter
from repro.routing.optimal import optimal_route


def qos_overhead(metric: Metric, achieved: float, optimal: float) -> float:
    """The paper's overhead of an achieved path value relative to the optimal value."""
    if optimal == 0:
        return float("nan")
    if metric.kind is MetricKind.CONCAVE:
        return (optimal - achieved) / optimal
    return (achieved - optimal) / optimal


class Measure(ABC):
    """One measure kind: per-trial measurement plus streaming aggregation."""

    #: Registry / display name of the measure.
    name: str = "abstract"
    #: The swept quantity (every paper figure sweeps density).
    x_label: str = "density"

    def validate_spec(self, spec) -> None:
        """Reject specs this measure cannot run (called by the engine before any trial).

        The default accepts everything; time-axis measures override it to require
        ``timesteps >= 1`` so a mis-assembled dynamic spec fails fast instead of deep
        inside a worker process.
        """

    @abstractmethod
    def y_label(self, metric: Metric) -> str:
        """The y-axis label of the result table for the given metric."""

    @abstractmethod
    def per_trial(self) -> Callable[[Trial], dict]:
        """The trial measurement: a picklable module-level function (worker-safe)."""

    @abstractmethod
    def start(self, spec) -> object:
        """A fresh accumulator for one sweep of ``spec``."""

    @abstractmethod
    def consume(self, state: object, density: float, payload: dict) -> None:
        """Fold one trial payload (arriving in run order) into the accumulator."""

    @abstractmethod
    def density_points(self, state: object, spec, density: float) -> Dict[str, SeriesPoint]:
        """One finished density summarized as ``{selector_name: SeriesPoint}``."""

    def progress_line(
        self, experiment_id: str, runs: int, density: float, run_index: int, payload: dict
    ) -> Optional[str]:
        """The human-readable progress message for one trial (``None`` = stay silent)."""
        if payload.get("node_count", 0) > 0:
            return (
                f"[{experiment_id}] density={density:g} run={run_index + 1}/{runs} "
                f"nodes={payload['node_count']}"
            )
        return None

    def notes(self, spec) -> List[str]:
        """Footnotes appended to the final result table."""
        return []


# ---------------------------------------------------------------------- advertised-set size


def _selections_for_sample(trial: Trial, selector_name: str, sampled: set) -> Sequence:
    """Selection results for the sampled nodes only (avoids running selectors network-wide).

    The trial's views -- and with them the per-metric compact-graph and bottleneck-forest
    caches -- are shared across every selector of the sweep.
    """
    from repro.core.selection import make_selector

    selector = make_selector(selector_name)
    views = trial.views()
    return [selector.select(views[node], trial.metric) for node in sorted(sampled)]


def _ans_size_trial(trial: Trial) -> dict:
    """Per-trial measurement: advertised-set sizes per selector (runs in a worker under the
    parallel path, so it must return plain picklable data)."""
    if len(trial.network) == 0:
        return {"node_count": 0, "sizes": {}}
    sampled = set(trial.sample_nodes(trial.config.node_sample, "ans-size-sample"))
    sizes: Dict[str, List[float]] = {}
    for selector_name in trial.config.selectors:
        selections = _selections_for_sample(trial, selector_name, sampled)
        sizes[selector_name] = [float(len(selection.selected)) for selection in selections]
    return {"node_count": len(trial.network), "sizes": sizes}


@MEASURES.register("ans-size", description="mean advertised-set size per node (Figures 6/7)")
class AnsSizeMeasure(Measure):
    """Advertised-set size experiment (the paper's Figures 6 and 7).

    For every density and every protocol, measure the mean number of neighbors a node has
    to advertise in its TC messages: the MPR set for original QOLSR (which uses a single
    set for flooding and routing) and the QANS for topology filtering and FNBP (which keep
    the RFC 3626 MPR set separately for flooding).
    """

    name = "ans-size"

    def y_label(self, metric: Metric) -> str:
        return "advertised neighbors per node"

    def per_trial(self) -> Callable[[Trial], dict]:
        return _ans_size_trial

    def start(self, spec) -> Dict[str, Dict[float, List[float]]]:
        return {name: {density: [] for density in spec.densities} for name in spec.selectors}

    def consume(self, state, density: float, payload: dict) -> None:
        for selector_name, sizes in payload["sizes"].items():
            state[selector_name][density].extend(sizes)

    def density_points(self, state, spec, density: float) -> Dict[str, SeriesPoint]:
        return {
            name: SeriesPoint(density=density, summary=summarize(state[name][density]))
            for name in spec.selectors
        }

    def notes(self, spec) -> List[str]:
        notes = []
        if spec.node_sample is not None:
            notes.append(f"averaged over a sample of up to {spec.node_sample} nodes per topology")
        notes.append(f"{spec.runs} run(s) per density; seed={spec.seed}")
        return notes


# ---------------------------------------------------------------------- QoS overhead


def _overhead_trial(trial: Trial) -> dict:
    """Per-trial measurement: overheads and delivery flags per selector (worker-safe).

    The centralized optimum of each pair is computed once and shared by all selectors (it
    depends only on the topology), exactly as comparing "on the same topology with the same
    source and destination" requires.  The per-selector advertised topologies are diffed
    incrementally off one working graph (see :meth:`Trial.advertised_topology`); each
    selector's routing completes before the next topology is requested, which is exactly
    the access pattern that liveness contract requires.
    """
    metric = trial.metric
    if len(trial.network) < 2:
        return {"node_count": len(trial.network), "per_selector": {}}
    pairs = trial.sample_pairs(trial.config.pairs_per_run)
    routed_pairs = []
    for source, destination in pairs:
        optimal = optimal_route(trial.network, source, destination, metric)
        if not optimal.reachable or not metric.is_usable(optimal.value):
            continue
        routed_pairs.append((source, destination, optimal.value))

    per_selector: Dict[str, Tuple[List[float], List[float]]] = {}
    for selector_name in trial.config.selectors:
        advertised = trial.advertised_topology(selector_name)
        # The sources' HELLO-learned edges depend only on the physical topology, so the
        # per-source walk is done once per trial (Trial.link_state_edges) and shared by
        # every selector's router instead of being repeated per router.
        router = HopByHopRouter(
            trial.network, advertised, metric, local_edges=trial.link_state_edges
        )
        overheads: List[float] = []
        deliveries: List[float] = []
        for source, destination, optimal_value in routed_pairs:
            outcome = router.link_state_route(source, destination)
            deliveries.append(1.0 if outcome.delivered else 0.0)
            if outcome.delivered:
                overheads.append(qos_overhead(metric, outcome.value, optimal_value))
        per_selector[selector_name] = (overheads, deliveries)
    return {"node_count": len(trial.network), "per_selector": per_selector}


@MEASURES.register("overhead", description="QoS overhead vs the centralized optimum (Figures 8/9)")
class OverheadMeasure(Measure):
    """QoS-overhead experiment (the paper's Figures 8 and 9).

    For every density, generate topologies, pick random source/destination pairs and
    compare the QoS value achieved when routing hop-by-hop over each protocol's advertised
    topology against the optimal value achieved by a centralized QoS-weighted Dijkstra on
    the full graph:

    * bandwidth overhead  = (b* - b) / b*   (how much of the optimal bandwidth was given up),
    * delay overhead      = (d - d*) / d*   (how much extra delay was incurred),

    exactly the paper's definitions.  Pairs whose packet is not delivered (routing loop or
    no advertised route) are excluded from the overhead mean and reported separately
    through the per-point ``delivery_ratio`` extra -- the paper does not report failures,
    and with the default FNBP guard none are expected.
    """

    name = "overhead"

    def y_label(self, metric: Metric) -> str:
        return f"{metric.name} overhead"

    def per_trial(self) -> Callable[[Trial], dict]:
        return _overhead_trial

    def start(self, spec) -> Dict[str, Dict[str, Dict[float, List[float]]]]:
        return {
            "overheads": {name: {d: [] for d in spec.densities} for name in spec.selectors},
            "deliveries": {name: {d: [] for d in spec.densities} for name in spec.selectors},
        }

    def consume(self, state, density: float, payload: dict) -> None:
        for selector_name, (trial_overheads, trial_deliveries) in payload["per_selector"].items():
            state["overheads"][selector_name][density].extend(trial_overheads)
            state["deliveries"][selector_name][density].extend(trial_deliveries)

    def density_points(self, state, spec, density: float) -> Dict[str, SeriesPoint]:
        points = {}
        for name in spec.selectors:
            summary = summarize(state["overheads"][name][density])
            delivery = summarize(state["deliveries"][name][density])
            points[name] = SeriesPoint(
                density=density,
                summary=summary,
                extra={"delivery_ratio": delivery.mean, "attempts": float(delivery.count)},
            )
        return points

    def progress_line(self, experiment_id, runs, density, run_index, payload):
        if payload.get("node_count", 0) >= 2:
            return (
                f"[{experiment_id}] density={density:g} run={run_index + 1}/{runs} "
                f"nodes={payload['node_count']}"
            )
        return None

    def notes(self, spec) -> List[str]:
        return [
            f"{spec.runs} run(s) x {spec.pairs_per_run} pair(s) per density; seed={spec.seed}",
            "overhead averaged over delivered packets; see delivery_ratio per point",
        ]
