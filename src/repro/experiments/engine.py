"""The generic, spec-driven experiment engine.

:func:`run_experiment` executes any :class:`~repro.experiments.spec.ExperimentSpec` -- it
resolves the spec's registry names (measure kind, metric, topology model, selectors; see
:mod:`repro.registry`), fans each density's trials over the runner (serially or across
``REPRO_WORKERS`` processes, bit-identically either way), folds the trial payloads through
the measure's streaming aggregation, and emits the event stream to any number of
:class:`~repro.experiments.sinks.ResultSink` instances.  It subsumes what used to be two
near-identical hand-written harnesses (``run_ans_size_experiment`` and
``run_overhead_experiment``, now thin wrappers): every figure preset, every
``repro-sweep`` invocation and every future measure kind runs through this one function.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.experiments.results import ExperimentResult, SeriesPoint
from repro.experiments.runner import map_trials
from repro.experiments.sinks import ProgressSink, ResultSink
from repro.experiments.spec import ExperimentSpec
from repro.metrics.base import Metric
from repro.registry import MEASURES, METRICS


def run_experiment(
    spec: ExperimentSpec,
    sinks: Iterable[ResultSink] = (),
    workers: Optional[int] = None,
    metric: Optional[Metric] = None,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run the sweep described by ``spec`` and return its :class:`ExperimentResult`.

    ``sinks`` receive the streaming events (see the contract in
    :mod:`repro.experiments.sinks`); the engine does not close them.  ``workers`` (default:
    the ``REPRO_WORKERS`` environment variable) fans the trials of each density out over
    worker processes; aggregation happens in run order either way, so the output is
    identical to a serial run.  ``metric`` overrides the spec's metric name with a
    ready-made instance (the legacy wrappers use this; normally the metric is resolved
    from the registry).  ``progress`` is a legacy convenience: a callable receiving one
    human-readable line per trial, wrapped in a :class:`ProgressSink`.
    """
    spec.validate_names(require_metric=metric is None)
    measure = MEASURES.create(spec.measure)
    measure.validate_spec(spec)
    if metric is None:
        metric = METRICS.create(spec.metric)
    sinks = list(sinks)
    if progress is not None:
        sinks.append(ProgressSink(progress))

    config = spec.sweep_config()
    result = ExperimentResult(
        experiment_id=spec.experiment_id,
        title=spec.title,
        metric_name=metric.name,
        x_label=measure.x_label,
        y_label=measure.y_label(metric),
    )

    for sink in sinks:
        sink.on_sweep_start(spec)

    state = measure.start(spec)
    per_trial = measure.per_trial()
    per_density: Dict[float, Dict[str, SeriesPoint]] = {}
    for density in spec.densities:

        def on_result(run_index: int, payload: dict, density: float = density) -> None:
            message = measure.progress_line(spec.experiment_id, spec.runs, density, run_index, payload)
            for sink in sinks:
                sink.on_trial(spec, density, run_index, payload, message)

        payloads = map_trials(config, metric, density, per_trial, workers=workers, on_result=on_result)
        for payload in payloads:
            measure.consume(state, density, payload)
        points = measure.density_points(state, spec, density)
        per_density[density] = points
        for sink in sinks:
            sink.on_density(spec, density, points)

    # Assemble the monolithic result in the classic order (selector-major, density-minor),
    # which keeps its tables and JSON byte-identical to the pre-engine harnesses.
    for selector_name in spec.selectors:
        for density in spec.densities:
            result.add_point(selector_name, per_density[density][selector_name])
    for note in measure.notes(spec):
        result.add_note(note)

    for sink in sinks:
        sink.on_result(result)
    return result
