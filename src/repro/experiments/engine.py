"""The generic, spec-driven experiment engine.

:func:`run_experiment` executes any :class:`~repro.experiments.spec.ExperimentSpec` -- it
resolves the spec's registry names (measure kind, metric, topology model, selectors; see
:mod:`repro.registry`), fans each density's trials over the runner (serially or across
``REPRO_WORKERS`` processes, bit-identically either way), folds the trial payloads through
the measure's streaming aggregation, and emits the event stream to any number of
:class:`~repro.experiments.sinks.ResultSink` instances.  It subsumes what used to be two
near-identical hand-written harnesses (``run_ans_size_experiment`` and
``run_overhead_experiment``, now thin wrappers): every figure preset, every
``repro-sweep`` invocation and every future measure kind runs through this one function.

Crash resilience is layered on top of the same determinism that makes parallelism
bit-identical:

* the runner supervises trials (retry with backoff on raises, timeouts and killed
  workers; see :func:`repro.experiments.runner.map_trials`);
* a trial that exhausts its retries either aborts the sweep (``on_error="fail"``, the
  default -- byte-identical to the pre-supervision engine on healthy runs) or becomes a
  structured ``on_trial_error`` sink event, with the density's failure count recorded in
  each of its points' ``extra["failed_trials"]`` (``on_error="skip"``);
* a sink whose handler raises is quarantined -- dropped from the sweep with an
  ``on_warning`` event to the surviving sinks -- instead of killing the run;
* ``resume_from`` accepts a :class:`~repro.experiments.checkpoint.Checkpoint` (or the
  path of a ``jsonl`` stream): finished densities are skipped, their trial and density
  events re-emitted from the checkpoint, so sinks -- including a fresh ``jsonl`` sink
  writing the same path -- observe exactly the stream of an uninterrupted run.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.experiments.checkpoint import Checkpoint, load_checkpoint, spec_hash
from repro.experiments.results import ExperimentResult, SeriesPoint
from repro.experiments.runner import TrialFailure, map_trials
from repro.experiments.sinks import ProgressSink, ResultSink
from repro.experiments.spec import ExperimentSpec
from repro.metrics.base import Metric
from repro.obs import runtime as obs
from repro.obs.registry import MetricsRegistry, merge_trial, unwrap_payload
from repro.registry import MEASURES, METRICS


class _SinkCrew:
    """Event dispatcher that quarantines raising sinks instead of dying with them.

    A sink that raises from any handler is removed from the crew; the survivors get an
    ``on_warning`` event (and a Python :class:`RuntimeWarning` is emitted, so the
    quarantine is visible even with no surviving sinks).  ``KeyboardInterrupt`` and other
    non-``Exception`` signals propagate -- quarantine is for broken sinks, not for the
    user's ctrl-C.
    """

    def __init__(self, sinks: Iterable[ResultSink], spec) -> None:
        self._sinks: List[ResultSink] = list(sinks)
        self._spec = spec

    def emit(self, handler: str, *args) -> None:
        with obs.span("sink_flush"):
            for sink in list(self._sinks):
                try:
                    getattr(sink, handler)(*args)
                except Exception as exc:  # noqa: BLE001 - quarantine any broken sink
                    self._sinks.remove(sink)
                    message = (
                        f"sink {type(sink).__name__} raised {type(exc).__name__} ({exc}) in "
                        f"{handler} and was quarantined; the sweep continues without it"
                    )
                    warnings.warn(message, RuntimeWarning, stacklevel=2)
                    self.emit("on_warning", self._spec, message)


def _resolve_checkpoint(
    resume_from: Union[Checkpoint, str, Path, None], spec: ExperimentSpec
) -> Optional[Checkpoint]:
    """Load/validate the resume source; the spec-hash guard refuses a mismatched spec."""
    if resume_from is None:
        return None
    checkpoint = resume_from if isinstance(resume_from, Checkpoint) else load_checkpoint(resume_from)
    running = spec_hash(spec)
    if checkpoint.spec_hash != running:
        raise ValueError(
            f"refusing to resume: the checkpoint was written by a different spec "
            f"(checkpoint spec-hash {checkpoint.spec_hash[:12]}..., this sweep "
            f"{running[:12]}...); resume with the identical spec or start a fresh sweep"
        )
    return checkpoint


def run_experiment(
    spec: ExperimentSpec,
    sinks: Iterable[ResultSink] = (),
    workers: Optional[int] = None,
    metric: Optional[Metric] = None,
    progress: Optional[callable] = None,
    resume_from: Union[Checkpoint, str, Path, None] = None,
    on_error: str = "fail",
    metrics: Optional[bool] = None,
) -> ExperimentResult:
    """Run the sweep described by ``spec`` and return its :class:`ExperimentResult`.

    ``sinks`` receive the streaming events (see the contract in
    :mod:`repro.experiments.sinks`); the engine does not close them.  ``workers`` (default:
    the ``REPRO_WORKERS`` environment variable) fans the trials of each density out over
    worker processes; aggregation happens in run order either way, so the output is
    identical to a serial run.  ``metric`` overrides the spec's metric name with a
    ready-made instance (the legacy wrappers use this; normally the metric is resolved
    from the registry).  ``progress`` is a legacy convenience: a callable receiving one
    human-readable line per trial, wrapped in a :class:`ProgressSink`.

    ``resume_from`` (a :class:`Checkpoint` or the path of a ``jsonl`` stream) skips the
    densities the checkpoint already finished, re-emitting their events so the sink
    stream -- and with it every output file -- is byte-identical to an uninterrupted run;
    a checkpoint written by a different spec is refused.  ``on_error`` decides the fate of
    a trial whose retries are exhausted: ``"fail"`` (default) raises
    :class:`~repro.experiments.runner.TrialExecutionError`, ``"skip"`` records an
    ``on_trial_error`` event plus a per-point ``extra["failed_trials"]`` count and lets
    the sweep complete.

    ``metrics`` (default: the ``REPRO_METRICS`` environment variable, i.e. off) enables
    the telemetry layer: trials run under per-trial
    :class:`~repro.obs.registry.MetricsRegistry` instances whose snapshots are merged --
    in run order, hence bit-identically serial vs parallel -- into a run registry, and
    cumulative snapshots are emitted as ``on_metrics`` sink events (one after every
    ``on_density``, one final run-total with ``density=None`` before ``on_result``).
    With telemetry off the engine, its events and every output are byte-identical to the
    un-instrumented engine; see ``docs/observability.md`` for the taxonomy and contract.
    """
    spec.validate_names(require_metric=metric is None)
    measure = MEASURES.create(spec.measure)
    measure.validate_spec(spec)
    if metric is None:
        metric = METRICS.create(spec.metric)
    checkpoint = _resolve_checkpoint(resume_from, spec)
    metrics = obs.resolve_metrics(metrics)
    registry = MetricsRegistry() if metrics else None
    sinks = list(sinks)
    if progress is not None:
        sinks.append(ProgressSink(progress))
    crew = _SinkCrew(sinks, spec)

    config = spec.sweep_config()
    result = ExperimentResult(
        experiment_id=spec.experiment_id,
        title=spec.title,
        metric_name=metric.name,
        x_label=measure.x_label,
        y_label=measure.y_label(metric),
    )

    # With telemetry on, the run registry is installed as the parent process's ambient
    # registry for the whole sweep, so parent-side instrumentation (supervisor retries,
    # sink-flush spans) records alongside the merged per-trial snapshots.  Restored in
    # the finally even when a sweep aborts, so no registry leaks across runs.
    previous_registry = obs.install(registry) if registry is not None else None
    try:
        crew.emit("on_sweep_start", spec)

        state = measure.start(spec)
        per_trial = measure.per_trial()
        per_density: Dict[float, Dict[str, SeriesPoint]] = {}
        for density in spec.densities:
            finished = checkpoint.densities.get(density) if checkpoint is not None else None
            if finished is not None:
                # Replay the finished density from the checkpoint: same trial events (the
                # progress message is re-derived from the recorded payload), same points, no
                # recomputation.  Payloads are not re-folded through the measure -- the
                # density's points are already aggregated and every built-in measure
                # aggregates strictly per density.  (Checkpoints carry no telemetry, so a
                # resumed run's counters cover only the densities it recomputes.)
                for run_index, record in finished.trials:
                    if isinstance(record, TrialFailure):
                        crew.emit("on_trial_error", spec, density, run_index, record)
                    else:
                        message = measure.progress_line(
                            spec.experiment_id, spec.runs, density, run_index, record
                        )
                        crew.emit("on_trial", spec, density, run_index, record, message)
                per_density[density] = finished.points
                crew.emit("on_density", spec, density, finished.points)
                if registry is not None:
                    crew.emit("on_metrics", spec, {"density": density, **registry.snapshot()})
                continue

            def on_result(run_index: int, payload, density: float = density) -> None:
                # Trial telemetry envelopes are merged exactly here -- once per trial, in
                # run order -- which is what makes the run registry's deterministic
                # sections bit-identical serial vs REPRO_WORKERS=N.
                payload = merge_trial(registry, payload)
                if isinstance(payload, TrialFailure):
                    crew.emit("on_trial_error", spec, density, run_index, payload)
                    return
                message = measure.progress_line(spec.experiment_id, spec.runs, density, run_index, payload)
                crew.emit("on_trial", spec, density, run_index, payload, message)

            payloads = map_trials(
                config,
                metric,
                density,
                per_trial,
                workers=workers,
                on_result=on_result,
                on_error=on_error,
                metrics=registry is not None,
            )
            payloads = [unwrap_payload(payload) for payload in payloads]
            failures = [payload for payload in payloads if isinstance(payload, TrialFailure)]
            for payload in payloads:
                if not isinstance(payload, TrialFailure):
                    measure.consume(state, density, payload)
            points = measure.density_points(state, spec, density)
            if failures:
                points = {
                    name: replace(
                        point, extra={**dict(point.extra), "failed_trials": float(len(failures))}
                    )
                    for name, point in points.items()
                }
            per_density[density] = points
            if registry is not None:
                registry.count("engine.densities_completed")
            crew.emit("on_density", spec, density, points)
            if registry is not None:
                crew.emit("on_metrics", spec, {"density": density, **registry.snapshot()})

        # Assemble the monolithic result in the classic order (selector-major, density-minor),
        # which keeps its tables and JSON byte-identical to the pre-engine harnesses.
        for selector_name in spec.selectors:
            for density in spec.densities:
                result.add_point(selector_name, per_density[density][selector_name])
        for note in measure.notes(spec):
            result.add_note(note)

        if registry is not None:
            # The run-total snapshot (density=None) -- what the text sink's summary table
            # and --profile-trials render.
            crew.emit("on_metrics", spec, {"density": None, **registry.snapshot()})
        crew.emit("on_result", result)
        return result
    finally:
        if registry is not None:
            obs.install(previous_registry)
