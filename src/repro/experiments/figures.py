"""One entry point per figure of the paper's evaluation section.

======  =====================================================  ==========  ==============
Figure  What it shows                                          Metric      Harness
======  =====================================================  ==========  ==============
6       advertised-set size per node vs density                bandwidth   :func:`figure6`
7       advertised-set size per node vs density                delay       :func:`figure7`
8       bandwidth overhead vs the centralized optimum          bandwidth   :func:`figure8`
9       delay overhead vs the centralized optimum              delay       :func:`figure9`
======  =====================================================  ==========  ==============

Each figure is a registered spec preset (:mod:`repro.experiments.presets`) narrowed to the
requested profile and executed by the generic engine
(:func:`repro.experiments.engine.run_experiment`); the functions here are thin wrappers
kept for API compatibility.  Each accepts an explicit :class:`SweepConfig` or a profile
name (``"paper"``, ``"quick"``, ``"smoke"``) and returns an :class:`ExperimentResult`
whose text table is what ``EXPERIMENTS.md`` records and what the CLI prints.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.experiments.config import SweepConfig, config_for_profile
from repro.experiments.engine import run_experiment
from repro.experiments.presets import FIGURE_PRESETS, figure_spec
from repro.experiments.results import ExperimentResult

ConfigLike = Union[SweepConfig, str, None]


def _resolve(config: ConfigLike, metric_name: str) -> SweepConfig:
    if isinstance(config, SweepConfig):
        return config
    profile = config or "quick"
    return config_for_profile(profile, metric_name)


def run_figure(number: int, config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Run the harness for one figure by number (6, 7, 8 or 9).

    The figure's preset spec supplies its identity (id, title, measure kind, metric); the
    resolved configuration supplies the sweep shape.  ``workers`` (default: the
    ``REPRO_WORKERS`` environment variable) parallelizes the sweep's trials across
    processes without changing the results.
    """
    preset = figure_spec(number)
    spec = preset.with_sweep_config(_resolve(config, preset.metric))
    return run_experiment(spec, progress=progress, workers=workers)


def figure6(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 6: size of the advertised set, bandwidth metric."""
    return run_figure(6, config, progress=progress, workers=workers)


def figure7(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 7: size of the advertised set, delay metric."""
    return run_figure(7, config, progress=progress, workers=workers)


def figure8(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 8: bandwidth overhead compared to the centralized optimal paths."""
    return run_figure(8, config, progress=progress, workers=workers)


def figure9(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 9: delay overhead compared to the centralized optimal paths."""
    return run_figure(9, config, progress=progress, workers=workers)


#: The figure harnesses keyed by figure number (see also :data:`FIGURE_PRESETS` for the
#: underlying preset names).
FIGURES = {6: figure6, 7: figure7, 8: figure8, 9: figure9}


def run_all_figures(config: ConfigLike = None, progress=None, workers=None) -> Dict[int, ExperimentResult]:
    """Run every figure harness and return the results keyed by figure number."""
    return {
        number: run_figure(number, config, progress=progress, workers=workers)
        for number in sorted(FIGURES)
    }
