"""One entry point per figure of the paper's evaluation section.

======  =====================================================  ==========  ==============
Figure  What it shows                                          Metric      Harness
======  =====================================================  ==========  ==============
6       advertised-set size per node vs density                bandwidth   :func:`figure6`
7       advertised-set size per node vs density                delay       :func:`figure7`
8       bandwidth overhead vs the centralized optimum          bandwidth   :func:`figure8`
9       delay overhead vs the centralized optimum              delay       :func:`figure9`
======  =====================================================  ==========  ==============

Each function accepts an explicit :class:`SweepConfig` or a profile name (``"paper"``,
``"quick"``, ``"smoke"``) and returns an :class:`ExperimentResult` whose text table is what
``EXPERIMENTS.md`` records and what the CLI prints.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.experiments.ans_size import run_ans_size_experiment
from repro.experiments.config import SweepConfig, config_for_profile
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.results import ExperimentResult
from repro.metrics import BandwidthMetric, DelayMetric

ConfigLike = Union[SweepConfig, str, None]


def _resolve(config: ConfigLike, metric_name: str) -> SweepConfig:
    if isinstance(config, SweepConfig):
        return config
    profile = config or "quick"
    return config_for_profile(profile, metric_name)


def figure6(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 6: size of the advertised set, bandwidth metric."""
    resolved = _resolve(config, "bandwidth")
    return run_ans_size_experiment(
        resolved,
        BandwidthMetric(),
        experiment_id="fig6",
        title="Size of the set advertised in TC messages (bandwidth)",
        progress=progress,
        workers=workers,
    )


def figure7(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 7: size of the advertised set, delay metric."""
    resolved = _resolve(config, "delay")
    return run_ans_size_experiment(
        resolved,
        DelayMetric(),
        experiment_id="fig7",
        title="Size of the set advertised in TC messages (delay)",
        progress=progress,
        workers=workers,
    )


def figure8(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 8: bandwidth overhead compared to the centralized optimal paths."""
    resolved = _resolve(config, "bandwidth")
    return run_overhead_experiment(
        resolved,
        BandwidthMetric(),
        experiment_id="fig8",
        title="Bandwidth overhead vs centralized optimum",
        progress=progress,
        workers=workers,
    )


def figure9(config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Figure 9: delay overhead compared to the centralized optimal paths."""
    resolved = _resolve(config, "delay")
    return run_overhead_experiment(
        resolved,
        DelayMetric(),
        experiment_id="fig9",
        title="Delay overhead vs centralized optimum",
        progress=progress,
        workers=workers,
    )


#: The figure harnesses keyed by figure number.
FIGURES = {6: figure6, 7: figure7, 8: figure8, 9: figure9}


def run_figure(number: int, config: ConfigLike = None, progress=None, workers=None) -> ExperimentResult:
    """Run the harness for one figure by number (6, 7, 8 or 9).

    ``workers`` (default: the ``REPRO_WORKERS`` environment variable) parallelizes the
    sweep's trials across processes without changing the results.
    """
    try:
        harness = FIGURES[number]
    except KeyError as exc:
        raise KeyError(f"the paper has no result figure {number}; choose one of {sorted(FIGURES)}") from exc
    return harness(config, progress=progress, workers=workers)


def run_all_figures(config: ConfigLike = None, progress=None, workers=None) -> Dict[int, ExperimentResult]:
    """Run every figure harness and return the results keyed by figure number."""
    return {
        number: run_figure(number, config, progress=progress, workers=workers)
        for number in sorted(FIGURES)
    }
