"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a frozen dataclass that *fully describes* one density sweep:
what to measure (the ``measure`` registry name), under which QoS metric, with which
selection algorithms, over which topology model, at which densities, with how many runs,
how the per-topology node/pair sampling works, and from which root seed.  Every ingredient
is referred to by registry name (see :mod:`repro.registry`), so a spec is plain data --
loadable and dumpable as JSON -- and the generic engine
(:func:`repro.experiments.engine.run_experiment`) can execute any spec without
experiment-specific code.

The paper's Figures 6-9 are four registered spec presets (:mod:`repro.experiments.presets`);
``repro-sweep --spec my_sweep.json`` runs arbitrary specs from files.

The authoritative field-by-field schema reference is ``docs/spec.md`` -- *generated from
this dataclass* by ``docs/gen_spec_reference.py`` (re-run it after changing a field;
``tests/test_docs.py`` fails when the page is stale).  Summary (all fields optional except
``experiment_id``, ``title``, ``measure`` and ``metric``; ``field`` nests the deployment
area)::

    {
      "experiment_id": "custom-delay",
      "title": "Custom delay sweep",
      "measure": "overhead",             // MEASURES registry
      "metric": "delay",                 // METRICS registry
      "selectors": ["fnbp", "topology-filtering"],   // SELECTORS registry
      "topology": "poisson",             // TOPOLOGY_MODELS registry
      "densities": [6.0, 9.0, 12.0],
      "runs": 10,
      "pairs_per_run": 2,
      "node_sample": 20,                 // null = every node
      "field": {"width": 1000.0, "height": 1000.0, "radius": 100.0},
      "weight_low": 1.0,
      "weight_high": 10.0,
      "seed": 42,
      "timesteps": 0,                    // > 0 = dynamic sweep (mobility measures)
      "step_interval": 1.0,              // simulated time units per timestep
      "loss_rate": 0.0,                  // control-channel loss (protocol measures)
      "hello_interval": 2.0,             // simulated HELLO period (protocol measures)
      "tc_interval": 5.0                 // simulated TC period (protocol measures)
    }

Dynamic sweeps (the mobility subsystem, :mod:`repro.mobility`) set ``timesteps`` to the
number of steps each trial's topology is advanced through, ``step_interval`` to the
simulated time per step, a dynamic ``topology`` model (``rwp``, ``gauss-markov``,
``churn``) and a time-axis ``measure`` (``ans-churn``, ``tc-overhead``,
``route-stability``); ``examples/specs/mobility_churn_sweep.json`` is a committed example.
The protocol measures (``convergence-time``, ``advertised-staleness``, ``route-flaps``;
:mod:`repro.protocol.measures`) are dynamic sweeps that additionally read ``loss_rate``,
``hello_interval`` and ``tc_interval``; ``examples/specs/protocol_convergence_sweep.json``
is a committed example.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.experiments.config import PAPER_SELECTORS, SweepConfig
from repro.registry import MEASURES, METRICS, SELECTORS, TOPOLOGY_MODELS
from repro.topology.generators import PAPER_FIELD, FieldSpec


@dataclass(frozen=True)
class ExperimentSpec:
    """One density sweep, fully described as plain data.

    Numeric constraints are validated at construction (by round-tripping through
    :class:`SweepConfig`); registry names are validated by :meth:`validate_names`, which
    :meth:`from_dict` / :meth:`from_json` / the engine call so that a typo fails fast with
    an error naming the registry and its known entries.
    """

    experiment_id: str
    title: str
    measure: str
    metric: str
    selectors: Tuple[str, ...] = PAPER_SELECTORS
    topology: str = "poisson"
    densities: Tuple[float, ...] = ()
    runs: int = 100
    pairs_per_run: int = 1
    node_sample: Optional[int] = None
    field: FieldSpec = field(default_factory=lambda: PAPER_FIELD)
    weight_low: float = 1.0
    weight_high: float = 10.0
    seed: int = 42
    timesteps: int = 0
    step_interval: float = 1.0
    loss_rate: float = 0.0
    hello_interval: float = 2.0
    tc_interval: float = 5.0

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ValueError("experiment_id must be non-empty")
        object.__setattr__(self, "selectors", tuple(self.selectors))
        object.__setattr__(self, "densities", tuple(self.densities))
        if isinstance(self.field, dict):
            object.__setattr__(self, "field", FieldSpec(**self.field))
        self.sweep_config()  # numeric validation lives in SweepConfig.__post_init__

    # ------------------------------------------------------------------ validation

    def validate_names(self, require_metric: bool = True) -> "ExperimentSpec":
        """Check every registry name and return ``self``.

        Raises ``KeyError`` naming the offending registry and its known entries.  The
        engine skips the metric check when a caller supplies a ready-made metric instance
        (``require_metric=False``).
        """
        MEASURES.get(self.measure)
        if require_metric:
            METRICS.get(self.metric)
        TOPOLOGY_MODELS.get(self.topology)
        for selector in self.selectors:
            SELECTORS.get(selector)
        return self

    # ------------------------------------------------------------------ conversions

    def sweep_config(self) -> SweepConfig:
        """The :class:`SweepConfig` driving the runner plumbing for this spec."""
        return SweepConfig(
            densities=self.densities,
            runs=self.runs,
            pairs_per_run=self.pairs_per_run,
            node_sample=self.node_sample,
            field=self.field,
            weight_low=self.weight_low,
            weight_high=self.weight_high,
            seed=self.seed,
            selectors=self.selectors,
            topology=self.topology,
            timesteps=self.timesteps,
            step_interval=self.step_interval,
            loss_rate=self.loss_rate,
            hello_interval=self.hello_interval,
            tc_interval=self.tc_interval,
        )

    @classmethod
    def from_config(
        cls,
        config: SweepConfig,
        *,
        experiment_id: str,
        title: str,
        measure: str,
        metric: str,
    ) -> "ExperimentSpec":
        """Wrap a legacy :class:`SweepConfig` plus the fields it never carried."""
        return cls(
            experiment_id=experiment_id,
            title=title,
            measure=measure,
            metric=metric,
            selectors=config.selectors,
            topology=config.topology,
            densities=config.densities,
            runs=config.runs,
            pairs_per_run=config.pairs_per_run,
            node_sample=config.node_sample,
            field=config.field,
            weight_low=config.weight_low,
            weight_high=config.weight_high,
            seed=config.seed,
            timesteps=config.timesteps,
            step_interval=config.step_interval,
            loss_rate=config.loss_rate,
            hello_interval=config.hello_interval,
            tc_interval=config.tc_interval,
        )

    def with_sweep_config(self, config: SweepConfig) -> "ExperimentSpec":
        """This spec with every sweep-shaped field replaced from ``config``.

        The preset wrappers use this: the preset fixes identity (id, title, measure,
        metric), the profile configuration fixes the sweep shape.
        """
        return replace(
            self,
            selectors=config.selectors,
            topology=config.topology,
            densities=config.densities,
            runs=config.runs,
            pairs_per_run=config.pairs_per_run,
            node_sample=config.node_sample,
            field=config.field,
            weight_low=config.weight_low,
            weight_high=config.weight_high,
            seed=config.seed,
            timesteps=config.timesteps,
            step_interval=config.step_interval,
            loss_rate=config.loss_rate,
            hello_interval=config.hello_interval,
            tc_interval=config.tc_interval,
        )

    def with_overrides(self, **overrides) -> "ExperimentSpec":
        """A copy of the spec with the given fields replaced (validates like a fresh spec)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ JSON round-trip

    def to_dict(self) -> dict:
        """Plain-dictionary form; ``ExperimentSpec.from_dict(spec.to_dict()) == spec``."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "measure": self.measure,
            "metric": self.metric,
            "selectors": list(self.selectors),
            "topology": self.topology,
            "densities": list(self.densities),
            "runs": self.runs,
            "pairs_per_run": self.pairs_per_run,
            "node_sample": self.node_sample,
            "field": {
                "width": self.field.width,
                "height": self.field.height,
                "radius": self.field.radius,
            },
            "weight_low": self.weight_low,
            "weight_high": self.weight_high,
            "seed": self.seed,
            "timesteps": self.timesteps,
            "step_interval": self.step_interval,
            "loss_rate": self.loss_rate,
            "hello_interval": self.hello_interval,
            "tc_interval": self.tc_interval,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        """Build a spec from a plain dictionary, rejecting unknown keys by name."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown ExperimentSpec field(s) {unknown}; known: {sorted(known)}")
        return cls(**payload).validate_names()

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def dump(self, path: Union[str, Path]) -> Path:
        """Write the spec as JSON to ``path`` and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
