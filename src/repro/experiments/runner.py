"""Shared plumbing of the evaluation harness.

One *trial* = one density, one run index, one random topology with freshly drawn link
weights.  The runner builds the topology exactly as the paper describes (Poisson deployment,
uniform weights), constructs every node's local view once, and runs each selector on those
shared views, so that the algorithms are compared on strictly identical inputs (the paper:
"Each approach is run on the same topology with the same source and destination").

Because every trial is derived deterministically from ``(config, metric, density,
run_index)``, trials are embarrassingly parallel: :func:`map_trials` optionally fans them
out over a multiprocessing pool (``workers=`` argument or the ``REPRO_WORKERS`` environment
variable) and re-assembles the per-trial results in run order, so a parallel sweep
aggregates bit-identically to a serial one.

Every cache in the harness hangs off the :class:`Trial` (the per-view compact graphs and
bottleneck forests live on the trial's views; the advertised topology is maintained
incrementally by the trial's :class:`AdvertisedTopologyBuilder`), and under the parallel
path each worker process builds its own trials.  Caches are therefore per-worker by
construction -- nothing warm crosses a process boundary -- and a worker's computation for a
given run index is the same deterministic function a serial run evaluates, which is what
keeps parallel sweeps bit-identical to serial ones even with all caches enabled (asserted
by ``tests/test_compactgraph_and_parallel.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.selection import AnsSelector, SelectionCache, SelectionResult, make_selector
from repro.experiments.config import SweepConfig
from repro.localview.view import LocalView
from repro.metrics import Metric, UniformWeightAssigner
from repro.registry import TOPOLOGY_MODELS
from repro.routing.advertised import AdvertisedTopology, AdvertisedTopologyBuilder
from repro.topology.network import Network
from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng


@dataclass
class Trial:
    """One generated topology, with lazily built local views and per-selector selections."""

    config: SweepConfig
    metric: Metric
    density: float
    run_index: int
    network: Network
    generator: Optional[object] = None
    _views: Optional[Dict[NodeId, LocalView]] = None
    _selections: Dict[str, Dict[NodeId, SelectionResult]] = field(default_factory=dict)
    _advertised: Optional[AdvertisedTopology] = None
    _advertised_builder: Optional[AdvertisedTopologyBuilder] = None
    _advertised_current: Optional[str] = None
    _link_state_edges: Dict[NodeId, list] = field(default_factory=dict)
    _dynamic: Optional[object] = None
    _selection_cache: Optional[SelectionCache] = None

    # ------------------------------------------------------------------ views

    def views(self) -> Dict[NodeId, LocalView]:
        """Every node's local view (built once in a single adjacency pass, shared by all
        selectors)."""
        if self._views is None:
            self._views = LocalView.all_from_network(self.network)
        return self._views

    # ------------------------------------------------------------------ selections

    def selections(self, selector_name: str) -> Dict[NodeId, SelectionResult]:
        """Per-node selection results of one selector (cached)."""
        if selector_name not in self._selections:
            selector = make_selector(selector_name)
            views = self.views()
            self._selections[selector_name] = {
                node: selector.select(view, self.metric) for node, view in views.items()
            }
        return self._selections[selector_name]

    def advertised_topology(self, selector_name: str) -> AdvertisedTopology:
        """The network-wide advertised topology induced by one selector.

        Maintained incrementally: one working graph per trial is diffed from the previously
        requested selector's advertised edge-set to this one instead of being rebuilt from
        zero (see :class:`AdvertisedTopologyBuilder`).  Consequently the returned topology
        is *live* -- it is valid until the next ``advertised_topology`` call with a
        different selector, which re-targets the shared graph.  Every sweep in the harness
        finishes routing over one selector's topology before requesting the next, so the
        contract never bites there; callers needing several topologies alive at once should
        use :func:`repro.routing.advertised.build_advertised_topology` directly.
        """
        if self._advertised_current == selector_name and self._advertised is not None:
            return self._advertised
        if self._advertised_builder is None:
            self._advertised_builder = AdvertisedTopologyBuilder(self.network)
        self._advertised = self._advertised_builder.build(self.selections(selector_name))
        self._advertised_current = selector_name
        return self._advertised

    # ------------------------------------------------------------------ link-state edges

    def link_state_edges(self, source: NodeId) -> list:
        """The HELLO-learned local edges of ``source``, cached once per trial.

        These are the ``(neighbor, other, attributes)`` triples a source node adds on top
        of the advertised topology when computing its routing table (RFC 3626: the one- and
        two-hop links known from HELLO piggybacking).  They depend only on the physical
        network -- not on any selector -- so one walk per source serves the routers of
        *every* selector in the trial (previously each selector's router re-walked the
        adjacency; see :class:`~repro.routing.hop_by_hop.HopByHopRouter`).
        """
        edges = self._link_state_edges.get(source)
        if edges is None:
            from repro.routing.hop_by_hop import hello_learned_edges

            edges = list(hello_learned_edges(self.network, source))
            self._link_state_edges[source] = edges
        return edges

    # ------------------------------------------------------------------ dynamics

    def dynamic_topology(self):
        """The :class:`~repro.mobility.dynamic.DynamicTopology` of this trial's run.

        Only available when the spec's topology model is dynamic (``rwp``,
        ``gauss-markov``, ``churn``, or any registered model exposing a
        ``dynamic(run_index, step_interval, network)`` factory); static models raise a
        self-explanatory error.  Built once per trial, reusing ``self.network`` as the
        time-zero snapshot (the driver takes ownership: the trial's network and the
        driver's views are live and advance in place as the dynamic measure steps).
        """
        if self._dynamic is None:
            factory = getattr(self.generator, "dynamic", None)
            if factory is None:
                raise ValueError(
                    f"topology model {self.config.topology!r} is static; dynamic sweeps "
                    f"need a mobility model such as 'rwp', 'gauss-markov' or 'churn'"
                )
            self._dynamic = factory(
                self.run_index,
                step_interval=self.config.step_interval,
                network=self.network,
            )
        return self._dynamic

    def selection_cache(self) -> SelectionCache:
        """The trial's cross-timestep :class:`SelectionCache`, wired to the dynamic driver.

        Built once per trial; its invalidation hook is registered as a step listener of
        :meth:`dynamic_topology`, so every ``advance`` automatically marks the step's
        :attr:`~repro.mobility.dynamic.StepDelta.dirty` owners for re-selection and
        nothing has to thread deltas through the measures by hand.
        """
        if self._selection_cache is None:
            cache = SelectionCache()
            self.dynamic_topology().add_step_listener(cache.on_step)
            self._selection_cache = cache
        return self._selection_cache

    def step_selections(self, selector_name: str) -> Dict[NodeId, SelectionResult]:
        """Per-node selections of one selector on the *current* step's views.

        The dynamic-trial counterpart of :meth:`selections`: results are maintained
        incrementally across timesteps by the trial's :class:`SelectionCache` -- only the
        owners whose local view the steps since this selector's last run dirtied re-run
        the selector; everyone else reuses the previous step's
        :class:`~repro.core.selection.SelectionResult`.  Bit-identical to running the
        selector from scratch on every node each step (pinned by
        ``tests/test_incremental_selection.py``), and per-trial, hence per-worker under
        ``REPRO_WORKERS``.
        """
        dynamic = self.dynamic_topology()
        return self.selection_cache().select_all(
            selector_name, self.metric, dynamic.views(), network=self.network
        )

    # ------------------------------------------------------------------ sampling

    def sample_nodes(self, count: Optional[int], purpose: str) -> List[NodeId]:
        """A deterministic sample of nodes (all of them when ``count`` is None or large)."""
        nodes = self.network.nodes()
        if count is None or count >= len(nodes):
            return nodes
        rng = spawn_rng(self.config.seed, purpose, self.density, self.run_index)
        return sorted(rng.sample(nodes, count))

    def sample_pairs(self, count: int) -> List[Tuple[NodeId, NodeId]]:
        """Random source/destination pairs within the (connected) topology."""
        nodes = self.network.nodes()
        if len(nodes) < 2:
            return []
        rng = spawn_rng(self.config.seed, "pairs", self.density, self.run_index)
        pairs: List[Tuple[NodeId, NodeId]] = []
        for _ in range(count):
            source, destination = rng.sample(nodes, 2)
            pairs.append((source, destination))
        return pairs


def build_trial(config: SweepConfig, metric: Metric, density: float, run_index: int) -> Trial:
    """Generate the topology of one trial, following the paper's simulation settings.

    The topology model is resolved by registry name from ``config.topology`` (the paper's
    Poisson deployment by default, which restricts to the largest connected component so
    that every sampled source/destination pair has at least one path -- the paper routes
    between randomly chosen nodes and reports QoS overheads, which presumes reachability).
    """
    assigner = UniformWeightAssigner(
        metric=metric,
        low=config.weight_low,
        high=config.weight_high,
        seed=config.seed,
    )
    generator = TOPOLOGY_MODELS.create(
        config.topology,
        field=config.field,
        density=density,
        seed=config.seed,
        weight_assigners=(assigner,),
    )
    network = generator.generate(run_index)
    return Trial(
        config=config,
        metric=metric,
        density=density,
        run_index=run_index,
        network=network,
        generator=generator,
    )


def iter_trials(config: SweepConfig, metric: Metric, density: float) -> Iterable[Trial]:
    """All trials of one density, in run order."""
    for run_index in range(config.runs):
        yield build_trial(config, metric, density, run_index)


# ---------------------------------------------------------------------- parallel execution


def resolve_workers(workers: Optional[int] = None) -> int:
    """Number of worker processes to use for a sweep.

    ``workers=None`` falls back to the ``REPRO_WORKERS`` environment variable; an unset or
    empty variable means serial execution.  ``0`` (argument or variable) means "one worker
    per CPU".  The result is always at least 1.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _trial_job(job: Tuple[SweepConfig, Metric, float, int, Callable]) -> object:
    """Build one trial in the worker process and apply the per-trial function to it."""
    config, metric, density, run_index, per_trial = job
    return per_trial(build_trial(config, metric, density, run_index))


def map_trials(
    config: SweepConfig,
    metric: Metric,
    density: float,
    per_trial: Callable[[Trial], object],
    workers: Optional[int] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List[object]:
    """Apply ``per_trial`` to every trial of one density and return the results in run order.

    ``per_trial`` must be a picklable module-level callable returning picklable data.  With
    ``workers > 1`` the trials are *built and processed* inside worker processes (each trial
    is derived deterministically from its run index, so nothing needs to be shipped besides
    the configuration); results still arrive in run order, which is what guarantees that
    parallel sweeps aggregate bit-identically to serial ones.  ``on_result`` is invoked in
    the parent process, in run order, as each result becomes available (the CLI uses it for
    progress reporting).
    """
    workers = resolve_workers(workers)
    results: List[object] = []
    if workers == 1 or config.runs <= 1:
        for run_index in range(config.runs):
            result = per_trial(build_trial(config, metric, density, run_index))
            if on_result is not None:
                on_result(run_index, result)
            results.append(result)
        return results

    jobs = [
        (config, metric, density, run_index, per_trial) for run_index in range(config.runs)
    ]
    with multiprocessing.Pool(processes=min(workers, config.runs)) as pool:
        for run_index, result in enumerate(pool.imap(_trial_job, jobs, chunksize=1)):
            if on_result is not None:
                on_result(run_index, result)
            results.append(result)
    return results
