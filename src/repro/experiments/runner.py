"""Shared plumbing of the evaluation harness.

One *trial* = one density, one run index, one random topology with freshly drawn link
weights.  The runner builds the topology exactly as the paper describes (Poisson deployment,
uniform weights), constructs every node's local view once, and runs each selector on those
shared views, so that the algorithms are compared on strictly identical inputs (the paper:
"Each approach is run on the same topology with the same source and destination").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.selection import AnsSelector, SelectionResult, make_selector
from repro.experiments.config import SweepConfig
from repro.localview.view import LocalView
from repro.metrics import Metric, UniformWeightAssigner
from repro.routing.advertised import AdvertisedTopology, build_advertised_topology
from repro.topology.generators import PoissonNetworkGenerator
from repro.topology.network import Network
from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng


@dataclass
class Trial:
    """One generated topology, with lazily built local views and per-selector selections."""

    config: SweepConfig
    metric: Metric
    density: float
    run_index: int
    network: Network
    _views: Optional[Dict[NodeId, LocalView]] = None
    _selections: Dict[str, Dict[NodeId, SelectionResult]] = field(default_factory=dict)
    _advertised: Dict[str, AdvertisedTopology] = field(default_factory=dict)

    # ------------------------------------------------------------------ views

    def views(self) -> Dict[NodeId, LocalView]:
        """Every node's local view (built once, shared by all selectors)."""
        if self._views is None:
            self._views = {
                node: LocalView.from_network(self.network, node) for node in self.network.nodes()
            }
        return self._views

    # ------------------------------------------------------------------ selections

    def selections(self, selector_name: str) -> Dict[NodeId, SelectionResult]:
        """Per-node selection results of one selector (cached)."""
        if selector_name not in self._selections:
            selector = make_selector(selector_name)
            views = self.views()
            self._selections[selector_name] = {
                node: selector.select(view, self.metric) for node, view in views.items()
            }
        return self._selections[selector_name]

    def advertised_topology(self, selector_name: str) -> AdvertisedTopology:
        """The network-wide advertised topology induced by one selector (cached)."""
        if selector_name not in self._advertised:
            self._advertised[selector_name] = build_advertised_topology(
                self.network, self.selections(selector_name)
            )
        return self._advertised[selector_name]

    # ------------------------------------------------------------------ sampling

    def sample_nodes(self, count: Optional[int], purpose: str) -> List[NodeId]:
        """A deterministic sample of nodes (all of them when ``count`` is None or large)."""
        nodes = self.network.nodes()
        if count is None or count >= len(nodes):
            return nodes
        rng = spawn_rng(self.config.seed, purpose, self.density, self.run_index)
        return sorted(rng.sample(nodes, count))

    def sample_pairs(self, count: int) -> List[Tuple[NodeId, NodeId]]:
        """Random source/destination pairs within the (connected) topology."""
        nodes = self.network.nodes()
        if len(nodes) < 2:
            return []
        rng = spawn_rng(self.config.seed, "pairs", self.density, self.run_index)
        pairs: List[Tuple[NodeId, NodeId]] = []
        for _ in range(count):
            source, destination = rng.sample(nodes, 2)
            pairs.append((source, destination))
        return pairs


def build_trial(config: SweepConfig, metric: Metric, density: float, run_index: int) -> Trial:
    """Generate the topology of one trial, following the paper's simulation settings.

    The topology is restricted to its largest connected component so that every sampled
    source/destination pair has at least one path (the paper routes between randomly chosen
    nodes and reports QoS overheads, which presumes reachability).
    """
    assigner = UniformWeightAssigner(
        metric=metric,
        low=config.weight_low,
        high=config.weight_high,
        seed=config.seed,
    )
    generator = PoissonNetworkGenerator(
        field=config.field,
        degree=density,
        seed=config.seed,
        weight_assigners=(assigner,),
        restrict_to_largest_component=True,
    )
    network = generator.generate(run_index)
    return Trial(
        config=config,
        metric=metric,
        density=density,
        run_index=run_index,
        network=network,
    )


def iter_trials(config: SweepConfig, metric: Metric, density: float) -> Iterable[Trial]:
    """All trials of one density, in run order."""
    for run_index in range(config.runs):
        yield build_trial(config, metric, density, run_index)
