"""Shared plumbing of the evaluation harness.

One *trial* = one density, one run index, one random topology with freshly drawn link
weights.  The runner builds the topology exactly as the paper describes (Poisson deployment,
uniform weights), constructs every node's local view once, and runs each selector on those
shared views, so that the algorithms are compared on strictly identical inputs (the paper:
"Each approach is run on the same topology with the same source and destination").

Because every trial is derived deterministically from ``(config, metric, density,
run_index)``, trials are embarrassingly parallel: :func:`map_trials` optionally fans them
out over a multiprocessing pool (``workers=`` argument or the ``REPRO_WORKERS`` environment
variable) and re-assembles the per-trial results in run order, so a parallel sweep
aggregates bit-identically to a serial one.

Determinism is also what makes the trials *supervisable*: a trial that raises, hangs past
``REPRO_TRIAL_TIMEOUT`` seconds, or whose worker process dies (the pool respawns dead
workers automatically; the supervisor detects the lost task by its missed deadline) is
simply retried with bounded exponential backoff, up to ``REPRO_MAX_RETRIES`` extra
attempts -- and because a retry re-derives the identical trial from the identical inputs,
a recovered sweep is bit-identical to an undisturbed one.  A trial that exhausts its
retries either aborts the sweep (``on_error="fail"``, the default) or is recorded as a
structured :class:`TrialFailure` in the result list (``on_error="skip"``), which the engine
turns into an ``on_trial_error`` sink event.

Every cache in the harness hangs off the :class:`Trial` (the per-view compact graphs and
bottleneck forests live on the trial's views; the advertised topology is maintained
incrementally by the trial's :class:`AdvertisedTopologyBuilder`), and under the parallel
path each worker process builds its own trials.  Caches are therefore per-worker by
construction -- nothing warm crosses a process boundary -- and a worker's computation for a
given run index is the same deterministic function a serial run evaluates, which is what
keeps parallel sweeps bit-identical to serial ones even with all caches enabled (asserted
by ``tests/test_compactgraph_and_parallel.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.selection import AnsSelector, SelectionCache, SelectionResult, make_selector
from repro.experiments.config import SweepConfig
from repro.localview.networkgraph import NetworkGraph
from repro.obs import runtime as obs
from repro.obs.registry import MetricsRegistry, TrialTelemetry
from repro.localview.view import LocalView
from repro.metrics import Metric, UniformWeightAssigner
from repro.registry import TOPOLOGY_MODELS
from repro.routing.advertised import AdvertisedTopology, AdvertisedTopologyBuilder
from repro.topology.network import Network
from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng


@dataclass
class Trial:
    """One generated topology, with lazily built local views and per-selector selections."""

    config: SweepConfig
    metric: Metric
    density: float
    run_index: int
    network: Network
    generator: Optional[object] = None
    _views: Optional[Dict[NodeId, LocalView]] = None
    _network_graph: Optional[NetworkGraph] = None
    _selections: Dict[str, Dict[NodeId, SelectionResult]] = field(default_factory=dict)
    _advertised: Optional[AdvertisedTopology] = None
    _advertised_builder: Optional[AdvertisedTopologyBuilder] = None
    _advertised_current: Optional[str] = None
    _link_state_edges: Dict[NodeId, list] = field(default_factory=dict)
    _dynamic: Optional[object] = None
    _selection_cache: Optional[SelectionCache] = None

    # ------------------------------------------------------------------ views

    def network_graph(self) -> NetworkGraph:
        """The trial's shared network-level CSR (built once, windowed by every view).

        One flat ``indptr``/``indices`` adjacency plus one numpy weight array per metric
        token for the whole network; the views returned by :meth:`views` attach to it so
        the batched solver kernels can expand all owners' frontiers together.  Snapshot
        semantics: like :meth:`views`, it describes the trial's network at build time.
        """
        if self._network_graph is None:
            with obs.span("csr_build"):
                self._network_graph = NetworkGraph.from_network(self.network)
        return self._network_graph

    def views(self) -> Dict[NodeId, LocalView]:
        """Every node's local view (built once in a single adjacency pass, shared by all
        selectors), attached to the trial's shared :meth:`network_graph`."""
        if self._views is None:
            self._views = LocalView.all_from_network(
                self.network, network_graph=self.network_graph()
            )
        return self._views

    # ------------------------------------------------------------------ selections

    def selections(self, selector_name: str) -> Dict[NodeId, SelectionResult]:
        """Per-node selection results of one selector (cached).

        Runs through :meth:`AnsSelector.select_all` so selectors that batch (FNBP's
        first-hop solves run as shared-CSR kernels over all owners at once) get their
        fast path; per-owner results are bit-identical to per-view ``select`` calls.
        """
        if selector_name not in self._selections:
            selector = make_selector(selector_name)
            self._selections[selector_name] = selector.select_all(
                self.network, self.metric, views=self.views()
            )
        return self._selections[selector_name]

    def advertised_topology(self, selector_name: str) -> AdvertisedTopology:
        """The network-wide advertised topology induced by one selector.

        Maintained incrementally: one working graph per trial is diffed from the previously
        requested selector's advertised edge-set to this one instead of being rebuilt from
        zero (see :class:`AdvertisedTopologyBuilder`).  Consequently the returned topology
        is *live* -- it is valid until the next ``advertised_topology`` call with a
        different selector, which re-targets the shared graph.  Every sweep in the harness
        finishes routing over one selector's topology before requesting the next, so the
        contract never bites there; callers needing several topologies alive at once should
        use :func:`repro.routing.advertised.build_advertised_topology` directly.
        """
        if self._advertised_current == selector_name and self._advertised is not None:
            return self._advertised
        if self._advertised_builder is None:
            self._advertised_builder = AdvertisedTopologyBuilder(self.network)
        self._advertised = self._advertised_builder.build(self.selections(selector_name))
        self._advertised_current = selector_name
        return self._advertised

    # ------------------------------------------------------------------ link-state edges

    def link_state_edges(self, source: NodeId) -> list:
        """The HELLO-learned local edges of ``source``, cached once per trial.

        These are the ``(neighbor, other, attributes)`` triples a source node adds on top
        of the advertised topology when computing its routing table (RFC 3626: the one- and
        two-hop links known from HELLO piggybacking).  They depend only on the physical
        network -- not on any selector -- so one walk per source serves the routers of
        *every* selector in the trial (previously each selector's router re-walked the
        adjacency; see :class:`~repro.routing.hop_by_hop.HopByHopRouter`).
        """
        edges = self._link_state_edges.get(source)
        if edges is None:
            from repro.routing.hop_by_hop import hello_learned_edges

            edges = list(hello_learned_edges(self.network, source))
            self._link_state_edges[source] = edges
        return edges

    # ------------------------------------------------------------------ dynamics

    def dynamic_topology(self):
        """The :class:`~repro.mobility.dynamic.DynamicTopology` of this trial's run.

        Only available when the spec's topology model is dynamic (``rwp``,
        ``gauss-markov``, ``churn``, or any registered model exposing a
        ``dynamic(run_index, step_interval, network)`` factory); static models raise a
        self-explanatory error.  Built once per trial, reusing ``self.network`` as the
        time-zero snapshot (the driver takes ownership: the trial's network and the
        driver's views are live and advance in place as the dynamic measure steps).
        """
        if self._dynamic is None:
            factory = getattr(self.generator, "dynamic", None)
            if factory is None:
                raise ValueError(
                    f"topology model {self.config.topology!r} is static; dynamic sweeps "
                    f"need a mobility model such as 'rwp', 'gauss-markov' or 'churn'"
                )
            self._dynamic = factory(
                self.run_index,
                step_interval=self.config.step_interval,
                network=self.network,
            )
        return self._dynamic

    def selection_cache(self) -> SelectionCache:
        """The trial's cross-timestep :class:`SelectionCache`, wired to the dynamic driver.

        Built once per trial; its invalidation hook is registered as a step listener of
        :meth:`dynamic_topology`, so every ``advance`` automatically marks the step's
        :attr:`~repro.mobility.dynamic.StepDelta.dirty` owners for re-selection and
        nothing has to thread deltas through the measures by hand.
        """
        if self._selection_cache is None:
            cache = SelectionCache()
            self.dynamic_topology().add_step_listener(cache.on_step)
            self._selection_cache = cache
        return self._selection_cache

    def step_selections(self, selector_name: str) -> Dict[NodeId, SelectionResult]:
        """Per-node selections of one selector on the *current* step's views.

        The dynamic-trial counterpart of :meth:`selections`: results are maintained
        incrementally across timesteps by the trial's :class:`SelectionCache` -- only the
        owners whose local view the steps since this selector's last run dirtied re-run
        the selector; everyone else reuses the previous step's
        :class:`~repro.core.selection.SelectionResult`.  Bit-identical to running the
        selector from scratch on every node each step (pinned by
        ``tests/test_incremental_selection.py``), and per-trial, hence per-worker under
        ``REPRO_WORKERS``.
        """
        dynamic = self.dynamic_topology()
        return self.selection_cache().select_all(
            selector_name, self.metric, dynamic.views(), network=self.network
        )

    # ------------------------------------------------------------------ sampling

    def sample_nodes(self, count: Optional[int], purpose: str) -> List[NodeId]:
        """A deterministic sample of nodes (all of them when ``count`` is None or large)."""
        nodes = self.network.nodes()
        if count is None or count >= len(nodes):
            return nodes
        rng = spawn_rng(self.config.seed, purpose, self.density, self.run_index)
        return sorted(rng.sample(nodes, count))

    def sample_pairs(self, count: int) -> List[Tuple[NodeId, NodeId]]:
        """Random source/destination pairs within the (connected) topology."""
        nodes = self.network.nodes()
        if len(nodes) < 2:
            return []
        rng = spawn_rng(self.config.seed, "pairs", self.density, self.run_index)
        pairs: List[Tuple[NodeId, NodeId]] = []
        for _ in range(count):
            source, destination = rng.sample(nodes, 2)
            pairs.append((source, destination))
        return pairs


def build_trial(config: SweepConfig, metric: Metric, density: float, run_index: int) -> Trial:
    """Generate the topology of one trial, following the paper's simulation settings.

    The topology model is resolved by registry name from ``config.topology`` (the paper's
    Poisson deployment by default, which restricts to the largest connected component so
    that every sampled source/destination pair has at least one path -- the paper routes
    between randomly chosen nodes and reports QoS overheads, which presumes reachability).
    """
    assigner = UniformWeightAssigner(
        metric=metric,
        low=config.weight_low,
        high=config.weight_high,
        seed=config.seed,
    )
    generator = TOPOLOGY_MODELS.create(
        config.topology,
        field=config.field,
        density=density,
        seed=config.seed,
        weight_assigners=(assigner,),
    )
    with obs.span("topology_build"):
        network = generator.generate(run_index)
    return Trial(
        config=config,
        metric=metric,
        density=density,
        run_index=run_index,
        network=network,
        generator=generator,
    )


def iter_trials(config: SweepConfig, metric: Metric, density: float) -> Iterable[Trial]:
    """All trials of one density, in run order."""
    for run_index in range(config.runs):
        yield build_trial(config, metric, density, run_index)


# ---------------------------------------------------------------------- parallel execution


#: Hard ceiling on worker-process counts; anything above this is a typo, not a machine.
MAX_WORKERS = 1024


def resolve_workers(workers: Optional[int] = None) -> int:
    """Number of worker processes to use for a sweep.

    ``workers=None`` falls back to the ``REPRO_WORKERS`` environment variable; an unset or
    empty variable means serial execution.  The ``workers`` *argument* (the CLIs'
    ``--workers`` flag) keeps its documented ``0`` = "one worker per CPU" meaning; the
    environment variable must be a positive integer -- zero, negative and absurdly large
    values are configuration mistakes and are rejected with an error naming the variable.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc
        if workers <= 0:
            raise ValueError(
                f"REPRO_WORKERS must be a positive worker-process count, got {workers} "
                f"(unset the variable for serial execution)"
            )
        if workers > MAX_WORKERS:
            raise ValueError(
                f"REPRO_WORKERS={workers} exceeds the sanity cap of {MAX_WORKERS} "
                f"worker processes"
            )
        return workers
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative (0 = one per CPU), got {workers}")
    if workers > MAX_WORKERS:
        raise ValueError(f"workers={workers} exceeds the sanity cap of {MAX_WORKERS}")
    return workers


def resolve_max_retries(max_retries: Optional[int] = None) -> int:
    """How many *extra* attempts a failed trial gets (``REPRO_MAX_RETRIES``, default 2)."""
    if max_retries is None:
        raw = os.environ.get("REPRO_MAX_RETRIES", "").strip()
        if not raw:
            return 2
        try:
            max_retries = int(raw)
        except ValueError as exc:
            raise ValueError(f"REPRO_MAX_RETRIES must be an integer, got {raw!r}") from exc
    if max_retries < 0:
        raise ValueError(f"REPRO_MAX_RETRIES must be non-negative, got {max_retries}")
    return max_retries


def resolve_trial_timeout(trial_timeout: Optional[float] = None) -> Optional[float]:
    """Per-trial deadline in seconds (``REPRO_TRIAL_TIMEOUT``, default 300; 0 disables).

    The timeout is how the parallel supervisor detects a *lost* trial -- one whose worker
    process was killed, so its result will never arrive -- as well as a genuinely hung one.
    Serial execution cannot preempt a running trial, so the timeout only applies under
    ``workers > 1``.
    """
    if trial_timeout is None:
        raw = os.environ.get("REPRO_TRIAL_TIMEOUT", "").strip()
        if not raw:
            return 300.0
        try:
            trial_timeout = float(raw)
        except ValueError as exc:
            raise ValueError(f"REPRO_TRIAL_TIMEOUT must be a number of seconds, got {raw!r}") from exc
    if trial_timeout < 0:
        raise ValueError(f"REPRO_TRIAL_TIMEOUT must be non-negative, got {trial_timeout}")
    return None if trial_timeout == 0 else trial_timeout


@dataclass(frozen=True)
class TrialFailure:
    """One trial that exhausted its retries, as structured data.

    Under ``on_error="skip"`` these take the failed trial's place in the result list (and
    become ``on_trial_error`` sink events in the engine); under ``on_error="fail"`` the
    same information rides on the raised :class:`TrialExecutionError`.
    """

    density: float
    run_index: int
    error: str
    error_type: str
    attempts: int


class TrialExecutionError(RuntimeError):
    """A trial failed every attempt and the sweep runs with ``on_error="fail"``."""

    def __init__(self, failure: TrialFailure) -> None:
        super().__init__(
            f"trial (density={failure.density:g}, run={failure.run_index}) failed after "
            f"{failure.attempts} attempt(s): {failure.error_type}: {failure.error} "
            f"(run with --on-error skip to record failures and continue)"
        )
        self.failure = failure


def _backoff_delay(attempt: int) -> float:
    """Bounded exponential backoff before re-attempting a failed trial (seconds)."""
    return min(2.0, 0.05 * (2 ** attempt))


def _execute_trial(
    config: SweepConfig,
    metric: Metric,
    density: float,
    run_index: int,
    attempt: int,
    per_trial: Callable,
    metrics: bool = False,
) -> object:
    """Build and measure one trial (attempt-aware so injected faults can target retries).

    This is the single choke point both the serial and the worker-process path run trials
    through; when the ``REPRO_FAULTS`` environment variable is set, the deterministic
    fault plans of :mod:`repro.testing.faults` are applied here (in whichever process the
    trial executes), which is how the fault-tolerance suite injects raises and worker
    kills without patching any production code.

    With ``metrics=True`` the trial runs under a fresh per-trial
    :class:`~repro.obs.registry.MetricsRegistry` (installed as the process's ambient
    registry for the duration, restored in a ``finally`` so raising trials cannot leak
    it) and returns a :class:`~repro.obs.registry.TrialTelemetry` envelope pairing the
    payload with the registry's snapshot -- which is how worker processes serialize their
    telemetry back for the engine's deterministic run-order merge.  Failed attempts
    discard their partial registry: only the successful attempt's telemetry ships, so a
    retried trial contributes exactly what an undisturbed one would.
    """
    if os.environ.get("REPRO_FAULTS"):
        from repro.testing.faults import apply_trial_faults

        apply_trial_faults(density, run_index, attempt)
    if not metrics:
        return per_trial(build_trial(config, metric, density, run_index))
    registry = MetricsRegistry()
    previous = obs.install(registry)
    try:
        with registry.span("trial"):
            trial = build_trial(config, metric, density, run_index)
            with registry.span("measure"):
                payload = per_trial(trial)
    finally:
        obs.install(previous)
    registry.count("runner.trials", 1)
    return TrialTelemetry(payload, registry.snapshot())


def _trial_job(job: Tuple[SweepConfig, Metric, float, int, int, Callable, bool]) -> object:
    """Unpack one trial job inside the worker process and execute it."""
    config, metric, density, run_index, attempt, per_trial, metrics = job
    return _execute_trial(config, metric, density, run_index, attempt, per_trial, metrics)


def _give_up(
    density: float, run_index: int, attempts: int, exc: BaseException, on_error: str
) -> TrialFailure:
    """Turn an exhausted trial into a :class:`TrialFailure`, raising under ``fail``."""
    obs.add("runner.trial_failures")
    failure = TrialFailure(
        density=density,
        run_index=run_index,
        error=str(exc) or type(exc).__name__,
        error_type=type(exc).__name__,
        attempts=attempts,
    )
    if on_error == "fail":
        raise TrialExecutionError(failure) from exc
    return failure


def _map_trials_serial(
    config: SweepConfig,
    metric: Metric,
    density: float,
    per_trial: Callable,
    on_result: Optional[Callable],
    max_retries: int,
    on_error: str,
    metrics: bool,
) -> List[object]:
    """The serial path, with the same retry/backoff/failure semantics as the supervisor.

    (Timeouts require preemption and therefore worker processes; a serial trial that
    raises is retried, but one that hangs, hangs.)
    """
    results: List[object] = []
    for run_index in range(config.runs):
        attempt = 0
        while True:
            try:
                result = _execute_trial(
                    config, metric, density, run_index, attempt, per_trial, metrics
                )
                break
            except Exception as exc:  # noqa: BLE001 - KeyboardInterrupt et al. propagate
                if attempt >= max_retries:
                    result = _give_up(density, run_index, attempt + 1, exc, on_error)
                    break
                time.sleep(_backoff_delay(attempt))
                obs.add("runner.retries")
                attempt += 1
        if on_result is not None:
            on_result(run_index, result)
        results.append(result)
    return results


def map_trials(
    config: SweepConfig,
    metric: Metric,
    density: float,
    per_trial: Callable[[Trial], object],
    workers: Optional[int] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
    on_error: str = "fail",
    max_retries: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    metrics: bool = False,
) -> List[Union[object, TrialFailure]]:
    """Apply ``per_trial`` to every trial of one density and return the results in run order.

    ``per_trial`` must be a picklable module-level callable returning picklable data.  With
    ``workers > 1`` the trials are *built and processed* inside worker processes (each trial
    is derived deterministically from its run index, so nothing needs to be shipped besides
    the configuration); results still arrive in run order, which is what guarantees that
    parallel sweeps aggregate bit-identically to serial ones.  ``on_result`` is invoked in
    the parent process, in run order, as each result becomes available (the engine uses it
    to emit per-trial sink events).

    Failure semantics: a trial that raises -- or, in the parallel path, misses its
    ``trial_timeout`` deadline, which is also how a SIGKILLed worker's lost task surfaces
    (the pool respawns dead processes on its own; the task is simply resubmitted) -- is
    retried with bounded exponential backoff up to ``max_retries`` extra attempts
    (``REPRO_MAX_RETRIES``).  Retries are bit-identical re-derivations, so a recovered
    sweep equals an undisturbed one.  When retries are exhausted, ``on_error="fail"``
    raises :class:`TrialExecutionError` and ``on_error="skip"`` records a
    :class:`TrialFailure` in the trial's slot of the returned list (also handed to
    ``on_result``).

    ``metrics=True`` wraps each trial's execution in a per-trial telemetry registry (see
    :func:`_execute_trial`); every successful slot of the returned list is then a
    :class:`~repro.obs.registry.TrialTelemetry` envelope instead of the bare payload.
    """
    if on_error not in ("fail", "skip"):
        raise ValueError(f"on_error must be 'fail' or 'skip', got {on_error!r}")
    workers = resolve_workers(workers)
    max_retries = resolve_max_retries(max_retries)
    if workers == 1 or config.runs <= 1:
        return _map_trials_serial(
            config, metric, density, per_trial, on_result, max_retries, on_error, metrics
        )

    trial_timeout = resolve_trial_timeout(trial_timeout)
    pool_size = min(workers, config.runs)
    results: List[object] = []
    with multiprocessing.Pool(processes=pool_size) as pool:

        def submit(run_index: int, attempt: int):
            job = (config, metric, density, run_index, attempt, per_trial, metrics)
            return pool.apply_async(_trial_job, (job,))

        pending = {run_index: submit(run_index, 0) for run_index in range(config.runs)}
        for run_index in range(config.runs):
            attempt = 0
            handle = pending.pop(run_index)
            while True:
                # Jobs are dispatched to workers in submission order, so when the
                # consumer reaches run k the first submission of k is already running or
                # done -- but a *resubmission* queues behind every later run, hence the
                # deadline is stretched by the depth of the queue in front of it.
                deadline = trial_timeout
                if deadline is not None and attempt > 0:
                    queued_ahead = config.runs - run_index - 1
                    deadline = trial_timeout * (1.0 + queued_ahead / pool_size + attempt)
                outcome, result_or_exc = _await_handle(pool, handle, deadline)
                if outcome == "ok":
                    result = result_or_exc
                    break
                exc = result_or_exc
                if attempt >= max_retries:
                    result = _give_up(density, run_index, attempt + 1, exc, on_error)
                    break
                time.sleep(_backoff_delay(attempt))
                obs.add("runner.retries")
                attempt += 1
                handle = submit(run_index, attempt)
            if on_result is not None:
                on_result(run_index, result)
            results.append(result)
    return results


#: Polling granularity of the supervisor's wait (seconds); bounds how long a crashed
#: worker goes unnoticed without burning CPU on the healthy path.
_SUPERVISOR_POLL = 0.2


def _pool_pids(pool) -> Optional[frozenset]:
    """The pool's current worker PIDs (``None`` when the internals are unavailable)."""
    try:
        return frozenset(process.pid for process in pool._pool)
    except Exception:  # noqa: BLE001 - private API; degrade to deadline-only detection
        return None


def _await_handle(pool, handle, deadline: Optional[float]) -> Tuple[str, object]:
    """Wait for one trial's result, watching the pool for worker crashes.

    Returns ``("ok", result)`` or ``("error", exception)``.  Waiting happens in short
    slices; between slices the set of worker PIDs is compared against the snapshot taken
    when the wait began.  A changed set means a worker died and the pool respawned it --
    the task *may* have died with it, so the supervisor gives up on this handle
    immediately instead of sitting out the full deadline.  (If the crashed worker was
    running some *other* task, the resubmission merely duplicates work: trials are pure,
    so whichever attempt's result is consumed, the bytes are the same.)  A ``None``
    deadline waits forever but still reacts to crashes.
    """
    pids = _pool_pids(pool)
    waited = 0.0
    while True:
        remaining = _SUPERVISOR_POLL if deadline is None else min(_SUPERVISOR_POLL, deadline - waited)
        try:
            return ("ok", handle.get(max(remaining, 0.0)))
        except multiprocessing.TimeoutError:
            pass
        except Exception as exc:  # noqa: BLE001 - the trial's own exception, re-raised by get()
            return ("error", exc)
        waited += _SUPERVISOR_POLL
        current = _pool_pids(pool)
        if pids is not None and current is not None and current != pids:
            obs.add("runner.worker_respawns")
            return (
                "error",
                TimeoutError(
                    "a worker process died while this trial was pending (respawned by "
                    "the pool); the trial was retried"
                ),
            )
        if deadline is not None and waited >= deadline:
            obs.add("runner.timeouts")
            return (
                "error",
                TimeoutError(
                    f"no result within {deadline:g}s (worker killed, or trial hung past "
                    f"REPRO_TRIAL_TIMEOUT)"
                ),
            )
