"""Rendering and persisting experiment results.

The harness reports results as fixed-width text tables (the repository has no plotting
dependency); :func:`render_report` stitches several figures' tables into one document and
:func:`write_report` saves it, which is how ``EXPERIMENTS.md``'s measured sections are
produced.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Mapping, Union

from repro.experiments.results import ExperimentResult


def render_report(results: Mapping[int, ExperimentResult] | Iterable[ExperimentResult], header: str = "") -> str:
    """Render one or more experiment results as a single text report."""
    if isinstance(results, Mapping):
        ordered = [results[key] for key in sorted(results)]
    else:
        ordered = list(results)
    sections = [header] if header else []
    for result in ordered:
        sections.append(result.to_table())
    return "\n\n".join(sections) + "\n"


def write_report(
    results: Mapping[int, ExperimentResult] | Iterable[ExperimentResult],
    path: Union[str, Path],
    header: str = "",
) -> Path:
    """Write the text report to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(results, header=header), encoding="utf-8")
    return path


def write_json(
    results: Mapping[int, ExperimentResult] | Iterable[ExperimentResult],
    path: Union[str, Path],
) -> Path:
    """Write the results as JSON (one entry per experiment id) and return the path."""
    if isinstance(results, Mapping):
        ordered = [results[key] for key in sorted(results)]
    else:
        ordered = list(results)
    payload = {result.experiment_id: result.to_dict() for result in ordered}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path
