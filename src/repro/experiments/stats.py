"""Summary statistics used by the evaluation harness.

Kept dependency-light (no numpy required at call sites) and explicit about edge cases: the
overhead experiments can produce empty samples (e.g. every routing attempt at a density
failed), and those must surface as ``nan`` rather than crash or silently become zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of one sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean (nan for empty samples)."""
        if self.count == 0:
            return math.nan
        if self.count == 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        if self.count == 0:
            return (math.nan, math.nan)
        half_width = z * self.stderr
        return (self.mean - half_width, self.mean + half_width)


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a sample of real values (``nan``-free input expected)."""
    data: Sequence[float] = [float(value) for value in values]
    if not data:
        return Summary(count=0, mean=math.nan, std=math.nan, minimum=math.nan, maximum=math.nan)
    mean = sum(data) / len(data)
    if len(data) == 1:
        std = 0.0
    else:
        variance = sum((value - mean) ** 2 for value in data) / (len(data) - 1)
        std = math.sqrt(variance)
    return Summary(count=len(data), mean=mean, std=std, minimum=min(data), maximum=max(data))


def ratio(numerator: float, denominator: float) -> float:
    """A guarded ratio: ``nan`` when the denominator is zero."""
    if denominator == 0:
        return math.nan
    return numerator / denominator
