"""Experiment configuration.

The paper's simulation settings (Section IV.A): nodes deployed in a 1000 x 1000 square by a
Poisson point process with target mean degree δ, communication radius 100, link weights drawn
uniformly at random in a fixed interval, 100 independent runs, and one random
source/destination pair per run.  :func:`paper_config` reproduces those settings; the
``quick`` profile keeps the same shape but trims run counts and densities so the whole
benchmark suite finishes in minutes on a laptop (the figure shapes are already stable there).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.topology.generators import PAPER_FIELD, FieldSpec
from repro.utils.validation import require_positive

#: Densities of the bandwidth-metric figures (Figures 6 and 8).
BANDWIDTH_DENSITIES: Tuple[float, ...] = (10, 15, 20, 25, 30, 35)

#: Densities of the delay-metric figures (Figures 7 and 9).
DELAY_DENSITIES: Tuple[float, ...] = (5, 10, 15, 20, 25, 30)

#: The selectors every figure compares, in the paper's legend order.
PAPER_SELECTORS: Tuple[str, ...] = ("qolsr-mpr2", "topology-filtering", "fnbp")


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one density sweep.

    Attributes
    ----------
    densities:
        Mean node degrees to sweep (the x axis of every figure).
    runs:
        Number of independent topologies per density (the paper uses 100).
    pairs_per_run:
        Source/destination pairs evaluated per topology in the overhead experiments (the
        paper uses 1; more pairs per topology amortize the selection cost without changing
        the expectation being estimated).
    node_sample:
        In the advertised-set-size experiments, how many nodes per topology to average over
        (``None`` = all nodes, as in the paper; a sample keeps the quick profile fast).
    field:
        Deployment area and radio range.
    weight_low / weight_high:
        The fixed interval the link weights are drawn from.
    seed:
        Root seed; every topology, weight and pair draw is derived from it deterministically.
    selectors:
        Registry names of the selection algorithms to compare.
    topology:
        Registry name of the topology model trials are generated from (the paper's Poisson
        deployment by default; see :data:`repro.registry.TOPOLOGY_MODELS`).
    timesteps:
        How many timesteps each trial's topology is advanced through (0 = static sweep,
        which is every paper figure; dynamic measures such as ``ans-churn`` require at
        least 1 and a dynamic topology model -- see :mod:`repro.mobility`).
    step_interval:
        Simulated time units per timestep (the ``dt`` handed to the mobility model).
    loss_rate:
        Per-transmission loss probability of the protocol simulator's control channel
        (``[0, 1)``; only the protocol measures read it -- see :mod:`repro.protocol`).
    hello_interval / tc_interval:
        HELLO and TC emission periods of the protocol simulator, in simulated time units
        (RFC 3626 defaults; table-entry lifetimes scale with them).
    """

    densities: Tuple[float, ...] = BANDWIDTH_DENSITIES
    runs: int = 100
    pairs_per_run: int = 1
    node_sample: Optional[int] = None
    field: FieldSpec = field(default_factory=lambda: PAPER_FIELD)
    weight_low: float = 1.0
    weight_high: float = 10.0
    seed: int = 42
    selectors: Tuple[str, ...] = PAPER_SELECTORS
    topology: str = "poisson"
    timesteps: int = 0
    step_interval: float = 1.0
    loss_rate: float = 0.0
    hello_interval: float = 2.0
    tc_interval: float = 5.0

    def __post_init__(self) -> None:
        if not self.densities:
            raise ValueError("at least one density is required")
        for density in self.densities:
            require_positive(density, "density")
        require_positive(self.runs, "runs")
        require_positive(self.pairs_per_run, "pairs_per_run")
        if self.node_sample is not None:
            require_positive(self.node_sample, "node_sample")
        require_positive(self.weight_high, "weight_high")
        if self.weight_low <= 0 or self.weight_low > self.weight_high:
            raise ValueError("weights must satisfy 0 < weight_low <= weight_high")
        if not self.topology or not isinstance(self.topology, str):
            raise ValueError(f"topology must be a registry name, got {self.topology!r}")
        if self.timesteps < 0:
            raise ValueError(f"timesteps must be non-negative, got {self.timesteps}")
        require_positive(self.step_interval, "step_interval")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        require_positive(self.hello_interval, "hello_interval")
        require_positive(self.tc_interval, "tc_interval")

    def with_overrides(self, **overrides) -> "SweepConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **overrides)


def paper_config(metric_name: str = "bandwidth") -> SweepConfig:
    """The paper's full configuration for the given metric family."""
    densities = BANDWIDTH_DENSITIES if metric_name == "bandwidth" else DELAY_DENSITIES
    return SweepConfig(densities=densities, runs=100, pairs_per_run=1, node_sample=None)


def quick_config(metric_name: str = "bandwidth") -> SweepConfig:
    """A reduced configuration with the same shape, for CI and the benchmark suite."""
    densities = (10.0, 15.0, 20.0) if metric_name == "bandwidth" else (5.0, 10.0, 15.0)
    return SweepConfig(densities=densities, runs=3, pairs_per_run=3, node_sample=60)


def smoke_config(metric_name: str = "bandwidth") -> SweepConfig:
    """A tiny configuration used by the unit tests (seconds, not minutes)."""
    densities = (8.0,) if metric_name == "bandwidth" else (6.0,)
    return SweepConfig(
        densities=densities,
        runs=1,
        pairs_per_run=2,
        node_sample=20,
        field=FieldSpec(width=400.0, height=400.0, radius=100.0),
    )


def config_for_profile(profile: str, metric_name: str = "bandwidth") -> SweepConfig:
    """Look up a configuration by profile name (``paper``, ``quick`` or ``smoke``)."""
    factories = {"paper": paper_config, "quick": quick_config, "smoke": smoke_config}
    try:
        factory = factories[profile]
    except KeyError as exc:
        raise KeyError(f"unknown profile {profile!r}; known: {sorted(factories)}") from exc
    return factory(metric_name)
