"""QoS-overhead experiment (the paper's Figures 8 and 9) -- legacy entry point.

The measurement and aggregation logic lives in
:class:`repro.experiments.measures.OverheadMeasure` (registry name ``"overhead"``) and runs
through the generic spec-driven engine; :func:`run_overhead_experiment` is kept as a thin
wrapper over :func:`repro.experiments.engine.run_experiment` for callers that still hold a
:class:`SweepConfig` and a :class:`Metric` instance, and :func:`qos_overhead` (the paper's
overhead definition) is re-exported from :mod:`repro.experiments.measures`.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import SweepConfig
from repro.experiments.engine import run_experiment
from repro.experiments.measures import (  # noqa: F401  (re-exports)
    OverheadMeasure,
    _overhead_trial,
    qos_overhead,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.metrics import Metric


def run_overhead_experiment(
    config: SweepConfig,
    metric: Metric,
    experiment_id: str = "fig8",
    title: str = "QoS overhead vs the centralized optimum",
    progress: Optional[callable] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the overhead sweep and return one series per selector.

    ``workers`` (default: the ``REPRO_WORKERS`` environment variable) fans the trials of
    each density out over worker processes; aggregation happens in run order either way, so
    the output is identical to a serial run.
    """
    spec = ExperimentSpec.from_config(
        config, experiment_id=experiment_id, title=title, measure="overhead", metric=metric.name
    )
    return run_experiment(spec, workers=workers, metric=metric, progress=progress)
