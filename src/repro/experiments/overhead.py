"""QoS-overhead experiment (the paper's Figures 8 and 9).

For every density, generate topologies, pick random source/destination pairs and compare the
QoS value achieved when routing hop-by-hop over each protocol's advertised topology against
the optimal value achieved by a centralized QoS-weighted Dijkstra on the full graph:

* bandwidth overhead  = (b* - b) / b*   (how much of the optimal bandwidth was given up),
* delay overhead      = (d - d*) / d*   (how much extra delay was incurred),

exactly the paper's definitions.  Pairs whose packet is not delivered (routing loop or no
advertised route) are excluded from the overhead mean and reported separately through the
per-point ``delivery_ratio`` extra -- the paper does not report failures, and with the
default FNBP guard none are expected.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import SweepConfig
from repro.experiments.results import ExperimentResult, SeriesPoint
from repro.experiments.runner import build_trial
from repro.experiments.stats import summarize
from repro.metrics import Metric, MetricKind
from repro.routing.hop_by_hop import HopByHopRouter
from repro.routing.optimal import optimal_route


def qos_overhead(metric: Metric, achieved: float, optimal: float) -> float:
    """The paper's overhead of an achieved path value relative to the optimal value."""
    if optimal == 0:
        return float("nan")
    if metric.kind is MetricKind.CONCAVE:
        return (optimal - achieved) / optimal
    return (achieved - optimal) / optimal


def run_overhead_experiment(
    config: SweepConfig,
    metric: Metric,
    experiment_id: str = "fig8",
    title: str = "QoS overhead vs the centralized optimum",
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run the overhead sweep and return one series per selector."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        metric_name=metric.name,
        x_label="density",
        y_label=f"{metric.name} overhead",
    )
    overheads: dict[str, dict[float, list[float]]] = {
        name: {density: [] for density in config.densities} for name in config.selectors
    }
    deliveries: dict[str, dict[float, list[float]]] = {
        name: {density: [] for density in config.densities} for name in config.selectors
    }

    for density in config.densities:
        for run_index in range(config.runs):
            trial = build_trial(config, metric, density, run_index)
            if len(trial.network) < 2:
                continue
            pairs = trial.sample_pairs(config.pairs_per_run)
            for selector_name in config.selectors:
                advertised = trial.advertised_topology(selector_name)
                router = HopByHopRouter(trial.network, advertised, metric)
                for source, destination in pairs:
                    optimal = optimal_route(trial.network, source, destination, metric)
                    if not optimal.reachable or not metric.is_usable(optimal.value):
                        continue
                    outcome = router.link_state_route(source, destination)
                    deliveries[selector_name][density].append(1.0 if outcome.delivered else 0.0)
                    if outcome.delivered:
                        overheads[selector_name][density].append(
                            qos_overhead(metric, outcome.value, optimal.value)
                        )
            if progress is not None:
                progress(
                    f"[{experiment_id}] density={density:g} run={run_index + 1}/{config.runs} "
                    f"nodes={len(trial.network)}"
                )

    for selector_name in config.selectors:
        for density in config.densities:
            summary = summarize(overheads[selector_name][density])
            delivery = summarize(deliveries[selector_name][density])
            result.add_point(
                selector_name,
                SeriesPoint(
                    density=density,
                    summary=summary,
                    extra={"delivery_ratio": delivery.mean, "attempts": float(delivery.count)},
                ),
            )

    result.add_note(
        f"{config.runs} run(s) x {config.pairs_per_run} pair(s) per density; seed={config.seed}"
    )
    result.add_note("overhead averaged over delivered packets; see delivery_ratio per point")
    return result
