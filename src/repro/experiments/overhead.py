"""QoS-overhead experiment (the paper's Figures 8 and 9).

For every density, generate topologies, pick random source/destination pairs and compare the
QoS value achieved when routing hop-by-hop over each protocol's advertised topology against
the optimal value achieved by a centralized QoS-weighted Dijkstra on the full graph:

* bandwidth overhead  = (b* - b) / b*   (how much of the optimal bandwidth was given up),
* delay overhead      = (d - d*) / d*   (how much extra delay was incurred),

exactly the paper's definitions.  Pairs whose packet is not delivered (routing loop or no
advertised route) are excluded from the overhead mean and reported separately through the
per-point ``delivery_ratio`` extra -- the paper does not report failures, and with the
default FNBP guard none are expected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.config import SweepConfig
from repro.experiments.results import ExperimentResult, SeriesPoint
from repro.experiments.runner import Trial, map_trials
from repro.experiments.stats import summarize
from repro.metrics import Metric, MetricKind
from repro.routing.hop_by_hop import HopByHopRouter
from repro.routing.optimal import optimal_route


def qos_overhead(metric: Metric, achieved: float, optimal: float) -> float:
    """The paper's overhead of an achieved path value relative to the optimal value."""
    if optimal == 0:
        return float("nan")
    if metric.kind is MetricKind.CONCAVE:
        return (optimal - achieved) / optimal
    return (achieved - optimal) / optimal


def _overhead_trial(trial: Trial) -> dict:
    """Per-trial measurement: overheads and delivery flags per selector (worker-safe).

    The centralized optimum of each pair is computed once and shared by all selectors (it
    depends only on the topology), exactly as comparing "on the same topology with the same
    source and destination" requires.  The per-selector advertised topologies are diffed
    incrementally off one working graph (see :meth:`Trial.advertised_topology`); each
    selector's routing completes before the next topology is requested, which is exactly
    the access pattern that liveness contract requires.
    """
    metric = trial.metric
    if len(trial.network) < 2:
        return {"node_count": len(trial.network), "per_selector": {}}
    pairs = trial.sample_pairs(trial.config.pairs_per_run)
    routed_pairs = []
    for source, destination in pairs:
        optimal = optimal_route(trial.network, source, destination, metric)
        if not optimal.reachable or not metric.is_usable(optimal.value):
            continue
        routed_pairs.append((source, destination, optimal.value))

    per_selector: Dict[str, Tuple[List[float], List[float]]] = {}
    for selector_name in trial.config.selectors:
        advertised = trial.advertised_topology(selector_name)
        router = HopByHopRouter(trial.network, advertised, metric)
        overheads: List[float] = []
        deliveries: List[float] = []
        for source, destination, optimal_value in routed_pairs:
            outcome = router.link_state_route(source, destination)
            deliveries.append(1.0 if outcome.delivered else 0.0)
            if outcome.delivered:
                overheads.append(qos_overhead(metric, outcome.value, optimal_value))
        per_selector[selector_name] = (overheads, deliveries)
    return {"node_count": len(trial.network), "per_selector": per_selector}


def run_overhead_experiment(
    config: SweepConfig,
    metric: Metric,
    experiment_id: str = "fig8",
    title: str = "QoS overhead vs the centralized optimum",
    progress: Optional[callable] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the overhead sweep and return one series per selector.

    ``workers`` (default: the ``REPRO_WORKERS`` environment variable) fans the trials of
    each density out over worker processes; aggregation happens in run order either way, so
    the output is identical to a serial run.
    """
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        metric_name=metric.name,
        x_label="density",
        y_label=f"{metric.name} overhead",
    )
    overheads: dict[str, dict[float, list[float]]] = {
        name: {density: [] for density in config.densities} for name in config.selectors
    }
    deliveries: dict[str, dict[float, list[float]]] = {
        name: {density: [] for density in config.densities} for name in config.selectors
    }

    for density in config.densities:

        def on_result(run_index: int, payload: dict) -> None:
            if progress is not None and payload["node_count"] >= 2:
                progress(
                    f"[{experiment_id}] density={density:g} run={run_index + 1}/{config.runs} "
                    f"nodes={payload['node_count']}"
                )

        payloads = map_trials(
            config, metric, density, _overhead_trial, workers=workers, on_result=on_result
        )
        for payload in payloads:
            for selector_name, (trial_overheads, trial_deliveries) in payload["per_selector"].items():
                overheads[selector_name][density].extend(trial_overheads)
                deliveries[selector_name][density].extend(trial_deliveries)

    for selector_name in config.selectors:
        for density in config.densities:
            summary = summarize(overheads[selector_name][density])
            delivery = summarize(deliveries[selector_name][density])
            result.add_point(
                selector_name,
                SeriesPoint(
                    density=density,
                    summary=summary,
                    extra={"delivery_ratio": delivery.mean, "attempts": float(delivery.count)},
                ),
            )

    result.add_note(
        f"{config.runs} run(s) x {config.pairs_per_run} pair(s) per density; seed={config.seed}"
    )
    result.add_note("overhead averaged over delivered packets; see delivery_ratio per point")
    return result
