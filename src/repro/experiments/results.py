"""Result containers for the evaluation harness.

Every experiment produces an :class:`ExperimentResult`: one series per protocol, one point
per density, each point carrying the summary statistics of its sample.  The containers know
how to render themselves as the text tables written to ``EXPERIMENTS.md`` and printed by the
CLI, and how to serialize to plain dictionaries for further processing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.stats import Summary


@dataclass(frozen=True)
class SeriesPoint:
    """One (density, statistic) point of one protocol's curve."""

    density: float
    summary: Summary
    extra: Mapping[str, float] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.summary.mean

    def to_dict(self) -> dict:
        """Plain-dictionary form (the per-point schema of every JSON/JSONL output)."""
        return {
            "density": self.density,
            "mean": self.summary.mean,
            "std": self.summary.std,
            "count": self.summary.count,
            **dict(self.extra),
        }


@dataclass
class Series:
    """One protocol's curve across the density sweep."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, point: SeriesPoint) -> None:
        self.points.append(point)

    def mean_at(self, density: float) -> float:
        """The series' mean value at ``density`` (nan when that density was not swept)."""
        for point in self.points:
            if point.density == density:
                return point.mean
        return math.nan

    def means(self) -> List[float]:
        return [point.mean for point in self.points]

    def densities(self) -> List[float]:
        return [point.density for point in self.points]


@dataclass
class ExperimentResult:
    """The complete outcome of one figure-style experiment."""

    experiment_id: str
    title: str
    metric_name: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ building

    def series_for(self, name: str) -> Series:
        """Return (creating on first use) the series for protocol ``name``."""
        if name not in self.series:
            self.series[name] = Series(name=name)
        return self.series[name]

    def add_point(self, series_name: str, point: SeriesPoint) -> None:
        self.series_for(series_name).add(point)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------ reading

    def densities(self) -> List[float]:
        """The union of densities covered by any series, sorted."""
        values = sorted({point.density for series in self.series.values() for point in series.points})
        return values

    def to_dict(self) -> dict:
        """Plain-dictionary form (JSON-serializable) for storage or plotting."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "metric": self.metric_name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": list(self.notes),
            "series": {
                name: [point.to_dict() for point in series.points]
                for name, series in self.series.items()
            },
        }

    # ------------------------------------------------------------------ rendering

    def to_table(self, precision: int = 3) -> str:
        """Render the result as a fixed-width text table (densities as rows)."""
        names = sorted(self.series)
        header_cells = [self.x_label] + names
        rows: List[List[str]] = []
        for density in self.densities():
            row = [f"{density:g}"]
            for name in names:
                value = self.series[name].mean_at(density)
                row.append("-" if math.isnan(value) else f"{value:.{precision}f}")
            rows.append(row)

        widths = [
            max(len(header_cells[column]), *(len(row[column]) for row in rows)) if rows else len(header_cells[column])
            for column in range(len(header_cells))
        ]
        lines = [
            f"{self.experiment_id}: {self.title} ({self.y_label} vs {self.x_label}, metric={self.metric_name})",
            "  " + " | ".join(cell.ljust(width) for cell, width in zip(header_cells, widths)),
            "  " + "-+-".join("-" * width for width in widths),
        ]
        for row in rows:
            lines.append("  " + " | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_table()
