"""Reading :class:`~repro.experiments.sinks.JsonlSink` streams back into resumable state.

The ``jsonl`` sink flushes one self-describing line per engine event, so the stream of a
sweep that died -- a SIGKILL, a power cut, a crashed worker that exhausted its retries
under ``on_error="fail"`` -- still contains every *finished* density.  This module turns
such a stream into a :class:`Checkpoint` that
:func:`repro.experiments.engine.run_experiment` can resume from: finished densities are
skipped (their trial and density events are re-emitted from the checkpoint, so downstream
sinks observe the exact stream an uninterrupted run would have produced) and only the
remaining densities are computed.  ``repro-sweep --resume out.jsonl`` is the CLI wiring.

Resumability contract (also documented in ``docs/events.md``): a resumable stream must
contain the ``sweep_start`` event (the spec makes the file self-contained -- it is also
what the spec-hash guard compares) and zero or more complete ``density`` events; ``trial``
/ ``trial_error`` lines between density events are replayed with their densities, trailing
lines of an unfinished density are discarded (that density re-runs from scratch), and a
final line truncated by the kill mid-write is tolerated.  Because trials are pure
functions of ``(config, metric, density, run_index)``, the re-run densities reproduce the
exact payloads the dead run would have produced, which is what makes *resumed output
byte-identical to an uninterrupted run* (locked by ``tests/test_fault_tolerance.py``).

``minimum``/``maximum`` of a point's :class:`~repro.experiments.stats.Summary` are not
part of any serialized output and therefore not recoverable from a stream; resumed points
carry ``nan`` there.  Every rendered artifact (text table, JSON, JSONL) only consumes
``mean``/``std``/``count``/``extra``, all of which round-trip exactly.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.experiments.results import SeriesPoint
from repro.experiments.runner import TrialFailure
from repro.experiments.spec import ExperimentSpec
from repro.experiments.stats import Summary


class CheckpointError(ValueError):
    """A JSONL stream that cannot be resumed from (with a message saying why)."""


def spec_hash(spec: ExperimentSpec) -> str:
    """Content hash of a spec (sha256 over its canonical JSON form).

    Two specs hash equal iff they describe the same sweep; the resume guard compares the
    checkpoint's recorded spec against the spec about to run and refuses a mismatch, so a
    stream can never silently continue under different parameters.
    """
    canonical = json.dumps(spec.to_dict(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def point_from_dict(payload: dict) -> SeriesPoint:
    """Rebuild a :class:`SeriesPoint` from its ``to_dict`` form (extras preserved)."""
    extra = {
        key: value
        for key, value in payload.items()
        if key not in ("density", "mean", "std", "count")
    }
    summary = Summary(
        count=payload["count"],
        mean=payload["mean"],
        std=payload["std"],
        minimum=math.nan,
        maximum=math.nan,
    )
    return SeriesPoint(density=payload["density"], summary=summary, extra=extra)


@dataclass(frozen=True)
class DensityCheckpoint:
    """One fully aggregated density read back from a stream."""

    density: float
    #: ``(run_index, payload-dict | TrialFailure)`` in emission (= run) order.
    trials: Tuple[Tuple[int, object], ...]
    #: ``{selector_name: SeriesPoint}`` exactly as ``on_density`` delivered it.
    points: Dict[str, SeriesPoint]


@dataclass(frozen=True)
class Checkpoint:
    """Everything a killed sweep left behind that a resumed run can reuse."""

    spec: ExperimentSpec
    #: Finished densities in stream order (dict preserves insertion order).
    densities: Dict[float, DensityCheckpoint]
    #: Whether the stream already contains the final ``result`` event.
    complete: bool

    @property
    def spec_hash(self) -> str:
        return spec_hash(self.spec)


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Parse a :class:`JsonlSink` stream into a :class:`Checkpoint`.

    Tolerates exactly the damage a kill can cause -- a truncated final line, and trailing
    ``trial`` events of a density that never finished (both are discarded; the density
    re-runs).  Anything else malformed raises :class:`CheckpointError` naming the line.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    spec = None
    densities: Dict[float, DensityCheckpoint] = {}
    pending: list = []
    complete = False
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if number == len(lines):
                break  # final line truncated by the kill mid-write; the data before it stands
            raise CheckpointError(f"{path}:{number}: unparseable JSONL line ({exc})") from exc
        event = record.get("event")
        if event == "sweep_start":
            try:
                spec = ExperimentSpec.from_dict(record["spec"])
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(f"{path}:{number}: invalid spec in sweep_start ({exc})") from exc
        elif event == "trial":
            pending.append((record["run"], record["payload"]))
        elif event == "trial_error":
            pending.append(
                (
                    record["run"],
                    TrialFailure(
                        density=record["density"],
                        run_index=record["run"],
                        error=record["error"],
                        error_type=record["error_type"],
                        attempts=record["attempts"],
                    ),
                )
            )
        elif event == "density":
            density = float(record["density"])
            points = {
                name: point_from_dict(point) for name, point in record["series"].items()
            }
            densities[density] = DensityCheckpoint(
                density=density, trials=tuple(pending), points=points
            )
            pending = []
        elif event == "result":
            complete = True
        # "warning" lines (and unknown future events) carry no resumable state.
    if spec is None:
        raise CheckpointError(
            f"{path} contains no sweep_start event -- not a resumable JSONL stream "
            f"(was it written by the jsonl sink?)"
        )
    return Checkpoint(spec=spec, densities=densities, complete=complete)
