"""QOLSR MPR selection heuristics (Badis & Agha), the paper's primary baseline.

QOLSR keeps OLSR's structure -- a single MPR set used both for flooding and for routing --
but makes the second phase of the selection QoS-aware.  The paper describes the two variants
it compares against:

* **MPR-1**: phase 2 still picks by coverage of the remaining two-hop neighbors, but ties are
  broken by the QoS of the direct link (highest bandwidth / smallest delay) instead of by
  degree.
* **MPR-2** (the variant used in the paper's evaluation): phase 2 ignores coverage counts
  entirely and repeatedly adds the not-yet-selected neighbor whose direct link offers the
  best QoS among those that still cover at least one uncovered two-hop neighbor.

Both share phase 1 with RFC 3626: neighbors that are the sole cover of some two-hop neighbor
are always selected.  As the paper notes (citing [3]), this first phase already accounts for
about 75 % of the set, which is why the QOLSR sets end up close to the original OLSR sets in
size and why restricting paths to at most two hops leaves QoS gains on the table (the
Figure 1 example, reproduced in :mod:`repro.papergraphs.figure1`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.selection import AnsSelector, SelectionDecision, SelectionResult
from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.olsr.mpr import coverage_map
from repro.registry import SELECTORS
from repro.utils.ids import NodeId


@dataclass
class _QolsrBase(AnsSelector):
    """Shared two-phase skeleton of the QOLSR heuristics."""

    name = "qolsr-base"

    def select(self, view: LocalView, metric: Metric) -> SelectionResult:
        cover = coverage_map(view)
        uncovered: Set[NodeId] = set().union(*cover.values()) if cover else set()
        mpr: Set[NodeId] = set()
        decisions: List[SelectionDecision] = []

        # Phase 1 (identical to RFC 3626): sole providers of some two-hop neighbor.
        for two_hop in sorted(uncovered):
            providers = [neighbor for neighbor, covered in cover.items() if two_hop in covered]
            if len(providers) == 1 and providers[0] not in mpr:
                mpr.add(providers[0])
                decisions.append(
                    SelectionDecision(two_hop, providers[0], "sole-cover", ())
                )
        for neighbor in mpr:
            uncovered -= cover[neighbor]

        # Phase 2: QoS-aware greedy, variant-specific ranking.
        while uncovered:
            candidates = [
                neighbor
                for neighbor in view.one_hop
                if neighbor not in mpr and cover[neighbor] & uncovered
            ]
            if not candidates:
                break
            best = min(
                candidates,
                key=lambda neighbor: self._phase_two_key(view, metric, cover, uncovered, neighbor),
            )
            mpr.add(best)
            covered_now = cover[best] & uncovered
            uncovered -= covered_now
            decisions.append(
                SelectionDecision(
                    None,
                    best,
                    self._phase_two_reason(),
                    (("newly_covered", tuple(sorted(covered_now))),),
                )
            )

        return SelectionResult(
            owner=view.owner,
            selector_name=self.name,
            metric_name=metric.name,
            selected=frozenset(mpr),
            decisions=tuple(decisions),
        )

    # ------------------------------------------------------------------ variant hooks

    def _phase_two_key(
        self,
        view: LocalView,
        metric: Metric,
        cover: Dict[NodeId, Set[NodeId]],
        uncovered: Set[NodeId],
        neighbor: NodeId,
    ) -> Tuple:
        raise NotImplementedError

    def _phase_two_reason(self) -> str:
        raise NotImplementedError


@SELECTORS.register("qolsr-mpr1", description="QOLSR MPR-1: coverage first, direct-link QoS tie-break")
@dataclass
class QolsrMpr1Selector(_QolsrBase):
    """QOLSR MPR-1: coverage first, direct-link QoS as the tie-breaker."""

    name = "qolsr-mpr1"

    def _phase_two_key(self, view, metric, cover, uncovered, neighbor):
        coverage = len(cover[neighbor] & uncovered)
        link_quality = metric.sort_key(view.direct_link_value(neighbor, metric))
        return (-coverage, link_quality, neighbor)

    def _phase_two_reason(self) -> str:
        return "greedy-coverage-qos-tiebreak"


@SELECTORS.register("qolsr-mpr2", description="QOLSR MPR-2 (the evaluation's baseline): QoS first, coverage tie-break")
@dataclass
class QolsrMpr2Selector(_QolsrBase):
    """QOLSR MPR-2 (the evaluation's baseline): direct-link QoS first, coverage as tie-breaker."""

    name = "qolsr-mpr2"

    def _phase_two_key(self, view, metric, cover, uncovered, neighbor):
        coverage = len(cover[neighbor] & uncovered)
        link_quality = metric.sort_key(view.direct_link_value(neighbor, metric))
        return (link_quality, -coverage, neighbor)

    def _phase_two_reason(self) -> str:
        return "greedy-qos"
