"""The selection algorithms the paper compares FNBP against."""

from repro.baselines.olsr_mpr import OlsrMprSelector
from repro.baselines.qolsr import QolsrMpr1Selector, QolsrMpr2Selector
from repro.baselines.topology_filtering import TopologyFilteringSelector

__all__ = [
    "OlsrMprSelector",
    "QolsrMpr1Selector",
    "QolsrMpr2Selector",
    "TopologyFilteringSelector",
]
