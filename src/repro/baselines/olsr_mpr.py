"""The original OLSR behaviour exposed as a selector baseline.

In RFC 3626 the advertised set and the flooding set are one and the same MPR set, selected
purely by two-hop coverage and blind to QoS.  This selector wraps
:func:`repro.olsr.mpr.rfc3626_mpr` behind the common :class:`AnsSelector` interface so the
evaluation harness can compare it with the QoS-aware selections on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import AnsSelector, SelectionDecision, SelectionResult
from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.olsr.mpr import rfc3626_mpr
from repro.registry import SELECTORS


@SELECTORS.register("olsr-mpr", description="plain RFC 3626 MPR selection (QoS-unaware)")
@dataclass
class OlsrMprSelector(AnsSelector):
    """Plain RFC 3626 MPR selection used as the advertised set (QoS-unaware)."""

    name = "olsr-mpr"

    def select(self, view: LocalView, metric: Metric) -> SelectionResult:
        mpr = rfc3626_mpr(view)
        decision = SelectionDecision(
            target=None,
            chosen=None,
            reason="rfc3626-greedy-coverage",
            detail=(("selected", tuple(sorted(mpr))),),
        )
        return SelectionResult(
            owner=view.owner,
            selector_name=self.name,
            metric_name=metric.name,
            selected=mpr,
            decisions=(decision,),
        )
