"""Topology-filtering QANS selection (Moraru & Simplot-Ryl), the paper's second baseline.

Like FNBP, this approach separates the flooding set (the plain RFC 3626 MPRs) from the
routing set (the QoS Advertised Neighbor Set).  The QANS is obtained in two steps:

1. Reduce the local view ``G_u`` with a relative neighborhood graph using the QoS metric as
   the weight function (:func:`repro.localview.rng.qos_rng_reduce`): a link is dropped when a
   common neighbor offers strictly better QoS on both replacement legs.
2. On the reduced view, for every one- and two-hop neighbor, advertise *every* neighbor that
   starts a QoS-optimal path of at most two hops towards it.  (The two-hop cap is the
   limitation the paper highlights: unlike FNBP, longer detours are never considered, and
   because *all* optimal first hops are kept, the advertised set stays relatively large.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.core.selection import AnsSelector, SelectionDecision, SelectionResult
from repro.localview.rng import qos_rng_reduce
from repro.localview.view import LocalView
from repro.metrics.base import Metric
from repro.registry import SELECTORS
from repro.utils.ids import NodeId


@SELECTORS.register("topology-filtering", description="QANS selection by RNG-based topology filtering")
@dataclass
class TopologyFilteringSelector(AnsSelector):
    """QANS selection by RNG-based topology filtering.

    Parameters
    ----------
    apply_reduction:
        When False, skip the RNG reduction and run the first-hop collection on the raw view.
        This ablation isolates how much of the set-size reduction comes from the filtering
        itself versus from restricting to best paths.
    """

    apply_reduction: bool = True

    name = "topology-filtering"

    def select(self, view: LocalView, metric: Metric) -> SelectionResult:
        graph = qos_rng_reduce(view.graph, metric) if self.apply_reduction else view.graph
        ans: Set[NodeId] = set()
        decisions: List[SelectionDecision] = []

        for target in sorted(view.one_hop | view.two_hop):
            best_value, first_hops = self._best_two_hop_first_hops(view, graph, target, metric)
            if not first_hops and self.apply_reduction:
                # The RNG reduction preserves global QoS-optimal connectivity but not
                # necessarily a <=2-hop path to every neighbor; fall back to the unreduced
                # view so the baseline never leaves a known neighbor uncovered.
                best_value, first_hops = self._best_two_hop_first_hops(view, view.graph, target, metric)
            detail: Tuple[Tuple[str, object], ...] = (
                ("first_hops", tuple(sorted(first_hops))),
                ("best_value", best_value),
            )
            if not first_hops:
                decisions.append(SelectionDecision(target, None, "unreachable-in-reduced-view", detail))
                continue
            if first_hops == {target}:
                decisions.append(SelectionDecision(target, None, "direct-link-optimal", detail))
                continue
            newly = {hop for hop in first_hops if hop != target and hop not in ans}
            ans.update(newly)
            decisions.append(
                SelectionDecision(
                    target,
                    None if not newly else min(newly),
                    "advertise-all-best-first-hops",
                    detail + (("added", tuple(sorted(newly))),),
                )
            )

        return SelectionResult(
            owner=view.owner,
            selector_name=self.name,
            metric_name=metric.name,
            selected=frozenset(ans),
            decisions=tuple(decisions),
        )

    # ------------------------------------------------------------------ internals

    def _best_two_hop_first_hops(
        self,
        view: LocalView,
        graph: nx.Graph,
        target: NodeId,
        metric: Metric,
    ) -> Tuple[float, Set[NodeId]]:
        """Best value and first hops of paths of at most two hops from the owner to ``target``.

        Candidate paths are the direct (possibly reduced-away) link ``owner-target`` and the
        two-hop detours ``owner-w-target`` for every surviving relay ``w``.
        """
        owner = view.owner
        candidates: Dict[NodeId, float] = {}
        if graph.has_edge(owner, target):
            candidates[target] = metric.link_value_from_attributes(graph.edges[owner, target])
        for relay in view.one_hop:
            if relay == target or not graph.has_edge(owner, relay) or not graph.has_edge(relay, target):
                continue
            first_leg = metric.link_value_from_attributes(graph.edges[owner, relay])
            second_leg = metric.link_value_from_attributes(graph.edges[relay, target])
            candidates[relay] = metric.combine(metric.combine(metric.identity, first_leg), second_leg)

        if not candidates:
            return metric.worst, set()
        best_value = metric.optimum(candidates.values())
        first_hops = {
            node for node, value in candidates.items() if metric.values_equal(value, best_value)
        }
        return best_value, first_hops
