"""Time-axis measure plugins: what dynamic-topology trials measure, per timestep.

Static sweeps ask "how large is the advertised set"; dynamic sweeps ask "how much *protocol
work* does keeping it up to date cost".  One dynamic trial generates a topology, advances it
through ``spec.timesteps`` steps of ``spec.step_interval`` time units with the spec's
mobility model (see :mod:`repro.mobility.models`), and refreshes every selector's
selections after each step on the incrementally maintained views of the
:class:`~repro.mobility.dynamic.DynamicTopology` driver -- incrementally too: the trial's
:class:`~repro.core.selection.SelectionCache` re-runs a selector only at the owners the
step's :attr:`~repro.mobility.dynamic.StepDelta.dirty` set names and reuses the previous
step's results everywhere else (see ``docs/caches.md``).  Three measure kinds fold the
per-step observations into the standard streaming pipeline (they register in
:data:`repro.registry.MEASURES` and work with every sink, spec and CLI):

* ``ans-churn`` -- advertised-topology churn: the number of advertised links that appear or
  disappear per step, per selector.  This is the link-state database turbulence a protocol
  imposes on the whole network.
* ``tc-overhead`` -- triggered TC re-advertisement overhead: advertised entries re-flooded
  per node per step, counting each node whose advertised set changed as re-flooding its
  whole (new) set, which is what RFC 3626's triggered TC updates do.
* ``route-stability`` -- the fraction of sampled (source, destination) routes whose first
  hop survives a step (same first hop, still delivered), the user-visible face of churn.

Every per-density :class:`SeriesPoint` aggregates over all steps and runs and carries the
per-timestep mean series in its ``extra["per_step_mean"]``, so incremental sinks stream
per-timestep curves, not just sweep-level summaries; the raw per-step series of every trial
rides in the ``trial`` payloads.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments.measures import Measure
from repro.experiments.results import SeriesPoint
from repro.experiments.stats import summarize
from repro.metrics.assignment import canonical_edge
from repro.registry import MEASURES
from repro.routing.advertised import AdvertisedTopologyBuilder
from repro.routing.hop_by_hop import HopByHopRouter


def _selector_state(trial, selector_name: str):
    """One selector's per-node advertised sets and advertised link set, on current views.

    Selections come from the trial's cross-timestep
    :class:`~repro.core.selection.SelectionCache` (:meth:`Trial.step_selections`): only the
    owners the steps since this selector's last run dirtied re-run the selector, everyone
    else reuses the previous step's result -- bit-identical to re-running everywhere, which
    is what caps per-step cost at the size of the step instead of the size of the network.
    """
    results = trial.step_selections(selector_name)
    ans_sets = {node: result.selected for node, result in results.items()}
    edges = {
        canonical_edge(node, relay) for node, selected in ans_sets.items() for relay in selected
    }
    return ans_sets, edges


def _selection_churn_trial(trial) -> dict:
    """Per-trial measurement of ``ans-churn`` and ``tc-overhead`` (worker-safe).

    Runs every selector once on the time-zero topology (the baseline nothing is charged
    for) and once after each of the ``timesteps`` steps, diffing advertised links and
    per-node advertised sets between consecutive steps.
    """
    dynamic = trial.dynamic_topology()
    selectors = trial.config.selectors
    node_count = len(dynamic.network)
    if node_count == 0:
        return {"node_count": 0, "link_churn": [], "churn": {}, "tc": {}}

    previous_sets: Dict[str, dict] = {}
    previous_edges: Dict[str, set] = {}
    for name in selectors:
        previous_sets[name], previous_edges[name] = _selector_state(trial, name)

    churn: Dict[str, List[float]] = {name: [] for name in selectors}
    tc: Dict[str, List[float]] = {name: [] for name in selectors}
    link_churn: List[float] = []
    for _ in range(trial.config.timesteps):
        delta = dynamic.advance()
        link_churn.append(float(delta.link_churn))
        for name in selectors:
            ans_sets, edges = _selector_state(trial, name)
            churn[name].append(float(len(edges ^ previous_edges[name])))
            re_advertised = sum(
                len(selected)
                for node, selected in ans_sets.items()
                if selected != previous_sets[name].get(node)
            )
            tc[name].append(re_advertised / node_count)
            previous_sets[name], previous_edges[name] = ans_sets, edges
    return {"node_count": node_count, "link_churn": link_churn, "churn": churn, "tc": tc}


def _route_stability_trial(trial) -> dict:
    """Per-trial measurement of ``route-stability`` (worker-safe).

    For every selector and every sampled pair, route hop-by-hop link-state style over the
    advertised topology of each step (one incremental
    :class:`AdvertisedTopologyBuilder` per selector diffs it step to step) and record
    whether the first hop survived the step: still delivered, same first hop.  Pairs with
    no route before a step carry no survival sample for it.
    """
    dynamic = trial.dynamic_topology()
    selectors = trial.config.selectors
    metric = trial.metric
    node_count = len(dynamic.network)
    pairs = trial.sample_pairs(trial.config.pairs_per_run)
    if node_count < 2 or not pairs:
        return {"node_count": node_count, "stability": {}, "delivered": {}}

    builders = {name: AdvertisedTopologyBuilder(dynamic.network) for name in selectors}

    def first_hops(name: str) -> List[Optional[object]]:
        selector_sets, _ = _selector_state(trial, name)
        advertised = builders[name].build(selector_sets)
        router = HopByHopRouter(dynamic.network, advertised, metric)
        hops: List[Optional[object]] = []
        for source, destination in pairs:
            outcome = router.link_state_route(source, destination)
            hops.append(outcome.path[1] if outcome.delivered and len(outcome.path) > 1 else None)
        return hops

    previous = {name: first_hops(name) for name in selectors}
    stability: Dict[str, List[Optional[float]]] = {name: [] for name in selectors}
    delivered: Dict[str, List[float]] = {name: [] for name in selectors}
    for _ in range(trial.config.timesteps):
        delta = dynamic.advance()
        for name in selectors:
            # The step may have re-measured links that stay advertised; the builder's edge
            # diff would otherwise keep their stale attribute copies.
            builders[name].refresh_attributes(delta.reweighted)
            hops = first_hops(name)
            survived = [
                1.0 if hop == previous_hop else 0.0
                for hop, previous_hop in zip(hops, previous[name])
                if previous_hop is not None
            ]
            # One entry per timestep, always: a step with no routes to survive (every pair
            # undelivered before it) carries None so the per-step series stay aligned.
            stability[name].append(sum(survived) / len(survived) if survived else None)
            delivered[name].append(
                sum(1.0 for hop in hops if hop is not None) / len(hops)
            )
            previous[name] = hops
    return {"node_count": node_count, "stability": stability, "delivered": delivered}


class _TimeSeriesMeasure(Measure):
    """Shared aggregation of per-step series: pooled summary + per-timestep mean curve.

    ``payload_key`` selects the per-selector step series of the trial payload.  The pooled
    summary (over all steps and runs of a density) is the point's headline statistic; the
    per-step cross-run means ride in ``extra["per_step_mean"]`` so sinks stream the full
    time axis.
    """

    payload_key = "values"

    def validate_spec(self, spec) -> None:
        if getattr(spec, "timesteps", 0) < 1:
            raise ValueError(
                f"measure {self.name!r} needs a dynamic sweep: set timesteps >= 1 "
                f"(and a dynamic topology model such as rwp, gauss-markov or churn)"
            )
        # Probe the topology model for a trajectory factory so a static model fails here,
        # before any trial runs (not as a worker traceback after topology generation).
        from repro.registry import TOPOLOGY_MODELS

        probe = TOPOLOGY_MODELS.create(
            spec.topology, field=spec.field, density=spec.densities[0], seed=spec.seed
        )
        if not hasattr(probe, "dynamic"):
            raise ValueError(
                f"measure {self.name!r} needs a dynamic topology model, but "
                f"{spec.topology!r} is static; use rwp, gauss-markov, churn or another "
                f"model exposing dynamic(run_index, step_interval)"
            )

    def start(self, spec) -> dict:
        return {
            "values": {name: {d: [] for d in spec.densities} for name in spec.selectors},
            "per_step": {name: {d: {} for d in spec.densities} for name in spec.selectors},
        }

    def consume(self, state, density: float, payload: dict) -> None:
        # Step series are index-aligned to timesteps; a None entry means the trial had no
        # sample for that step (e.g. no surviving routes to judge) and contributes nothing.
        for name, steps in payload.get(self.payload_key, {}).items():
            buckets = state["per_step"][name][density]
            for index, value in enumerate(steps):
                if value is None:
                    continue
                state["values"][name][density].append(value)
                buckets.setdefault(index, []).append(value)

    def density_points(self, state, spec, density: float) -> Dict[str, SeriesPoint]:
        points = {}
        for name in spec.selectors:
            buckets = state["per_step"][name][density]
            per_step_mean = [
                sum(buckets[index]) / len(buckets[index]) if buckets.get(index) else None
                for index in range(spec.timesteps)
            ]
            points[name] = SeriesPoint(
                density=density,
                summary=summarize(state["values"][name][density]),
                extra={"per_step_mean": per_step_mean},
            )
        return points

    def notes(self, spec) -> List[str]:
        return [
            f"{spec.timesteps} timestep(s) of {spec.step_interval:g} time unit(s) per run",
            f"{spec.runs} run(s) per density; seed={spec.seed}",
        ]


#: Public name of the per-step series aggregation base: the protocol measures
#: (:mod:`repro.protocol.measures`) ride the same pooled-summary + per-step-mean pipeline.
TimeSeriesMeasure = _TimeSeriesMeasure


@MEASURES.register(
    "ans-churn", description="advertised links appearing/disappearing per step (dynamic sweeps)"
)
class AnsChurnMeasure(_TimeSeriesMeasure):
    """Advertised-topology churn per step, per selector."""

    name = "ans-churn"
    payload_key = "churn"

    def y_label(self, metric) -> str:
        return "advertised links changed per step"

    def per_trial(self) -> Callable:
        return _selection_churn_trial


@MEASURES.register(
    "tc-overhead", description="advertised entries re-flooded per node per step (dynamic sweeps)"
)
class TcOverheadMeasure(_TimeSeriesMeasure):
    """Triggered TC re-advertisement overhead per step, per selector."""

    name = "tc-overhead"
    payload_key = "tc"

    def y_label(self, metric) -> str:
        return "re-advertised entries per node per step"

    def per_trial(self) -> Callable:
        return _selection_churn_trial


@MEASURES.register(
    "route-stability", description="fraction of first hops surviving a step (dynamic sweeps)"
)
class RouteStabilityMeasure(_TimeSeriesMeasure):
    """First-hop survival of sampled routes across steps, per selector."""

    name = "route-stability"
    payload_key = "stability"

    def y_label(self, metric) -> str:
        return "fraction of first hops surviving a step"

    def per_trial(self) -> Callable:
        return _route_stability_trial

    def notes(self, spec) -> List[str]:
        return [
            f"{spec.pairs_per_run} sampled pair(s) per run; survival = same first hop, still delivered",
            *super().notes(spec),
        ]
