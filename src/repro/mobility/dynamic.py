"""The dynamic-topology driver: advance a network through timesteps, incrementally.

:class:`DynamicTopology` owns one :class:`~repro.topology.network.Network` plus the batch of
per-node :class:`~repro.localview.view.LocalView` objects built on it, and applies a
:class:`~repro.mobility.models.TrajectoryStepper`'s world states step by step.  The whole
point is *incrementality*: a small timestep changes few links, so instead of regenerating
the network and rebuilding every view (and with them every per-metric compact graph and
bottleneck forest) from scratch, :meth:`advance` diffs the unit-disk link set against the
current one and

* removes/adds only the changed links on the shared networkx graph (new links get their
  weights from the same pure per-edge assigner draws a full regeneration would use, so the
  incremental network is bit-identical to a from-scratch rebuild);
* rebuilds only the views whose two-hop neighborhood a structural change touched (the
  owners ``{u, v} ∪ N(u) ∪ N(v)`` of each flipped link, unioned over the pre- and
  post-change adjacency);
* routes pure weight changes through the sanctioned
  :meth:`LocalView.update_link <repro.localview.view.LocalView.update_link>` mutation path
  of every view that knows the link, which drops exactly the affected views' caches via
  ``invalidate_caches``.

Every untouched view keeps its cached compact graphs and bottleneck forests warm across the
step -- that is the measured speedup of the ``mobility`` section of ``BENCH_selection.json``.

``incremental=False`` switches the driver to the naïve baseline -- rebuild the network and
drop all views every step -- used by the differential tests (both modes must produce
bit-identical networks and views) and as the benchmark reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.localview.networkgraph import NetworkGraph
from repro.localview.view import LocalView
from repro.metrics.assignment import Edge, WeightAssigner
from repro.mobility.models import TrajectoryStepper, WorldState
from repro.obs import runtime as obs
from repro.topology.network import Network
from repro.topology.unit_disk import unit_disk_links
from repro.utils.ids import NodeId
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class StepDelta:
    """What one :meth:`DynamicTopology.advance` changed, for measures and diagnostics.

    ``dirty`` is the step's *invalidation set*: every owner whose two-hop local view the
    step changed.  A link ``(u, v)`` is visible in exactly the views of ``{u, v} ∪ N(u) ∪
    N(v)`` (the view of ``w`` contains every link with an endpoint in ``N(w)``), so the
    dirty set is that neighborhood unioned over all flipped links -- taken over both the
    pre- and post-step adjacency, because a removed link is visible through its old
    neighbors and an added one through its new -- plus the same (current-adjacency)
    neighborhood of every reweighted link.  Any per-node quantity that is a pure function
    of the local view -- ANS selection above all -- is unchanged outside ``dirty``; that is
    the contract the :class:`~repro.core.selection.SelectionCache` keys its reuse off, and
    it holds identically in incremental and rebuild mode (the set describes the *topology
    step*, not the driver's view-maintenance strategy).
    """

    step: int
    added: Tuple[Edge, ...]
    removed: Tuple[Edge, ...]
    reweighted: Tuple[Edge, ...]
    dirty: FrozenSet[NodeId] = frozenset()

    @property
    def link_churn(self) -> int:
        """Physical links flipped this step (the added + removed count)."""
        return len(self.added) + len(self.removed)


class DynamicTopology:
    """A network advanced through timesteps by diffing link sets and weights.

    The driver's :attr:`network` and the views returned by :meth:`views` are live objects:
    each :meth:`advance` mutates them in place (that is what makes the step path cheap).
    Callers that need a frozen snapshot of some step must copy before advancing.
    """

    def __init__(
        self,
        network: Network,
        stepper: TrajectoryStepper,
        radius: float,
        weight_assigners: Sequence[WeightAssigner] = (),
        step_interval: float = 1.0,
        incremental: bool = True,
    ) -> None:
        require_positive(radius, "radius")
        require_positive(step_interval, "step_interval")
        for assigner in weight_assigners:
            if not getattr(assigner, "position_independent", True):
                # Weights are drawn at link birth and kept until the model re-measures
                # them; a position-dependent draw would silently go stale as nodes move
                # (and diverge from the rebuild baseline), so it is rejected up front.
                raise ValueError(
                    f"dynamic topologies require position-independent weight assigners; "
                    f"{type(assigner).__name__} (metric {assigner.metric.name!r}) recomputes "
                    f"weights from node positions"
                )
        self.network = network
        self.radius = radius
        self.weight_assigners = tuple(weight_assigners)
        self.step_interval = step_interval
        self.incremental = incremental
        self.step_index = 0
        self._stepper = stepper
        self._views: Optional[Dict[NodeId, LocalView]] = None
        self._network_graph: Optional[NetworkGraph] = None
        self._edges: Set[Edge] = set(network.links())
        self._static_links: Optional[List[Edge]] = None
        self._last_positions: Optional[object] = None
        self._listeners: List[Callable[[StepDelta], None]] = []

    # ------------------------------------------------------------------ listeners

    def add_step_listener(self, listener: Callable[[StepDelta], None]) -> None:
        """Call ``listener(delta)`` after every :meth:`advance`, in registration order.

        This is how per-trial caches keyed on the topology's evolution subscribe to the
        step stream without the measures having to thread deltas around by hand: the
        :class:`~repro.core.selection.SelectionCache` of
        :meth:`Trial.step_selections <repro.experiments.runner.Trial.step_selections>`
        registers its invalidation hook here.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------ views

    def network_graph(self) -> NetworkGraph:
        """The current step's shared network-level CSR (maintained across steps).

        Built lazily alongside :meth:`views` and kept in lockstep with the live network:
        structural steps rebuild it, weight-only steps patch its weight arrays in place
        (:meth:`NetworkGraph.patch_weights`).  The maintained object is pinned
        array-for-array identical to a fresh ``NetworkGraph.from_network`` of the current
        network by ``tests/test_mobility.py``.
        """
        if self._network_graph is None:
            self._network_graph = NetworkGraph.from_network(self.network)
        return self._network_graph

    def views(self) -> Dict[NodeId, LocalView]:
        """Every node's local view of the *current* step (maintained incrementally)."""
        if self._views is None:
            self._views = LocalView.all_from_network(
                self.network, network_graph=self.network_graph()
            )
        return self._views

    # ------------------------------------------------------------------ stepping

    def advance(self) -> StepDelta:
        """Advance one timestep, notify the step listeners and return what changed."""
        self.step_index += 1
        with obs.span("mobility_step"):
            world = self._stepper.step(self.step_interval)
            target = self._target_links(world)
            if self.incremental:
                delta = self._advance_incremental(world, target)
            else:
                delta = self._rebuild(world, target)
        obs.add("mobility.steps")
        obs.add("mobility.links_added", len(delta.added))
        obs.add("mobility.links_removed", len(delta.removed))
        obs.add("mobility.links_reweighted", len(delta.reweighted))
        obs.observe("mobility.dirty_owners", len(delta.dirty))
        for listener in self._listeners:
            listener(delta)
        return delta

    def _advance_incremental(self, world: WorldState, target: Set[Edge]) -> StepDelta:
        """The incremental step path: diff links, rebuild only the views a change touched."""
        removed = sorted(self._edges - target)
        added = sorted(target - self._edges)
        graph = self.network.graph

        # Owners whose view structure a flipped link touches: the link's endpoints plus
        # every pre-change neighbor of either endpoint (post-change neighbors are added
        # below, after the graph mutation).  This doubles as the flipped-link half of the
        # delta's dirty set, so it is computed whether or not views are materialized.
        affected: Set[NodeId] = set()
        _absorb_link_neighborhoods(graph.adj, removed + added, affected)

        for node, position in world.positions.items():
            graph.nodes[node]["pos"] = (float(position[0]), float(position[1]))
        for u, v in removed:
            graph.remove_edge(u, v)
        for u, v in added:
            self.network.add_link(u, v, **self._link_weights((u, v), world))

        _absorb_link_neighborhoods(graph.adj, added + removed, affected)

        # Weight-only changes on links that persisted through the step.
        reweighted = sorted(
            edge for edge in world.changed_weights if edge in target and edge in self._edges
        )
        for u, v in reweighted:
            graph.edges[u, v].update(world.weight_overrides[(u, v)])
        dirty = set(affected)
        _absorb_link_neighborhoods(graph.adj, reweighted, dirty)

        # Bring the shared CSR back in sync with the mutated network before any view
        # touches it: structural changes invalidate the flat adjacency (rebuild, which
        # bumps the generation and thereby every outstanding window), while weight-only
        # steps patch the per-metric weight arrays in place (windows stay current --
        # they read weights through the parent at solve time).
        ng = self._network_graph
        if ng is not None:
            if added or removed:
                with obs.span("csr_rebuild"):
                    ng.rebuild(self.network)
            elif reweighted:
                with obs.span("csr_patch"):
                    ng.patch_weights(self.network, reweighted)

        if self._views is not None:
            views = self._views
            if len(affected) * 2 >= len(views):
                # The step touched most of the network: one batched rebuild (shared
                # attribute dictionaries, single adjacency pass) beats per-owner rebuilds.
                # The dict object stays the same -- views() hands out a live mapping and
                # callers hold on to it across steps.
                obs.add("mobility.view_wholesale_rebuilds")
                views.clear()
                views.update(LocalView.all_from_network(self.network, network_graph=ng))
            else:
                obs.add("mobility.views_rebuilt", len(affected))
                shared: Dict[int, dict] = {}
                adjacency = graph.adj
                for owner in affected:
                    views[owner] = LocalView.from_adjacency(
                        adjacency, owner, shared, network_graph=ng
                    )
                for u, v in reweighted:
                    overrides = world.weight_overrides[(u, v)]
                    for owner in ({u, v} | set(graph.adj[u]) | set(graph.adj[v])) - affected:
                        views[owner].update_link(u, v, **overrides)
                        # update_link detaches the view from the shared CSR (its caches
                        # went stale); the CSR was patched above, so re-attach.
                        if ng is not None:
                            views[owner].attach_network_graph(ng)

        self._edges = target
        return StepDelta(
            step=self.step_index,
            added=tuple(added),
            removed=tuple(removed),
            reweighted=tuple(reweighted),
            dirty=frozenset(dirty),
        )

    # ------------------------------------------------------------------ internals

    def _target_links(self, world: WorldState) -> Set[Edge]:
        """The canonical link set of this step: unit-disk links minus forced outages."""
        if world.positions is self._last_positions and self._static_links is not None:
            links = self._static_links
        else:
            links = unit_disk_links(world.positions, self.radius)
            self._static_links = links
            self._last_positions = world.positions
        if not world.down_links:
            return set(links)
        return {edge for edge in links if edge not in world.down_links}

    def _link_weights(self, edge: Edge, world: WorldState) -> Dict[str, float]:
        """A (re)appearing link's attributes: pure per-edge assigner draws plus overrides.

        Assigner draws are pure, position-independent functions of ``(seed, metric,
        edge)`` (enforced at construction), so an incrementally added link carries exactly
        the weights a from-scratch regeneration assigns it.
        """
        attributes: Dict[str, float] = {}
        for assigner in self.weight_assigners:
            attributes[assigner.metric.name] = assigner.assign([edge], world.positions)[edge]
        attributes.update(world.weight_overrides.get(edge, {}))
        return attributes

    def _rebuild(self, world: WorldState, target: Set[Edge]) -> StepDelta:
        """The naïve per-step regeneration baseline: fresh network, all views dropped.

        The delta's ``dirty`` set is computed exactly as on the incremental path (it
        describes the topology step, not the maintenance strategy), which is what keeps
        cached selections bit-identical between the two modes.
        """
        removed = sorted(self._edges - target)
        added = sorted(target - self._edges)
        reweighted = sorted(
            edge for edge in world.changed_weights if edge in target and edge in self._edges
        )
        dirty: Set[NodeId] = set()
        _absorb_link_neighborhoods(self.network.graph.adj, removed + added, dirty)
        # Repopulate the existing Network object so the driver's live-ownership contract
        # (self.network is mutated in place, never swapped) holds in this mode too --
        # callers may have handed the network to builders or routers before the step.
        network = self.network
        network.graph.clear()
        for node, position in world.positions.items():
            network.add_node(node, position)
        for edge in sorted(target):
            network.add_link(*edge, **self._link_weights(edge, world))
        _absorb_link_neighborhoods(network.graph.adj, added + removed + reweighted, dirty)
        self._views = None
        self._network_graph = None
        self._edges = target
        return StepDelta(
            step=self.step_index,
            added=tuple(added),
            removed=tuple(removed),
            reweighted=tuple(reweighted),
            dirty=frozenset(dirty),
        )


def _absorb_link_neighborhoods(adjacency, edges: Sequence[Edge], into: Set[NodeId]) -> None:
    """Union each link's view neighborhood ``{u, v} ∪ N(u) ∪ N(v)`` into ``into``.

    A link is visible in exactly those owners' two-hop views, so this is the building
    block of :attr:`StepDelta.dirty`.
    """
    for u, v in edges:
        into.add(u)
        into.add(v)
        into.update(adjacency[u])
        into.update(adjacency[v])
