"""Mobility and churn models: deterministic, seeded trajectories for dynamic topologies.

The paper's evaluation is a set of static snapshots, but its argument about advertised-set
selection is really about *protocol overhead under change*: TC traffic scales with how often
the advertised sets churn, and that churn is driven by node movement and link-quality
fluctuation.  This module provides the trajectory side of the dynamic-topology subsystem
(:mod:`repro.mobility.dynamic` is the driver that applies trajectories to a
:class:`~repro.topology.network.Network`):

* :class:`RandomWaypointGenerator` -- the classic random-waypoint model: every node picks a
  uniform waypoint in the field, travels to it at a uniformly drawn speed, pauses, repeats.
* :class:`GaussMarkovGenerator` -- temporally correlated mobility: per-node speed and
  direction evolve as an AR(1) (Gauss-Markov) process with memory ``alpha``, reflecting off
  the field boundary, so trajectories are smooth rather than zig-zag.
* :class:`LinkChurnGenerator` -- link-level churn without movement: node positions are
  static, but each step a seeded per-link coin redraws link weights (fading re-measurement)
  and another takes links down for one step (outages).

All three register themselves in :data:`repro.registry.TOPOLOGY_MODELS` (``rwp``,
``gauss-markov``, ``churn``) with the *density axis interpreted as the exact node count*,
like ``fixed-count`` -- a Poisson-distributed count would confound mobility statistics with
population noise.  The time-zero snapshot returned by :meth:`generate` is exactly what
``fixed-count`` (without the largest-component restriction -- components change under
mobility) produces for the same seed, and a zero-velocity model reproduces that static
network at *every* step, which the property tests assert.

Determinism: every stochastic element is derived from the root seed through
:func:`repro.utils.seeding.spawn_rng` -- kinematic state sequentially from one per-run
generator, per-link churn coins as pure functions of ``(seed, edge, step)`` -- so a
trajectory is a deterministic function of ``(model parameters, seed, run_index)``,
bit-identical whether the trial runs serially or inside a ``REPRO_WORKERS`` worker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.metrics.assignment import Edge, UniformWeightAssigner, WeightAssigner, canonical_edge
from repro.registry import TOPOLOGY_MODELS
from repro.topology.generators import FieldSpec, FixedCountNetworkGenerator
from repro.topology.network import Network, Position
from repro.topology.unit_disk import unit_disk_links
from repro.utils.ids import NodeId
from repro.utils.seeding import spawn_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class WorldState:
    """One timestep's complete ground truth, as produced by a trajectory stepper.

    ``positions`` is every node's current location; ``down_links`` the canonical links
    currently suppressed by an outage (empty for pure-movement models);
    ``weight_overrides`` the *cumulative* table of re-measured link weights
    (``{edge: {metric_name: value}}``) and ``changed_weights`` the edges whose override
    changed at this step.  Carrying the cumulative table (not just the delta) is what lets
    the rebuild-from-scratch path of :class:`~repro.mobility.dynamic.DynamicTopology`
    reconstruct the identical network a long incremental run has arrived at.
    """

    positions: Dict[NodeId, Position]
    down_links: FrozenSet[Edge] = frozenset()
    weight_overrides: Dict[Edge, Dict[str, float]] = field(default_factory=dict)
    changed_weights: FrozenSet[Edge] = frozenset()


class TrajectoryStepper:
    """Sequential trajectory state of one run: ``step(dt)`` advances one timestep.

    Steppers are created by a generator's :meth:`dynamic` factory, hold per-run RNG state,
    and must be advanced strictly in step order (which is how the driver uses them); the
    state after N steps is a deterministic function of the construction arguments.
    """

    def step(self, dt: float) -> WorldState:  # pragma: no cover - interface
        raise NotImplementedError


# ---------------------------------------------------------------------- base generator


@dataclass
class _MobileGeneratorBase:
    """Shared shape of the registered dynamic models.

    ``generate(run_index)`` returns the static time-zero snapshot (so a dynamic model is a
    drop-in :data:`TOPOLOGY_MODELS` entry for any static sweep too); ``dynamic(run_index)``
    returns the live :class:`~repro.mobility.dynamic.DynamicTopology` driver.
    """

    field: FieldSpec = None  # type: ignore[assignment]
    node_count: int = 50
    seed: int = 0
    weight_assigners: Sequence[WeightAssigner] = ()

    #: Registry name, used in seed derivation so sibling models decorrelate.
    model_name = "mobile"

    def __post_init__(self) -> None:
        if self.field is None:
            self.field = FieldSpec()
        if self.node_count < 0:
            raise ValueError(f"node_count must be non-negative, got {self.node_count}")

    def generate(self, run_index: int = 0) -> Network:
        """The time-zero snapshot: exactly the ``fixed-count`` deployment for this seed.

        No largest-component restriction: under mobility the component structure changes
        from step to step, so the dynamic subsystem always keeps the full node set.
        """
        return FixedCountNetworkGenerator(
            field=self.field,
            node_count=self.node_count,
            seed=self.seed,
            weight_assigners=tuple(self.weight_assigners),
            restrict_to_largest_component=False,
        ).generate(run_index)

    def dynamic(self, run_index: int = 0, step_interval: float = 1.0, network: Optional[Network] = None):
        """A :class:`~repro.mobility.dynamic.DynamicTopology` for one run's trajectory.

        ``network`` optionally supplies the run's already-generated time-zero snapshot
        (``Trial.dynamic_topology`` passes ``trial.network`` so the deployment is not
        regenerated); the driver takes ownership and mutates it in place as it advances.
        Omitted, a fresh :meth:`generate` snapshot is used.
        """
        from repro.mobility.dynamic import DynamicTopology

        require_positive(step_interval, "step_interval")
        if network is None:
            network = self.generate(run_index)
        stepper = self._stepper(network, run_index)
        return DynamicTopology(
            network=network,
            stepper=stepper,
            radius=self.field.radius,
            weight_assigners=tuple(self.weight_assigners),
            step_interval=step_interval,
        )

    def _stepper(self, network: Network, run_index: int) -> TrajectoryStepper:
        raise NotImplementedError

    def _rng(self, run_index: int):
        return spawn_rng(self.seed, "mobility", self.model_name, self.node_count, run_index)


# ---------------------------------------------------------------------- random waypoint


class _RandomWaypointStepper(TrajectoryStepper):
    """Per-node waypoint kinematics; all draws come from one per-run generator in sorted
    node order, so the trajectory is reproducible bit-for-bit."""

    def __init__(self, positions, mobile_nodes, field, speed_low, speed_high, pause_high, rng):
        self._positions = dict(positions)
        self._field = field
        self._speed_low = speed_low
        self._speed_high = speed_high
        self._pause_high = pause_high
        self._rng = rng
        self._nodes = sorted(mobile_nodes)
        self._waypoints: Dict[NodeId, Position] = {}
        self._speeds: Dict[NodeId, float] = {}
        self._pauses: Dict[NodeId, float] = {}
        for node in self._nodes:
            self._assign_leg(node)

    def _assign_leg(self, node: NodeId) -> None:
        """Draw the next waypoint, travel speed and (on-arrival) pause for one node."""
        rng = self._rng
        self._waypoints[node] = (
            rng.uniform(0.0, self._field.width),
            rng.uniform(0.0, self._field.height),
        )
        self._speeds[node] = rng.uniform(self._speed_low, self._speed_high)
        self._pauses[node] = rng.uniform(0.0, self._pause_high) if self._pause_high > 0 else 0.0

    def step(self, dt: float) -> WorldState:
        for node in self._nodes:
            speed = self._speeds[node]
            if speed <= 0.0:
                continue  # a zero-speed leg never completes: the node is parked
            remaining = dt
            while remaining > 0.0:
                if self._pauses[node] > 0.0:
                    waited = min(self._pauses[node], remaining)
                    self._pauses[node] -= waited
                    remaining -= waited
                    continue
                x, y = self._positions[node]
                wx, wy = self._waypoints[node]
                distance = math.hypot(wx - x, wy - y)
                reach = self._speeds[node] * remaining
                if reach < distance:
                    fraction = reach / distance
                    self._positions[node] = (x + (wx - x) * fraction, y + (wy - y) * fraction)
                    break
                # Arrive at the waypoint, consume the travel time, draw the next leg
                # (the speed is positive here: zero-speed legs never reach this branch).
                self._positions[node] = (wx, wy)
                remaining -= distance / self._speeds[node]
                self._assign_leg(node)
                if self._speeds[node] <= 0.0:
                    break
        return WorldState(positions=dict(self._positions))


@dataclass
class RandomWaypointGenerator(_MobileGeneratorBase):
    """Random-waypoint mobility over a uniform time-zero deployment.

    ``speed_low`` / ``speed_high`` bound the uniformly drawn per-leg speed (field units per
    time unit); ``pause_high`` bounds the uniform pause on arrival.  With both speeds zero
    every node is parked forever and the model degenerates to the static ``fixed-count``
    deployment -- the anchor the property tests pin.

    ``mobile_fraction`` below 1 parks the complement: only a seeded per-run sample of
    ``round(fraction * n)`` nodes moves, modelling the common mixed scenario of a static
    mesh backbone serving mobile clients.  Localized movement is also where the
    incremental :class:`~repro.mobility.dynamic.DynamicTopology` step path pays most --
    changes cluster around the movers and every other view keeps its caches.
    """

    speed_low: float = 5.0
    speed_high: float = 15.0
    pause_high: float = 1.0
    mobile_fraction: float = 1.0

    model_name = "rwp"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.speed_low < 0 or self.speed_high < self.speed_low:
            raise ValueError("speeds must satisfy 0 <= speed_low <= speed_high")
        if self.pause_high < 0:
            raise ValueError("pause_high must be non-negative")
        if not 0.0 <= self.mobile_fraction <= 1.0:
            raise ValueError(f"mobile_fraction must be in [0, 1], got {self.mobile_fraction}")

    def _stepper(self, network: Network, run_index: int) -> TrajectoryStepper:
        rng = self._rng(run_index)
        positions = network.positions()
        if self.mobile_fraction >= 1.0:
            mobile = sorted(positions)  # no sampling draw: keeps full-mobility runs stable
        else:
            count = int(round(len(positions) * self.mobile_fraction))
            mobile = sorted(rng.sample(sorted(positions), count))
        return _RandomWaypointStepper(
            positions,
            mobile,
            self.field,
            self.speed_low,
            self.speed_high,
            self.pause_high,
            rng,
        )


# ---------------------------------------------------------------------- Gauss-Markov


class _GaussMarkovStepper(TrajectoryStepper):
    """AR(1) speed/direction evolution with boundary reflection."""

    def __init__(self, positions, field, alpha, mean_speed, speed_std, rng):
        self._positions = dict(positions)
        self._field = field
        self._alpha = alpha
        self._mean_speed = mean_speed
        self._speed_std = speed_std
        self._rng = rng
        self._nodes = sorted(self._positions)
        self._speeds: Dict[NodeId, float] = {}
        self._directions: Dict[NodeId, float] = {}
        for node in self._nodes:
            self._speeds[node] = max(0.0, rng.normalvariate(mean_speed, speed_std)) if speed_std > 0 else mean_speed
            self._directions[node] = rng.uniform(0.0, 2.0 * math.pi)

    def step(self, dt: float) -> WorldState:
        alpha = self._alpha
        drift = math.sqrt(max(0.0, 1.0 - alpha * alpha))
        for node in self._nodes:
            rng = self._rng
            speed = (
                alpha * self._speeds[node]
                + (1.0 - alpha) * self._mean_speed
                + drift * (rng.normalvariate(0.0, self._speed_std) if self._speed_std > 0 else 0.0)
            )
            speed = max(0.0, speed)
            direction = self._directions[node] + drift * (
                rng.normalvariate(0.0, 0.5) if self._speed_std > 0 or self._mean_speed > 0 else 0.0
            )
            x, y = self._positions[node]
            x += speed * dt * math.cos(direction)
            y += speed * dt * math.sin(direction)
            # Reflect off the field boundary (position mirrored, direction flipped) so
            # nodes provably stay inside the deployment area.
            x, flipped_x = _reflect(x, self._field.width)
            y, flipped_y = _reflect(y, self._field.height)
            if flipped_x:
                direction = math.pi - direction
            if flipped_y:
                direction = -direction
            self._positions[node] = (x, y)
            self._speeds[node] = speed
            self._directions[node] = direction
        return WorldState(positions=dict(self._positions))


def _reflect(coordinate: float, limit: float) -> Tuple[float, bool]:
    """Mirror ``coordinate`` back into ``[0, limit]``; True when a reflection happened."""
    flipped = False
    while coordinate < 0.0 or coordinate > limit:
        if coordinate < 0.0:
            coordinate = -coordinate
        else:
            coordinate = 2.0 * limit - coordinate
        flipped = not flipped
    return coordinate, flipped


@dataclass
class GaussMarkovGenerator(_MobileGeneratorBase):
    """Gauss-Markov mobility: temporally correlated speed and direction.

    ``alpha`` is the memory parameter (1 = straight-line, 0 = memoryless Brownian-like);
    speed evolves around ``mean_speed`` with innovation scale ``speed_std`` and is clamped
    non-negative.  ``mean_speed=0, speed_std=0`` parks every node, reproducing the static
    deployment exactly.
    """

    alpha: float = 0.85
    mean_speed: float = 10.0
    speed_std: float = 4.0

    model_name = "gauss-markov"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.mean_speed < 0 or self.speed_std < 0:
            raise ValueError("mean_speed and speed_std must be non-negative")

    def _stepper(self, network: Network, run_index: int) -> TrajectoryStepper:
        return _GaussMarkovStepper(
            network.positions(),
            self.field,
            self.alpha,
            self.mean_speed,
            self.speed_std,
            self._rng(run_index),
        )


# ---------------------------------------------------------------------- link churn


class _LinkChurnStepper(TrajectoryStepper):
    """Per-link fading coins, pure functions of ``(seed, edge, step)``.

    No sequential RNG state at all: whether a link is re-measured or down at step ``t``
    depends only on the derived seed, the canonical edge and ``t``, which makes the model
    trivially order-independent and lets the rebuild path reconstruct any step.
    """

    def __init__(self, positions, base_links, reweight_probability, outage_probability, assigners, seed):
        self._positions = dict(positions)
        self._base_links: List[Edge] = sorted(canonical_edge(*edge) for edge in base_links)
        self._reweight_probability = reweight_probability
        self._outage_probability = outage_probability
        self._assigners = tuple(assigners)
        self._seed = seed
        self._step = 0
        self._overrides: Dict[Edge, Dict[str, float]] = {}

    def step(self, dt: float) -> WorldState:
        self._step += 1
        step = self._step
        changed: List[Edge] = []
        down: List[Edge] = []
        for edge in self._base_links:
            if (
                self._outage_probability > 0.0
                and spawn_rng(self._seed, "churn-outage", edge, step).random() < self._outage_probability
            ):
                down.append(edge)
            if (
                self._reweight_probability > 0.0
                and spawn_rng(self._seed, "churn-flip", edge, step).random() < self._reweight_probability
            ):
                override = self._overrides.setdefault(edge, {})
                for assigner in self._assigners:
                    if isinstance(assigner, UniformWeightAssigner):
                        redraw = spawn_rng(self._seed, "churn-weight", assigner.metric.name, edge, step)
                        override[assigner.metric.name] = redraw.uniform(assigner.low, assigner.high)
                if override:
                    changed.append(edge)
        return WorldState(
            positions=self._positions,
            down_links=frozenset(down),
            weight_overrides={edge: dict(values) for edge, values in self._overrides.items()},
            changed_weights=frozenset(changed),
        )


@dataclass
class LinkChurnGenerator(_MobileGeneratorBase):
    """Link churn and fading without node movement.

    Positions are the static ``fixed-count`` deployment; each step every link independently
    gets its uniform-assigner weights redrawn with probability ``reweight_probability``
    (fading re-measurement, persisting until the next redraw) and is suppressed for that
    step with probability ``outage_probability`` (deep fade).  Both probabilities zero
    reproduce the static network exactly.
    """

    reweight_probability: float = 0.15
    outage_probability: float = 0.05

    model_name = "churn"

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("reweight_probability", "outage_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {value}")

    def _stepper(self, network: Network, run_index: int) -> TrajectoryStepper:
        positions = network.positions()
        return _LinkChurnStepper(
            positions,
            unit_disk_links(positions, self.field.radius),
            self.reweight_probability,
            self.outage_probability,
            self.weight_assigners,
            # Decorrelate the churn coins from the deployment draws of the same root seed.
            spawn_rng(self.seed, "mobility", self.model_name, self.node_count, run_index).randrange(1 << 62),
        )


# ---------------------------------------------------------------------- registered models
#
# Like ``fixed-count``, the density axis is the exact node count: mobility statistics
# (churn, stability) would be confounded by Poisson population noise otherwise.


@TOPOLOGY_MODELS.register(
    "rwp",
    description="random-waypoint mobility over round(density) uniformly deployed nodes",
)
def rwp_model(field: FieldSpec, density: float, seed: int, weight_assigners: Sequence[WeightAssigner] = ()):
    """``density`` is the exact number of mobile nodes."""
    return RandomWaypointGenerator(
        field=field,
        node_count=int(round(density)),
        seed=seed,
        weight_assigners=tuple(weight_assigners),
    )


@TOPOLOGY_MODELS.register(
    "gauss-markov",
    description="Gauss-Markov correlated mobility over round(density) uniformly deployed nodes",
)
def gauss_markov_model(field: FieldSpec, density: float, seed: int, weight_assigners: Sequence[WeightAssigner] = ()):
    """``density`` is the exact number of mobile nodes."""
    return GaussMarkovGenerator(
        field=field,
        node_count=int(round(density)),
        seed=seed,
        weight_assigners=tuple(weight_assigners),
    )


@TOPOLOGY_MODELS.register(
    "churn",
    description="static round(density)-node deployment with per-step link fading/reweight churn",
)
def churn_model(field: FieldSpec, density: float, seed: int, weight_assigners: Sequence[WeightAssigner] = ()):
    """``density`` is the exact number of (static) nodes; links churn, positions do not."""
    return LinkChurnGenerator(
        field=field,
        node_count=int(round(density)),
        seed=seed,
        weight_assigners=tuple(weight_assigners),
    )
