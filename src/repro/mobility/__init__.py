"""Mobility and churn subsystem: time-evolving topologies and dynamic sweeps.

Three layers, stacked:

* :mod:`repro.mobility.models` -- deterministic, seeded trajectory models (random
  waypoint, Gauss-Markov, link churn/fading), registered as ``TOPOLOGY_MODELS`` entries
  ``rwp`` / ``gauss-markov`` / ``churn``.
* :mod:`repro.mobility.dynamic` -- the :class:`DynamicTopology` driver that advances a
  network through timesteps by diffing link sets and weights, maintaining the per-node
  local views (and their compact-graph / bottleneck-forest caches) incrementally.
* :mod:`repro.mobility.measures` -- the time-axis measure plugins (``ans-churn``,
  ``tc-overhead``, ``route-stability``) that run dynamic sweeps through the standard
  spec/engine/sink pipeline.
"""

from repro.mobility.dynamic import DynamicTopology, StepDelta
from repro.mobility.models import (
    GaussMarkovGenerator,
    LinkChurnGenerator,
    RandomWaypointGenerator,
    TrajectoryStepper,
    WorldState,
)

__all__ = [
    "DynamicTopology",
    "StepDelta",
    "RandomWaypointGenerator",
    "GaussMarkovGenerator",
    "LinkChurnGenerator",
    "TrajectoryStepper",
    "WorldState",
]
