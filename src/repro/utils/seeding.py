"""Deterministic, hierarchical random-number management.

Every stochastic element of the reproduction (node deployment, link weight draws,
source/destination sampling, per-run repetitions) derives its generator from a single
experiment seed through :func:`derive_seed`, so whole density sweeps are reproducible
bit-for-bit while individual runs remain statistically independent.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

_MASK_63 = (1 << 63) - 1


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labeling components.

    The derivation hashes the textual representation of the components with SHA-256 so
    that nearby base seeds or labels do not produce correlated child seeds (as they would
    with simple arithmetic mixing).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for component in components:
        hasher.update(b"\x1f")
        hasher.update(repr(component).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") & _MASK_63


def make_rng(seed: Optional[int]) -> random.Random:
    """Return a :class:`random.Random` seeded with ``seed`` (or OS entropy when ``None``)."""
    return random.Random(seed)


def spawn_rng(base_seed: int, *components: object) -> random.Random:
    """Return an independent generator derived from ``base_seed`` and ``components``."""
    return random.Random(derive_seed(base_seed, *components))
