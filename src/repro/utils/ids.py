"""Node identifiers.

The protocols reproduced here (OLSR, QOLSR, FNBP) all rely on a *total order over node
identifiers* to break ties deterministically -- e.g. the FNBP loop guard gives the node with
the smallest identifier the responsibility of covering a contested two-hop neighbor.  We keep
identifiers as plain integers (they stand in for the 32-bit "main address" of RFC 3626) and
centralize the comparison helpers here so every module breaks ties the same way.
"""

from __future__ import annotations

from typing import Iterable

NodeId = int
"""A node identifier.  Plain ``int``; comparisons define the protocol's total order."""


def normalize_node_id(value: object) -> NodeId:
    """Coerce ``value`` to a valid :data:`NodeId`.

    Accepts ints and integral floats/strings.  Raises :class:`TypeError` or
    :class:`ValueError` for anything that does not denote a non-negative integer.
    """
    if isinstance(value, bool):
        raise TypeError(f"booleans are not valid node identifiers: {value!r}")
    if isinstance(value, int):
        node_id = value
    elif isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"node identifiers must be integers, got {value!r}")
        node_id = int(value)
    elif isinstance(value, str):
        node_id = int(value)
    else:
        raise TypeError(f"cannot interpret {value!r} as a node identifier")
    if node_id < 0:
        raise ValueError(f"node identifiers must be non-negative, got {node_id}")
    return node_id


def smallest_id(nodes: Iterable[NodeId]) -> NodeId:
    """Return the smallest identifier in ``nodes``.

    Raises :class:`ValueError` when ``nodes`` is empty, mirroring built-in :func:`min`,
    but with a clearer message for protocol code.
    """
    nodes = list(nodes)
    if not nodes:
        raise ValueError("cannot take the smallest identifier of an empty set")
    return min(nodes)
