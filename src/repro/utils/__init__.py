"""Small shared utilities: node identifiers, seeded randomness, validation helpers."""

from repro.utils.ids import NodeId, normalize_node_id, smallest_id
from repro.utils.seeding import derive_seed, make_rng, spawn_rng
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "NodeId",
    "normalize_node_id",
    "smallest_id",
    "derive_seed",
    "make_rng",
    "spawn_rng",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
