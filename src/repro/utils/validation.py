"""Input-validation helpers shared across the library.

These raise :class:`ValueError` with consistent, descriptive messages so that configuration
mistakes (a negative radius, a zero density, a malformed probability) fail loudly at the
boundary instead of corrupting an experiment half-way through.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def require_positive(value: Number, name: str) -> Number:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    _require_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def require_non_negative(value: Number, name: str) -> Number:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    _require_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_probability(value: Number, name: str) -> Number:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    _require_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def require_in_range(value: Number, name: str, low: Number, high: Number) -> Number:
    """Return ``value`` if it lies in the closed interval [``low``, ``high``]."""
    _require_finite(value, name)
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return value


def _require_finite(value: Number, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
