"""Local-view machinery: ``G_u``, best-path solving and first-hop-on-best-path sets."""

from repro.localview.compactgraph import CompactGraph
from repro.localview.networkgraph import GraphWindow, NetworkGraph
from repro.localview.paths import (
    FirstHopResult,
    all_first_hops,
    best_value_between,
    best_values_from,
    enumerate_best_paths,
    first_hops_to,
    path_value,
    prime_first_hops,
)
from repro.localview.rng import dominated_links, qos_rng_reduce
from repro.localview.view import LocalView

__all__ = [
    "LocalView",
    "CompactGraph",
    "NetworkGraph",
    "GraphWindow",
    "FirstHopResult",
    "first_hops_to",
    "all_first_hops",
    "prime_first_hops",
    "best_values_from",
    "best_value_between",
    "enumerate_best_paths",
    "path_value",
    "qos_rng_reduce",
    "dominated_links",
]
