"""One shared network-level CSR per trial, windowed by every :class:`LocalView`.

The compact-graph core (:mod:`repro.localview.compactgraph`) flattens each node's
two-hop view independently: building all views of a dense trial therefore re-extracts
every physical link's metric value once *per view that sees it* -- for the paper's dense
settings that is the same link touched well over a hundred times.  :class:`NetworkGraph`
hoists the flattening to the network level: the adjacency is laid out **once** as flat
``indptr``/``indices`` arrays (a classical CSR), and each metric's link values are
extracted **once per physical link** into one shared numpy array keyed by
:meth:`Metric.cache_token`.  A :class:`LocalView` attached to the shared graph
(:meth:`LocalView.attach_network_graph`) no longer owns the numbers its solvers run on --
its window is a set of *row and slot indices into the parent arrays* (see
:class:`GraphWindow`), and the batched solver kernels of :mod:`repro.localview.batched`
stack all owners' windows and expand every frontier together over the shared arrays.

Layout
------

* ``nodes``      -- tuple of node identifiers, **sorted**; position = global row index,
  so global index order and node-identifier order coincide (the batched kernels rely on
  this to emit results in ``known_targets()`` order without per-target sorting).
* ``index``      -- node identifier -> global row index.
* ``indptr``/``indices`` -- int64 CSR arrays; row ``i``'s neighbor indices are
  ``indices[indptr[i]:indptr[i+1]]``, sorted ascending.  Each undirected edge occupies
  one *slot* in each endpoint's row.
* ``slot_edge``  -- int64, slot -> undirected edge id.  Edge ids are assigned in
  lexicographic ``(u, v)`` order (``u < v``), deterministically.
* ``edge_u``/``edge_v`` -- int64 per-edge endpoint rows (``edge_u < edge_v``).
* per-token weight arrays -- ``edge_values(metric)`` (one float64 per edge) and
  ``slot_values(metric)`` (the same values scattered to slots), built lazily and only
  for metrics the specialized scalar solvers accept (``specialized_kind(metric)`` not
  None); composite metrics with non-float values are never materialized, so batched
  callers fall back to the scalar path for them.

Ownership and validity contract
-------------------------------

The graph snapshots the network's link attributes at build time (each attribute dict is
*copied*), so later mutations of the source network do not leak into already-extracted
weight arrays: a ``NetworkGraph`` and the views built against the same network state
stay mutually consistent even if the network moves on (the dynamic driver exploits
this -- see below).  Two mutation paths keep a shared graph current:

* :meth:`patch_weights` -- weight-only changes on surviving links.  The affected edges'
  values are re-extracted **in place** into every already-materialized weight array; the
  CSR index arrays are untouched, so existing :class:`GraphWindow` objects stay current
  (``version`` is bumped, ``generation`` is not -- previously *solved* results are stale,
  windows are not).
* :meth:`rebuild` -- structural changes (links appeared/disappeared).  All arrays are
  rebuilt from the network; ``generation`` (and ``version``) is bumped, invalidating
  every outstanding window.

:class:`~repro.mobility.dynamic.DynamicTopology` owns one ``NetworkGraph`` per dynamic
trial and routes each step's diff through exactly these two paths, mirroring what it
already does for the per-view caches.  Views never mutate the shared arrays; the
sanctioned per-view mutation path :meth:`LocalView.update_link` *detaches* the view
from the shared graph instead (its private measurement diverged from the network), so
exactly the touched view loses its window and every sibling keeps batching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.localview.compactgraph import specialized_kind
from repro.metrics.base import Metric
from repro.utils.ids import NodeId

Edge = Tuple[NodeId, NodeId]


class NetworkGraph:
    """Flat CSR adjacency of a whole network plus shared per-metric weight arrays."""

    def __init__(self, network) -> None:
        #: Bumped by every mutation (weight patches and rebuilds): results computed
        #: from the arrays before the bump are stale.
        self.version = 0
        #: Bumped by structural rebuilds only: windows cut before the bump no longer
        #: describe valid rows/slots.
        self.generation = 0
        self._build(network)

    @classmethod
    def from_network(cls, network) -> "NetworkGraph":
        """Build the shared CSR of ``network``'s current state."""
        return cls(network)

    # ------------------------------------------------------------------ construction

    def _build(self, network) -> None:
        adjacency = network.graph.adj
        nodes: Tuple[NodeId, ...] = tuple(network.nodes())  # sorted by the Network contract
        index = {node: i for i, node in enumerate(nodes)}
        indptr: List[int] = [0]
        indices: List[int] = []
        slot_edge: List[int] = []
        edge_u: List[int] = []
        edge_v: List[int] = []
        edge_attrs: List[dict] = []
        edge_id: Dict[Tuple[int, int], int] = {}
        for i, node in enumerate(nodes):
            row = sorted((index[other], other) for other in adjacency[node])
            for j, other in row:
                indices.append(j)
                key = (i, j) if i < j else (j, i)
                e = edge_id.get(key)
                if e is None:
                    e = len(edge_attrs)
                    edge_id[key] = e
                    # Snapshot the attributes: the shared arrays must keep describing
                    # the network state the attached views were built from, even if the
                    # source network mutates afterwards.
                    edge_attrs.append(dict(adjacency[node][other]))
                    edge_u.append(key[0])
                    edge_v.append(key[1])
                slot_edge.append(e)
            indptr.append(len(indices))
        self.nodes = nodes
        self.index = index
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.slot_edge = np.asarray(slot_edge, dtype=np.int64)
        self.edge_u = np.asarray(edge_u, dtype=np.int64)
        self.edge_v = np.asarray(edge_v, dtype=np.int64)
        self._edge_attrs = edge_attrs
        self._edge_id = edge_id
        self._edge_values: Dict[object, np.ndarray] = {}
        self._slot_values: Dict[object, np.ndarray] = {}
        self._sorted_edges: Dict[object, np.ndarray] = {}
        self._metrics: Dict[object, Metric] = {}

    # ------------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self._edge_attrs)

    def edge_values(self, metric: Metric) -> Optional[np.ndarray]:
        """One float64 link value per undirected edge (lazily extracted, cached).

        Returns None when ``metric`` is not specialized (its values may not be plain
        floats -- e.g. lexicographic composites) or when some edge lacks the metric's
        attribute; callers fall back to the scalar per-view path in either case,
        mirroring :meth:`CompactGraph.try_from_networkx`.
        """
        if specialized_kind(metric) is None:
            return None
        token = metric.cache_token()
        values = self._edge_values.get(token)
        if values is None:
            extract = metric.link_value_from_attributes
            try:
                values = np.fromiter(
                    (extract(attrs) for attrs in self._edge_attrs),
                    dtype=np.float64,
                    count=len(self._edge_attrs),
                )
            except KeyError:
                return None
            self._edge_values[token] = values
            self._slot_values[token] = values[self.slot_edge]
            self._metrics[token] = metric
        return values

    def slot_values(self, metric: Metric) -> Optional[np.ndarray]:
        """``edge_values`` scattered to CSR slots (``slot_values[s]`` weighs slot ``s``)."""
        if self.edge_values(metric) is None:
            return None
        return self._slot_values[metric.cache_token()]

    def sorted_edges(self, metric: Metric) -> Optional[np.ndarray]:
        """Edge ids argsorted best-first by ``metric.sort_key`` (cached per token).

        This is the **one shared Kruskal order** every owner's batched bottleneck pass
        filters instead of re-sorting its visible edges: the sort is stable, so equal
        keys keep edge-id (lexicographic ``(u, v)``) order, which makes the per-owner
        forests deterministic.  (Any maximum-bottleneck forest yields the same pairwise
        bottleneck values, so the forests need not match the scalar solver's edge-by-edge
        -- only the *values* must, and they do exactly.)
        """
        values = self.edge_values(metric)
        if values is None:
            return None
        token = metric.cache_token()
        order = self._sorted_edges.get(token)
        if order is None:
            kind = specialized_kind(metric)
            keys = values if kind == "additive" else -values
            order = np.argsort(keys, kind="stable").astype(np.int64)
            self._sorted_edges[token] = order
        return order

    def window(self, owner: NodeId) -> "GraphWindow":
        """Cut the two-hop window of ``owner`` out of the shared arrays.

        The window holds **indices only** -- member rows and the slots of the rows fully
        visible to the owner -- and reads weights through the parent at query time, so
        in-place weight patches are visible without rebuilding the window.
        """
        g = self.index[owner]
        one = self.indices[self.indptr[g] : self.indptr[g + 1]]
        slots, _ = row_slots(self.indptr, np.concatenate((np.asarray([g], dtype=np.int64), one)))
        dsts = self.indices[slots]
        member = np.zeros(len(self.nodes), dtype=bool)
        member[one] = True
        member[g] = True
        two = np.unique(dsts[~member[dsts]])
        members = np.concatenate((np.asarray([g], dtype=np.int64), one, two))
        return GraphWindow(
            parent=self,
            owner=owner,
            members=members,
            one_hop_count=int(one.size),
            slots=slots,
            generation=self.generation,
        )

    # ------------------------------------------------------------------ mutation

    def patch_weights(self, network, edges: Iterable[Edge]) -> None:
        """Re-extract the values of surviving, reweighted ``edges`` in place.

        ``network`` must be the graph's source network with the new attribute values
        already applied; each edge's attribute snapshot is refreshed and every
        already-materialized weight array is patched in place (no reallocation, so
        windows and array references held by the batched kernels stay valid).  Cached
        Kruskal orders are dropped (relative order may have changed).
        """
        graph_edges = network.graph.edges
        index = self.index
        touched: List[int] = []
        for u, v in edges:
            i, j = index[u], index[v]
            key = (i, j) if i < j else (j, i)
            e = self._edge_id[key]
            self._edge_attrs[e] = dict(graph_edges[u, v])
            touched.append(e)
        for token, metric in self._metrics.items():
            extract = metric.link_value_from_attributes
            values = self._edge_values[token]
            for e in touched:
                values[e] = extract(self._edge_attrs[e])
            # Refresh the slot scatter in place so outstanding references see the patch.
            self._slot_values[token][:] = values[self.slot_edge]
        self._sorted_edges.clear()
        self.version += 1

    def rebuild(self, network) -> None:
        """Rebuild every array from ``network`` after a structural change.

        The object identity is preserved (views and the dynamic driver hold references);
        ``generation`` is bumped so every window cut before the rebuild reports
        ``is_current() == False``.
        """
        self._build(network)
        self.version += 1
        self.generation += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkGraph(nodes={len(self.nodes)}, edges={self.edge_count()}, "
            f"tokens={len(self._edge_values)}, generation={self.generation})"
        )


@dataclass(frozen=True)
class GraphWindow:
    """A :class:`LocalView`'s slice of the shared CSR: indices into the parent arrays.

    ``members`` lists global rows as ``[owner] + sorted one-hop + sorted two-hop`` and
    ``slots`` the CSR slots of the owner's and the one-hop rows (the rows the owner sees
    *completely*; a two-hop row is only partially visible, its in-window slots already
    appear among the one-hop rows' slots in the other direction).  The window owns no
    weights: :meth:`weights` gathers from the parent at call time, which is what makes
    in-place weight patches (``patch_weights``) visible to existing windows.  A window
    is invalidated -- :meth:`is_current` turns False -- only by a structural
    :meth:`NetworkGraph.rebuild`.
    """

    parent: NetworkGraph
    owner: NodeId
    members: np.ndarray
    one_hop_count: int
    slots: np.ndarray
    generation: int

    def is_current(self) -> bool:
        """True while the parent has not been structurally rebuilt since the cut."""
        return self.generation == self.parent.generation

    def member_nodes(self) -> List[NodeId]:
        """The window's node identifiers, owner first."""
        nodes = self.parent.nodes
        return [nodes[g] for g in self.members.tolist()]

    def weights(self, metric: Metric) -> Optional[np.ndarray]:
        """The current per-slot link values of the window (gathered from the parent)."""
        slot_values = self.parent.slot_values(metric)
        if slot_values is None:
            return None
        return slot_values[self.slots]


def row_slots(indptr: np.ndarray, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The CSR slot positions of ``rows`` concatenated, plus each row's degree.

    Vectorized equivalent of ``concatenate([arange(indptr[r], indptr[r+1]) for r in
    rows])`` -- the basic gather every batched kernel starts from.
    """
    starts = indptr[rows]
    degs = indptr[rows + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), degs
    offsets = np.repeat(np.cumsum(degs) - degs, degs)
    slots = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, degs)
    return slots, degs
