"""A compact flat-adjacency (CSR-style) graph for the selection hot path.

Every selection algorithm funnels through the same inner loop: a label-setting
single-source solver (Dijkstra / widest path) over a node's two-hop local view, run once
per view or once per target.  On a :class:`networkx.Graph` each relaxation pays for a
dict-of-dict edge lookup plus a ``metric.link_value_from_attributes`` call; over a full
density sweep (100 topologies per density, every node, every selector) those constant
factors dominate the wall clock.  :class:`CompactGraph` removes them by flattening the
graph once per (view, metric) pair:

Layout (the moral equivalent of a CSR matrix, kept as per-row tuples because CPython
iterates tuples of tuples faster than it slices flat arrays):

* ``nodes``  -- tuple of node identifiers; position = the node's integer index.
* ``index``  -- dict mapping node identifier -> integer index (the inverse of ``nodes``).
* ``adj``    -- tuple of per-node rows; ``adj[i]`` is a tuple of ``(neighbor_index,
  link_value)`` pairs, one per incident edge, with the metric's link value extracted from
  the edge attributes *once* at build time.  Undirected edges appear in both endpoint
  rows.

The graph is immutable by convention (nothing mutates the tuples) and therefore safe to
cache -- :meth:`repro.localview.view.LocalView.compact_graph` memoizes one instance per
metric so repeated selector runs on the same view share the extraction work.

The module also hosts the label-setting solvers specialized for the flat layout.  For the
stock additive/concave metrics the inner loop inlines the combine rule (``+`` / ``min``)
and the heap key (value / negated value) instead of going through ``Metric`` method
calls; any metric that overrides the protocol (e.g.
:class:`~repro.metrics.composite.LexicographicMetric`) transparently falls back to the
generic solver, which still benefits from the pre-extracted link values.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.metrics.base import AdditiveMetric, ConcaveMetric, Metric
from repro.utils.ids import NodeId


class CompactGraph:
    """An immutable flat-adjacency snapshot of a graph under one metric."""

    __slots__ = ("nodes", "index", "adj", "metric_name")

    def __init__(
        self,
        nodes: Tuple[NodeId, ...],
        index: Dict[NodeId, int],
        adj: Tuple[Tuple[Tuple[int, float], ...], ...],
        metric_name: str,
    ) -> None:
        self.nodes = nodes
        self.index = index
        self.adj = adj
        self.metric_name = metric_name

    # ------------------------------------------------------------------ construction

    @classmethod
    def from_networkx(cls, graph, metric: Metric) -> "CompactGraph":
        """Flatten a :class:`networkx.Graph`, extracting ``metric``'s link values once.

        Node indices follow the graph's (deterministic) node insertion order.  Raises the
        same :class:`KeyError` as ``metric.link_value_from_attributes`` when an edge lacks
        the metric's attribute.
        """
        nodes = tuple(graph.nodes)
        index = {node: i for i, node in enumerate(nodes)}
        extract = metric.link_value_from_attributes
        rows = []
        for node in nodes:
            row = tuple((index[other], extract(data)) for other, data in graph.adj[node].items())
            rows.append(row)
        return cls(nodes=nodes, index=index, adj=tuple(rows), metric_name=metric.name)

    @classmethod
    def try_from_networkx(cls, graph, metric: Metric) -> Optional["CompactGraph"]:
        """Like :meth:`from_networkx`, or None when some edge lacks the metric's attribute.

        Flattening extracts every edge's value eagerly; a traversal-based solver only
        touches the edges it reaches.  Callers that must preserve that lazy behaviour for
        partially-attributed graphs use this and fall back to a networkx traversal on None.
        """
        try:
            return cls.from_networkx(graph, metric)
        except KeyError:
            return None

    # ------------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.index

    def degree(self, i: int) -> int:
        """Number of edges incident to the node with index ``i``."""
        return len(self.adj[i])

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(row) for row in self.adj) // 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactGraph(nodes={len(self.nodes)}, edges={self.edge_count()}, "
            f"metric={self.metric_name!r})"
        )


# ---------------------------------------------------------------------- metric dispatch


def specialized_kind(metric: Metric) -> Optional[str]:
    """``"additive"`` / ``"concave"`` when ``metric`` uses the stock protocol, else None.

    The specialized solvers inline ``combine``, ``sort_key`` and ``values_equal``; that is
    only sound when the metric has not overridden any of them (nor ``identity``).
    """
    cls = type(metric)
    if cls.values_equal is not Metric.values_equal:
        return None
    if (
        isinstance(metric, AdditiveMetric)
        and cls.combine is AdditiveMetric.combine
        and cls.sort_key is AdditiveMetric.sort_key
        and cls.identity is AdditiveMetric.identity
    ):
        return "additive"
    if (
        isinstance(metric, ConcaveMetric)
        and cls.combine is ConcaveMetric.combine
        and cls.sort_key is ConcaveMetric.sort_key
        and cls.identity is ConcaveMetric.identity
    ):
        return "concave"
    return None


def float_values_equal(rel_tol: float) -> Callable[[float, float], bool]:
    """A closure replicating :meth:`Metric.values_equal` for plain float values.

    ``a == b or math.isclose(a, b, ...)`` is exactly the base implementation: equal
    infinities hit the ``==`` shortcut, and ``isclose`` is False whenever exactly one value
    is infinite, which is what the base method's explicit infinity branch returns.  Hot
    loops inline this expression directly instead of paying a call per edge.
    """
    isclose = math.isclose

    def eq(a: float, b: float) -> bool:
        return a == b or isclose(a, b, rel_tol=rel_tol, abs_tol=rel_tol)

    return eq


def combine_and_equality(metric: Metric):
    """``(combine, values_equal)`` callables, inlined for the stock metric families."""
    kind = specialized_kind(metric)
    if kind == "additive":
        return (lambda a, b: a + b), float_values_equal(metric.rel_tol)
    if kind == "concave":
        return min, float_values_equal(metric.rel_tol)
    return metric.combine, metric.values_equal


# ---------------------------------------------------------------------- solvers


def max_bottleneck_forest(
    cg: CompactGraph, excluded: int, metric: Metric
) -> Tuple[Tuple[Tuple[int, float], ...], ...]:
    """Maximum-bottleneck spanning forest of ``cg`` minus one node (Kruskal).

    For a concave metric the best path value between two nodes of a graph equals the
    bottleneck along their unique path in any maximum(-bottleneck) spanning forest, so one
    forest answers every pairwise bottleneck query on the owner-free view.  Edges are sorted
    best-first by ``metric.sort_key`` and joined with a union-find.

    The returned adjacency (``forest[i]`` is a tuple of ``(neighbor_index, link_value)``
    pairs, indices matching ``cg``) is immutable, which is what makes it safe to cache per
    ``(view, metric)`` -- :meth:`repro.localview.view.LocalView.bottleneck_forest` memoizes
    one forest per metric cache token so repeated concave selector runs on one view skip
    Kruskal entirely.
    """
    adj = cg.adj
    node_count = len(adj)
    sort_key = metric.sort_key
    edges = []
    for a in range(node_count):
        if a == excluded:
            continue
        for b, value in adj[a]:
            if a < b and b != excluded:
                edges.append((sort_key(value), a, b, value))
    edges.sort()

    parent = list(range(node_count))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    forest: list = [[] for _ in range(node_count)]
    for _, a, b, value in edges:
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            continue
        parent[root_a] = root_b
        forest[a].append((b, value))
        forest[b].append((a, value))
    return tuple(tuple(row) for row in forest)


def best_values(
    cg: CompactGraph,
    source: int,
    metric: Metric,
    blocked: Iterable[int] = (),
) -> Dict[int, object]:
    """Best path value from node index ``source`` to every reachable node index.

    ``blocked`` node indices are treated as absent.  The returned dict is keyed by node
    index in label-settling order (the order Dijkstra finalizes nodes), mirroring the
    historical behaviour of :func:`repro.localview.paths.best_values_from`.
    """
    kind = specialized_kind(metric)
    if kind == "additive":
        return _best_values_additive(cg.adj, source, blocked)
    if kind == "concave":
        return _best_values_concave(cg.adj, source, blocked)
    return _best_values_generic(cg.adj, source, metric, blocked)


def _best_values_additive(adj, source: int, blocked) -> Dict[int, float]:
    # The inner loop skips settled neighbors implicitly: a settled node's bound is its
    # final (minimal) value, so no later candidate can undercut it and trigger a push.
    # Unvisited nodes carry None (not +inf) so that a legitimately infinite candidate --
    # an unvalidated infinite link weight -- still counts as reachable, as it does for the
    # legacy traversal; blocked nodes carry -inf, which no candidate undercuts.
    ninf = -math.inf
    bound: list = [None] * len(adj)
    for b in blocked:
        bound[b] = ninf
    if bound[source] is not None:
        return {}
    settled = bytearray(len(adj))
    best: Dict[int, float] = {}
    heap = [(0.0, source)]
    bound[source] = 0.0
    while heap:
        value, node = heappop(heap)
        if settled[node]:
            continue
        settled[node] = 1
        best[node] = value
        for neighbor, weight in adj[node]:
            candidate = value + weight
            current = bound[neighbor]
            if current is None or candidate < current:
                bound[neighbor] = candidate
                heappush(heap, (candidate, neighbor))
    return best


def _best_values_concave(adj, source: int, blocked) -> Dict[int, float]:
    # Unvisited nodes carry -inf (below any real candidate, including an unvalidated
    # zero-weight link's 0.0); blocked nodes carry +inf, which no candidate exceeds.
    inf = math.inf
    bound = [-inf] * len(adj)
    for b in blocked:
        bound[b] = inf
    if bound[source] == inf:
        return {}
    settled = bytearray(len(adj))
    best: Dict[int, float] = {}
    heap = [(-inf, source)]
    bound[source] = inf
    while heap:
        key, node = heappop(heap)
        if settled[node]:
            continue
        settled[node] = 1
        value = -key
        best[node] = value
        for neighbor, weight in adj[node]:
            candidate = weight if weight < value else value
            if candidate > bound[neighbor]:
                bound[neighbor] = candidate
                heappush(heap, (-candidate, neighbor))
    return best


def _best_values_generic(adj, source: int, metric: Metric, blocked) -> Dict[int, object]:
    visited = bytearray(len(adj))
    for b in blocked:
        visited[b] = 1
    if visited[source]:
        return {}
    combine = metric.combine
    sort_key = metric.sort_key
    best: Dict[int, object] = {}
    counter = 0
    heap = [(sort_key(metric.identity), counter, source, metric.identity)]
    while heap:
        _, __, node, value = heappop(heap)
        if visited[node]:
            continue
        visited[node] = 1
        best[node] = value
        for neighbor, weight in adj[node]:
            if not visited[neighbor]:
                candidate = combine(value, weight)
                counter += 1
                heappush(heap, (sort_key(candidate), counter, neighbor, candidate))
    return best
