"""A node's partial view of the network, ``G_u``.

OLSR nodes only know their one- and two-hop neighborhood, learned from HELLO messages that
piggyback each neighbor's own neighbor table.  The paper formalizes this as the graph
``G_u = (V_u, E_u)`` with ``V_u = {u} ∪ N(u) ∪ N²(u)`` and ``E_u`` containing every link with
at least one endpoint in ``N(u)`` (so links between two 2-hop neighbors are *not* visible --
this is exactly why a localized algorithm cannot always find the globally optimal path, as
the paper's Figure 2 illustrates with the invisible link ``(v8, v9)``).

:class:`LocalView` is that object.  Every selection algorithm in the library (FNBP and all
baselines) takes a :class:`LocalView` as input, which keeps them honest: they can only use
information a real OLSR node would have.

Views are immutable by default: the selection machinery caches one
:class:`~repro.localview.compactgraph.CompactGraph` *and* one owner-free
maximum-bottleneck spanning forest per metric on the view (:meth:`LocalView.compact_graph`
/ :meth:`LocalView.bottleneck_forest`), and the batch constructor
(:meth:`LocalView.all_from_network`) shares link-attribute dictionaries between sibling
views, so callers must treat ``view.graph`` and its edge data as read-only.  The one
sanctioned mutation path is :meth:`LocalView.update_link` (a node re-measuring one of the
links it knows about): it un-shares the edge-attribute dictionary before writing, so
sibling views built in the same batch are unaffected, and drops every derived cache via
:meth:`LocalView.invalidate_caches`.  Code that mutates ``view.graph`` behind the view's
back must call :meth:`LocalView.invalidate_caches` itself or the cached solvers will keep
answering from the pre-mutation snapshot.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

import networkx as nx

from repro.localview.compactgraph import CompactGraph, max_bottleneck_forest
from repro.metrics.base import Metric
from repro.utils.ids import NodeId


class LocalView:
    """The two-hop local view ``G_u`` of a node ``u``."""

    def __init__(
        self,
        owner: NodeId,
        one_hop: Iterable[NodeId],
        two_hop: Iterable[NodeId],
        graph: nx.Graph,
    ) -> None:
        self.owner = owner
        self.one_hop: FrozenSet[NodeId] = frozenset(one_hop)
        self.two_hop: FrozenSet[NodeId] = frozenset(two_hop)
        self.graph = graph
        self._compact: Dict[object, CompactGraph] = {}
        self._forest: Dict[object, tuple] = {}
        # Shared network-level CSR backing (set by attach_network_graph) and the
        # per-metric-token first-hop results the batched kernels primed on it.
        self._network_graph = None
        self._first_hops: Dict[object, dict] = {}
        self._validate()

    # ------------------------------------------------------------------ construction

    @classmethod
    def from_network(cls, network, owner: NodeId) -> "LocalView":
        """Build ``G_owner`` from a :class:`~repro.topology.network.Network`.

        Only the information available to a real node is copied: the links incident to the
        owner and to its one-hop neighbors.  Link weights are carried over verbatim.
        """
        if owner not in network:
            raise KeyError(f"node {owner} is not part of the network")
        return cls._from_adjacency(network.graph.adj, owner, {})

    @classmethod
    def all_from_network(cls, network, network_graph=None) -> Dict[NodeId, "LocalView"]:
        """Build every node's local view in one pass over the network's adjacency.

        Equivalent to ``{node: LocalView.from_network(network, node) for node in network}``
        but substantially cheaper: the network adjacency is walked once, and each physical
        link's attribute dictionary is copied once and *shared* between all the views that
        see the link (every view of a link's endpoint neighborhood would otherwise take its
        own copy).  The shared dictionaries are never mutated by the library; treat them as
        read-only.

        ``network_graph`` (a :class:`~repro.localview.networkgraph.NetworkGraph` built from
        the same network state) attaches every view to the shared CSR so the batched solver
        kernels can window it; omitted, the views run the scalar per-view path unchanged.
        """
        adjacency = network.graph.adj
        shared: Dict[int, dict] = {}
        views = {
            owner: cls._from_adjacency(adjacency, owner, shared) for owner in network.nodes()
        }
        if network_graph is not None:
            for view in views.values():
                view._network_graph = network_graph
        return views

    @classmethod
    def from_adjacency(
        cls,
        adjacency,
        owner: NodeId,
        shared: Optional[Dict[int, dict]] = None,
        network_graph=None,
    ) -> "LocalView":
        """Build one view from a networkx adjacency mapping, sharing attribute copies.

        The batch-rebuild hook of the dynamic-topology driver: pass the same ``shared``
        dictionary across several calls and each physical link's attribute dictionary is
        copied once and shared between the views built in the batch, exactly as
        :meth:`all_from_network` does for a full-network build.  ``network_graph``
        attaches the view to the shared CSR, as in :meth:`all_from_network`.
        """
        view = cls._from_adjacency(adjacency, owner, {} if shared is None else shared)
        if network_graph is not None:
            view._network_graph = network_graph
        return view

    @classmethod
    def _from_adjacency(cls, adjacency, owner: NodeId, shared: Dict[int, dict]) -> "LocalView":
        """Build one view directly from a networkx adjacency mapping.

        ``shared`` caches attribute-dict copies by the identity of the source dict so a
        batch of views copies each physical link's attributes only once.
        """
        owner_row = adjacency[owner]
        one_hop = frozenset(owner_row)
        two_hop: Set[NodeId] = set()
        for neighbor in one_hop:
            two_hop.update(adjacency[neighbor])
        two_hop.discard(owner)
        two_hop -= one_hop

        graph = nx.Graph()
        graph.add_node(owner)
        graph.add_nodes_from(one_hop)
        graph.add_nodes_from(two_hop)
        graph_adjacency = graph._adj
        for neighbor in one_hop:
            row = graph_adjacency[neighbor]
            for other, data in adjacency[neighbor].items():
                # Every neighbor of a one-hop node is the owner, one-hop or two-hop, so the
                # whole row is visible; copy the link attributes once per physical link.
                copied = shared.get(id(data))
                if copied is None:
                    copied = dict(data)
                    shared[id(data)] = copied
                row[other] = copied
                graph_adjacency[other][neighbor] = copied
        return cls(owner=owner, one_hop=one_hop, two_hop=two_hop, graph=graph)

    @classmethod
    def from_tables(
        cls,
        owner: NodeId,
        neighbor_links: Dict[NodeId, Dict[str, float]],
        two_hop_links: Dict[NodeId, Dict[NodeId, Dict[str, float]]],
    ) -> "LocalView":
        """Build a view from protocol tables (as the simulator's OLSR nodes do).

        ``neighbor_links[v]`` holds the weights of the direct link ``(owner, v)``;
        ``two_hop_links[v][w]`` holds the weights of the link ``(v, w)`` reported by neighbor
        ``v`` about its own neighbor ``w``.
        """
        graph = nx.Graph()
        graph.add_node(owner)
        one_hop = set(neighbor_links)
        for neighbor, weights in neighbor_links.items():
            graph.add_edge(owner, neighbor, **dict(weights))
        two_hop: Set[NodeId] = set()
        for neighbor, reported in two_hop_links.items():
            if neighbor not in one_hop:
                # Stale report about a node that is no longer a neighbor; ignore it.
                continue
            for other, weights in reported.items():
                if other == owner:
                    continue
                graph.add_edge(neighbor, other, **dict(weights))
                if other not in one_hop:
                    two_hop.add(other)
        return cls(owner=owner, one_hop=one_hop, two_hop=two_hop, graph=graph)

    # ------------------------------------------------------------------ queries

    @property
    def nodes(self) -> Set[NodeId]:
        """All nodes the owner knows about (``V_u``)."""
        return set(self.graph.nodes)

    def known_targets(self) -> list[NodeId]:
        """The owner's one- and two-hop neighbors, sorted (the targets ANS selection covers)."""
        return sorted(self.one_hop | self.two_hop)

    def compact_graph(self, metric: Metric) -> CompactGraph:
        """The flat-adjacency snapshot of the view under ``metric`` (built once, cached).

        Caching is sound because views are immutable once constructed; the cache key is
        :meth:`Metric.cache_token`, which identifies the metric's link-value extraction
        rule (not just its display name).
        """
        token = metric.cache_token()
        compact = self._compact.get(token)
        if compact is None:
            compact = CompactGraph.from_networkx(self.graph, metric)
            self._compact[token] = compact
        return compact

    def bottleneck_forest(self, metric: Metric) -> tuple:
        """The owner-free maximum-bottleneck spanning forest under ``metric`` (cached).

        This is what lets repeated concave selector runs on one view skip Kruskal entirely:
        the forest is a pure function of the view's link weights, so it is built once per
        metric cache token (like :meth:`compact_graph`) and shared by every subsequent
        ``bottleneck-forest`` solve.  The forest adjacency is indexed like
        ``self.compact_graph(metric)`` and is immutable; :meth:`invalidate_caches` drops it
        together with the compact graphs whenever the view's links change.
        """
        token = metric.cache_token()
        forest = self._forest.get(token)
        if forest is None:
            cg = self.compact_graph(metric)
            forest = max_bottleneck_forest(cg, cg.index[self.owner], metric)
            self._forest[token] = forest
        return forest

    def network_graph(self):
        """The shared :class:`NetworkGraph` this view windows, or None (scalar-only view)."""
        return self._network_graph

    def window(self):
        """This view's :class:`GraphWindow` into the shared CSR (None when detached)."""
        if self._network_graph is None:
            return None
        return self._network_graph.window(self.owner)

    def attach_network_graph(self, network_graph) -> None:
        """(Re-)attach the view to a shared CSR describing the same network state.

        The caller vouches for consistency: the view's links and weights must equal the
        graph's rows for the owner's two-hop window (true by construction for views the
        batch constructors attached, and for the dynamic driver's re-attachment after it
        routed the same change through both the view and the shared arrays).
        """
        self._network_graph = network_graph

    # ------------------------------------------------------------------ mutation

    def invalidate_caches(self) -> None:
        """Drop every cached per-metric structure (compact graphs, forests, first hops).

        Must be called after *any* mutation of ``self.graph`` or its edge attributes; the
        sanctioned mutation path :meth:`update_link` does so automatically.
        """
        self._compact.clear()
        self._forest.clear()
        self._first_hops.clear()

    def update_link(self, u: NodeId, v: NodeId, **weights: float) -> None:
        """Update the attributes of a known link and drop the derived caches.

        Models a node re-measuring the QoS of a link it already knows about.  The link's
        attribute dictionary may be shared with sibling views built by
        :meth:`all_from_network`; it is replaced by a fresh copy before writing so the
        update stays local to this view (other nodes only learn of new measurements through
        the protocol, not through shared memory).
        """
        if not self.graph.has_edge(u, v):
            raise KeyError(f"node {self.owner} does not know of a link between {u} and {v}")
        adjacency = self.graph._adj
        updated = dict(adjacency[u][v])
        updated.update(weights)
        adjacency[u][v] = updated
        adjacency[v][u] = updated
        self.invalidate_caches()
        # The private measurement diverged from the network the shared CSR snapshots, so
        # exactly this view detaches from it (siblings keep batching); the dynamic
        # driver re-attaches via attach_network_graph after patching the shared arrays
        # with the same change.
        self._network_graph = None

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        """True when the owner knows about a link between ``u`` and ``v``."""
        return self.graph.has_edge(u, v)

    def link_value(self, u: NodeId, v: NodeId, metric: Metric) -> float:
        """The weight of the known link ``(u, v)`` under ``metric``."""
        if not self.graph.has_edge(u, v):
            raise KeyError(f"node {self.owner} does not know of a link between {u} and {v}")
        return metric.link_value_from_attributes(self.graph.edges[u, v])

    def direct_link_value(self, neighbor: NodeId, metric: Metric) -> float:
        """The weight of the direct link from the owner to one of its neighbors."""
        if neighbor not in self.one_hop:
            raise KeyError(f"{neighbor} is not a one-hop neighbor of {self.owner}")
        return self.link_value(self.owner, neighbor, metric)

    def neighbors_of(self, node: NodeId) -> Set[NodeId]:
        """The neighbors of ``node`` *as known by the owner* (a subset of the true set)."""
        if node not in self.graph:
            return set()
        return set(self.graph.neighbors(node))

    def common_relays(self, target: NodeId) -> Set[NodeId]:
        """One-hop neighbors ``w`` of the owner such that the path ``owner-w-target`` exists."""
        return {w for w in self.one_hop if self.graph.has_edge(w, target)}

    def graph_without_owner(self) -> nx.Graph:
        """The view with the owner removed (used when computing paths that must not revisit it)."""
        return self.graph.subgraph([n for n in self.graph.nodes if n != self.owner])

    # ------------------------------------------------------------------ internals

    def _validate(self) -> None:
        if self.owner in self.one_hop or self.owner in self.two_hop:
            raise ValueError("the owner cannot be its own neighbor")
        overlap = self.one_hop & self.two_hop
        if overlap:
            raise ValueError(f"nodes cannot be both one- and two-hop neighbors: {sorted(overlap)}")
        if self.owner not in self.graph:
            self.graph.add_node(self.owner)
        for neighbor in self.one_hop:
            if not self.graph.has_edge(self.owner, neighbor):
                raise ValueError(f"missing direct link between owner {self.owner} and neighbor {neighbor}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalView(owner={self.owner}, one_hop={len(self.one_hop)}, "
            f"two_hop={len(self.two_hop)}, links={self.graph.number_of_edges()})"
        )
