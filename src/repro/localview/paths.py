"""QoS-weighted best paths and first-node-on-best-path sets.

This is the computational core every selection algorithm relies on:

* :func:`best_values_from` -- a single-source "best value" computation (a generalized
  Dijkstra) that works for both metric families: additive metrics run the classical shortest
  path, concave metrics run the widest/bottleneck path.  Both have the label-setting property
  (the popped label is final) because path values never improve when a path is extended.
* :func:`first_hops_to` -- the paper's ``fP_BW(u, v)`` / ``fP_D(u, v)``: the set of the
  owner's one-hop neighbors that are the first node of at least one QoS-optimal simple path
  from the owner to ``v`` inside the owner's local view.
* :func:`enumerate_best_paths` -- explicit enumeration of all optimal simple paths (used by
  tests and the worked-example walk-throughs, not by the selection algorithms themselves).

The first-hop computation uses the decomposition: a simple path from ``u`` starting with the
link ``(u, w)`` has value ``combine(weight(u, w), best(w → v in G \\ {u}))``.  Removing ``u``
is what enforces simplicity at the first hop; for both metric families the best simple path
value equals the best walk value (weights are non-negative / composition is monotone), so the
inner computation can use the label-setting solver.

Hot paths run on :class:`~repro.localview.compactgraph.CompactGraph` -- a flat-adjacency
snapshot with the metric's link values extracted once and cached per metric on the view --
instead of traversing networkx's dict-of-dicts on every relaxation.  The public functions
keep their networkx-accepting signatures and adapt internally; the original networkx
implementations survive as ``_*_nx`` module privates so the benchmark recorder
(``benchmarks/record.py``) and the cross-validation tests can measure and check the compact
core against them.

Caching contract: both per-view caches this module consumes --
:meth:`LocalView.compact_graph` (link values extracted once per metric) and
:meth:`LocalView.bottleneck_forest` (the owner-free maximum-bottleneck spanning forest the
concave fast path walks, so warm runs skip Kruskal entirely) -- are keyed by
:meth:`Metric.cache_token` and are valid exactly as long as the view's links do not change;
any mutation must go through :meth:`LocalView.update_link` (or call
:meth:`LocalView.invalidate_caches`), after which the next solve transparently rebuilds
both.  The solvers never mutate the cached structures, so views (and therefore warm caches)
are safe to share across selectors within one process; worker processes build their own
views and thus their own caches.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.localview.compactgraph import (
    CompactGraph,
    best_values,
    combine_and_equality,
    specialized_kind,
)
from repro.localview.view import LocalView
from repro.metrics.base import Metric, MetricKind
from repro.obs import runtime as obs
from repro.utils.ids import NodeId

from dataclasses import dataclass


def best_values_from(
    graph: nx.Graph | CompactGraph,
    source: NodeId,
    metric: Metric,
    excluded: Iterable[NodeId] = (),
) -> Dict[NodeId, float]:
    """Best path value from ``source`` to every reachable node of ``graph``.

    ``excluded`` nodes are treated as absent (neither traversed nor reported).  The source
    itself is reported with the metric's identity value.  Unreachable nodes are simply not in
    the returned mapping.  ``graph`` may be a :class:`networkx.Graph` (flattened on the fly;
    graphs with edges missing the metric's attribute fall back to the lazy networkx
    traversal, which only raises for edges the search actually reaches) or an already-built
    :class:`CompactGraph` for the same metric.
    """
    if isinstance(graph, CompactGraph):
        cg = graph
    else:
        if source not in graph:
            return {}
        cg = CompactGraph.try_from_networkx(graph, metric)
        if cg is None:
            return _best_values_from_nx(graph, source, metric, excluded)
    index = cg.index
    source_idx = index.get(source)
    if source_idx is None:
        return {}
    blocked = [index[node] for node in excluded if node in index]
    if source_idx in blocked:
        return {}
    values = best_values(cg, source_idx, metric, blocked)
    nodes = cg.nodes
    return {nodes[i]: value for i, value in values.items()}


def best_value_between(
    graph: nx.Graph,
    source: NodeId,
    target: NodeId,
    metric: Metric,
    excluded: Iterable[NodeId] = (),
) -> float:
    """Best path value between two nodes (the metric's ``worst`` when unreachable)."""
    if target not in graph:
        return metric.worst
    return best_values_from(graph, source, metric, excluded).get(target, metric.worst)


@dataclass(frozen=True)
class FirstHopResult:
    """The outcome of a first-hop-on-best-path computation for one target.

    Attributes
    ----------
    target:
        The node the owner wants to reach.
    best_value:
        The QoS value of the best path inside the local view (the metric's ``worst`` when
        the target is unreachable in the view, which cannot happen for genuine one- and
        two-hop neighbors).
    first_hops:
        The paper's ``fP(u, v)``: every one-hop neighbor that starts at least one optimal
        path.  Empty exactly when ``best_value`` is the metric's worst.
    """

    target: NodeId
    best_value: float
    first_hops: FrozenSet[NodeId]

    @property
    def reachable(self) -> bool:
        return bool(self.first_hops)

    def direct_link_is_optimal(self) -> bool:
        """True when the target itself is among the optimal first hops.

        For a one-hop neighbor this means the direct link is (one of) the best path(s), which
        is precisely the condition under which FNBP's step 1 selects nothing.
        """
        return self.target in self.first_hops


def _one_hop_rows(view: LocalView, cg: CompactGraph) -> List[Tuple[NodeId, int, float]]:
    """``(neighbor, neighbor_index, direct_link_value)`` for every one-hop neighbor.

    Iterates ``view.one_hop`` (not the owner's adjacency row) so that views whose declared
    one-hop set is a strict subset of the owner's graph neighbors keep their historical
    behaviour.
    """
    owner_row = dict(cg.adj[cg.index[view.owner]])
    index = cg.index
    return [(neighbor, index[neighbor], owner_row[index[neighbor]]) for neighbor in view.one_hop]


def first_hops_to(view: LocalView, target: NodeId, metric: Metric) -> FirstHopResult:
    """Compute ``fP(u, target)`` -- the first nodes of all QoS-optimal paths in ``G_u``.

    ``target`` must be a known node other than the owner (normally a one- or two-hop
    neighbor).  The result's ``first_hops`` are always one-hop neighbors of the owner.
    """
    owner = view.owner
    if target == owner:
        raise ValueError("the owner trivially reaches itself; first hops are undefined")
    if target not in view.graph:
        return FirstHopResult(target=target, best_value=metric.worst, first_hops=frozenset())

    cg = view.compact_graph(metric)
    combine, values_equal = combine_and_equality(metric)
    identity = metric.identity

    # Best values from the target towards every node, with the owner removed.  Computing from
    # the target side gives, for every neighbor w of the owner, the best value of a
    # (owner-free) path w → target in one solver run instead of one run per neighbor.
    from_target = best_values(cg, cg.index[target], metric, blocked=(cg.index[owner],))

    candidate_values: Dict[NodeId, float] = {}
    for neighbor, neighbor_idx, link_value in _one_hop_rows(view, cg):
        if neighbor == target:
            remainder = identity
        elif neighbor_idx in from_target:
            remainder = from_target[neighbor_idx]
        else:
            continue  # target unreachable from this neighbor without going through the owner
        candidate_values[neighbor] = combine(combine(identity, link_value), remainder)

    if not candidate_values:
        return FirstHopResult(target=target, best_value=metric.worst, first_hops=frozenset())

    best_value = metric.optimum(candidate_values.values())
    first_hops = frozenset(
        neighbor
        for neighbor, value in candidate_values.items()
        if values_equal(value, best_value)
    )
    return FirstHopResult(target=target, best_value=best_value, first_hops=first_hops)


def all_first_hops(
    view: LocalView,
    metric: Metric,
    method: str = "auto",
) -> Dict[NodeId, FirstHopResult]:
    """``fP(u, v)`` for every one- and two-hop neighbor ``v`` of the owner.

    Three implementations are provided; all agree (the property-based tests assert it on
    random topologies), they only trade generality for speed:

    * ``"per-target"`` calls :func:`first_hops_to` once per target (one solver run each) --
      the direct transcription of the paper's definition, used as the reference in tests.
    * ``"owner-dijkstra"`` runs a *single* solver pass rooted at the owner and propagates
      first-hop sets along tight predecessor links.  Valid only for **prefix-optimal**
      metrics (see :attr:`Metric.prefix_optimal`): every prefix of an optimal path must
      itself be optimal, which holds for the additive family but *not* for composites with
      a concave component (a suffix's ``min`` can erase a prefix's disadvantage, so
      optimal paths with suboptimal prefixes exist and the propagation would miss their
      first hops).
    * ``"bottleneck-forest"`` computes, for **concave** metrics, every pairwise bottleneck
      value through a maximum-bottleneck spanning forest of the view without the owner
      (the classical equivalence between widest paths and maximum spanning trees), then
      assembles the first-hop sets from ``combine(w(u, n), bottleneck(n, target))``.

    ``"auto"`` (default) picks the fast implementation matching the metric: owner-dijkstra
    for prefix-optimal additive metrics, bottleneck-forest for concave metrics, and the
    per-target reference for anything else (e.g. lexicographic composites mixing the
    families, for which neither single-pass shortcut is sound).  This is what makes the
    paper's densest settings (about 1100 nodes of degree 35, each with a local view of
    well over a hundred nodes) tractable in pure Python.
    """
    if method == "per-target":
        return {target: first_hops_to(view, target, metric) for target in view.known_targets()}
    if method == "auto":
        primed = view._first_hops.get(metric.cache_token())
        if primed is not None:
            # Batch-primed by prime_first_hops (bit-identical to the scalar dispatch
            # below by the differential suite's lock).  Only the auto dispatch consults
            # this cache, and only the batched kernels populate it: explicit-method
            # calls and scalar runs stay un-cached so the method-comparison tests and
            # the benchmark recorder keep measuring real solver work.
            obs.add("kernel.primed_hits")
            return primed
        obs.add("kernel.scalar_dispatches")
        if metric.kind is MetricKind.ADDITIVE and metric.prefix_optimal:
            method = "owner-dijkstra"
        elif metric.kind is MetricKind.CONCAVE:
            method = "bottleneck-forest"
        else:
            return {
                target: first_hops_to(view, target, metric) for target in view.known_targets()
            }
    if method == "owner-dijkstra":
        if metric.kind is not MetricKind.ADDITIVE or not metric.prefix_optimal:
            raise ValueError(
                "the owner-dijkstra method is only correct for prefix-optimal additive "
                "metrics; use 'per-target' for mixed composites and 'bottleneck-forest' "
                "for concave metrics"
            )
        return _all_first_hops_owner_dijkstra(view, metric)
    if method == "bottleneck-forest":
        if metric.kind is not MetricKind.CONCAVE:
            raise ValueError(
                "the bottleneck-forest method is only correct for concave metrics; "
                "use 'owner-dijkstra' or 'per-target' for additive metrics"
            )
        return _all_first_hops_bottleneck_forest(view, metric)
    raise ValueError(
        f"unknown method {method!r}; use 'auto', 'owner-dijkstra', 'bottleneck-forest' or 'per-target'"
    )


def _all_first_hops_owner_dijkstra(view: LocalView, metric: Metric) -> Dict[NodeId, FirstHopResult]:
    """Single-source computation of every first-hop set (additive metrics only).

    Correctness sketch: for an additive metric every prefix of an optimal path is optimal, so
    a neighbor ``w`` belongs to ``fP(u, x)`` exactly when some optimal path reaches ``x``
    through a chain of *tight* links (links with ``combine(d(p), weight) = d(x)``) starting
    with the direct link ``(u, w)`` being tight.  Propagating first-hop sets across tight
    links until a fixpoint captures precisely those paths.  (This argument fails for concave
    metrics -- an optimal bottleneck path may have suboptimal prefixes -- which is why those
    use :func:`_all_first_hops_bottleneck_forest` instead.)

    First-hop sets are carried as bitmasks over the one-hop neighbors, so the fixpoint
    iteration works on integer or-operations instead of set unions; for the stock additive
    metrics the tight-link test is inlined float arithmetic (see
    :func:`~repro.localview.compactgraph.float_values_equal` for why ``== or isclose`` is
    exact).
    """
    cg = view.compact_graph(metric)
    adj = cg.adj
    owner_idx = cg.index[view.owner]
    one_hop_rows = _one_hop_rows(view, cg)
    distances = best_values(cg, owner_idx, metric)

    # Distances as a flat list; the owner's slot is cleared so the propagation loop can
    # treat "owner" and "unreachable" uniformly as None.
    dist: List[Optional[float]] = [None] * len(adj)
    for node_idx, value in distances.items():
        dist[node_idx] = value
    owner_distance = dist[owner_idx]
    dist[owner_idx] = None

    masks = [0] * len(adj)
    worklist = deque()

    if specialized_kind(metric) == "additive":
        # Tolerant equality inlined as float arithmetic: for non-negative finite values,
        # math.isclose(a, b, rel_tol=r, abs_tol=r) is |a-b| <= max(r*max(a, b), r).
        rel_tol = metric.rel_tol
        for bit, (_, neighbor_idx, link_value) in enumerate(one_hop_rows):
            target_value = dist[neighbor_idx]
            if target_value is None:
                continue
            diff = link_value - target_value
            if diff < 0.0:
                diff = -diff
            larger = link_value if link_value > target_value else target_value
            if diff <= rel_tol * larger or diff <= rel_tol:
                masks[neighbor_idx] |= 1 << bit
                worklist.append(neighbor_idx)
        while worklist:
            node = worklist.popleft()
            node_value = dist[node]
            node_mask = masks[node]
            for successor, link_value in adj[node]:
                successor_value = dist[successor]
                if successor_value is None:
                    continue
                # candidate >= successor_value (label-setting optimality), so the tolerant
                # equality reduces to a one-sided slack test.
                diff = node_value + link_value - successor_value
                if diff > rel_tol and diff > rel_tol * (node_value + link_value):
                    continue
                merged = masks[successor] | node_mask
                if merged != masks[successor]:
                    masks[successor] = merged
                    worklist.append(successor)
    else:
        combine, values_equal = combine_and_equality(metric)
        identity = metric.identity
        for bit, (_, neighbor_idx, link_value) in enumerate(one_hop_rows):
            if dist[neighbor_idx] is None:
                continue
            if values_equal(combine(identity, link_value), dist[neighbor_idx]):
                masks[neighbor_idx] |= 1 << bit
                worklist.append(neighbor_idx)
        while worklist:
            node = worklist.popleft()
            node_value = dist[node]
            node_mask = masks[node]
            for successor, link_value in adj[node]:
                if dist[successor] is None:
                    continue
                if not values_equal(combine(node_value, link_value), dist[successor]):
                    continue
                merged = masks[successor] | node_mask
                if merged != masks[successor]:
                    masks[successor] = merged
                    worklist.append(successor)

    dist[owner_idx] = owner_distance
    bit_owner: List[NodeId] = [neighbor for neighbor, _, __ in one_hop_rows]
    decoded: Dict[int, FrozenSet[NodeId]] = {}  # masks repeat heavily across targets
    results: Dict[NodeId, FirstHopResult] = {}
    index = cg.index
    worst = metric.worst
    for target in view.known_targets():
        target_idx = index.get(target)
        mask = masks[target_idx] if target_idx is not None else 0
        if mask and dist[target_idx] is not None:
            first_hops = decoded.get(mask)
            if first_hops is None:
                first_hops = frozenset(
                    neighbor for bit, neighbor in enumerate(bit_owner) if mask >> bit & 1
                )
                decoded[mask] = first_hops
            results[target] = FirstHopResult(
                target=target,
                best_value=dist[target_idx],
                first_hops=first_hops,
            )
        else:
            results[target] = FirstHopResult(
                target=target, best_value=worst, first_hops=frozenset()
            )
    return results


def _all_first_hops_bottleneck_forest(view: LocalView, metric: Metric) -> Dict[NodeId, FirstHopResult]:
    """Every first-hop set for a concave (bottleneck) metric, via a maximum spanning forest.

    For bottleneck metrics the best value between two nodes of a graph equals the bottleneck
    along their path in any maximum(-bottleneck) spanning forest.  So: take the owner-free
    spanning forest (built with Kruskal over edges sorted best-first and cached per metric
    on the view -- see :meth:`LocalView.bottleneck_forest` -- so only the first run per
    ``(view, metric)`` pays for the sort and union-find), then walk the forest once *per
    one-hop neighbor* (bottleneck values are symmetric, and a node has fewer one-hop
    neighbors than known targets) to obtain ``best(n → target in G \\ {u})`` for every
    target, and combine with the owner's direct links exactly as in :func:`first_hops_to`.
    For the stock concave metrics the inner loops inline ``min`` and the tolerant equality
    (see :func:`~repro.localview.compactgraph.float_values_equal`).
    """
    cg = view.compact_graph(metric)
    node_count = len(cg.adj)
    worst = metric.worst
    if node_count <= 1:
        return {
            target: FirstHopResult(target=target, best_value=worst, first_hops=frozenset())
            for target in view.known_targets()
        }

    forest = view.bottleneck_forest(metric)
    one_hop_rows = _one_hop_rows(view, cg)
    plain = specialized_kind(metric) == "concave"
    identity = metric.identity
    combine, values_equal = combine_and_equality(metric)

    # Bottleneck from each one-hop neighbor to every node of its forest component (the
    # DFS is rooted at the neighbors, not the targets: same forest paths either way).
    reach: List[Tuple[NodeId, int, float, List[object]]] = []
    for neighbor, neighbor_idx, direct in one_hop_rows:
        bottleneck: List[object] = [None] * node_count
        bottleneck[neighbor_idx] = identity
        stack = [neighbor_idx]
        if plain:
            while stack:
                node = stack.pop()
                node_value = bottleneck[node]
                for successor, link_value in forest[node]:
                    if bottleneck[successor] is None:
                        bottleneck[successor] = (
                            link_value if link_value < node_value else node_value
                        )
                        stack.append(successor)
        else:
            while stack:
                node = stack.pop()
                node_value = bottleneck[node]
                for successor, link_value in forest[node]:
                    if bottleneck[successor] is None:
                        bottleneck[successor] = combine(node_value, link_value)
                        stack.append(successor)
        reach.append((neighbor, neighbor_idx, direct, bottleneck))

    results: Dict[NodeId, FirstHopResult] = {}
    index = cg.index
    rel_tol = metric.rel_tol
    isclose = math.isclose
    unreachable = FirstHopResult  # local alias keeps the loop body short
    for target in view.known_targets():
        target_idx = index.get(target)
        if target_idx is None:
            results[target] = unreachable(target=target, best_value=worst, first_hops=frozenset())
            continue

        hops: List[NodeId] = []
        values: List[float] = []
        if plain:
            for neighbor, neighbor_idx, direct, bottleneck in reach:
                if neighbor_idx == target_idx:
                    hops.append(neighbor)
                    values.append(direct)
                    continue
                remainder = bottleneck[target_idx]
                if remainder is None:
                    continue
                hops.append(neighbor)
                values.append(direct if direct < remainder else remainder)
        else:
            for neighbor, neighbor_idx, direct, bottleneck in reach:
                start = combine(identity, direct)
                if neighbor_idx == target_idx:
                    hops.append(neighbor)
                    values.append(start)
                    continue
                remainder = bottleneck[target_idx]
                if remainder is None:
                    continue
                hops.append(neighbor)
                values.append(combine(start, remainder))

        if not hops:
            results[target] = unreachable(target=target, best_value=worst, first_hops=frozenset())
            continue
        best_value = metric.optimum(values)
        if plain:
            first_hops = frozenset(
                neighbor
                for neighbor, value in zip(hops, values)
                if value == best_value
                or isclose(value, best_value, rel_tol=rel_tol, abs_tol=rel_tol)
            )
        else:
            first_hops = frozenset(
                neighbor
                for neighbor, value in zip(hops, values)
                if values_equal(value, best_value)
            )
        results[target] = FirstHopResult(target=target, best_value=best_value, first_hops=first_hops)
    return results


def prime_first_hops(views: Iterable[LocalView], metric: Metric) -> int:
    """Batch-compute auto-method first-hop results for network-graph-backed views.

    The integration point of the batched CSR kernels (:mod:`repro.localview.batched`):
    views attached to a shared :class:`~repro.localview.networkgraph.NetworkGraph` get
    their ``all_first_hops(view, metric)`` result computed for all owners at once and
    cached on the view; the next auto-dispatch call returns it directly.  Views without
    a shared graph (or with one the metric cannot be batched on -- composite metrics,
    missing attributes) are silently left for the scalar path, which the differential
    suite pins bit-identical to the batched one, so callers never need to care which
    path answered.

    Returns the number of views primed (0 when nothing was batchable), which the tests
    use to assert the batched path actually engaged.
    """
    token = metric.cache_token()
    groups: Dict[int, Tuple[object, list]] = {}
    for view in views:
        ng = view._network_graph
        if ng is None or token in view._first_hops:
            continue
        entry = groups.get(id(ng))
        if entry is None:
            entry = (ng, [])
            groups[id(ng)] = entry
        entry[1].append(view)
    if not groups:
        return 0
    from repro.localview.batched import batched_all_first_hops

    primed = 0
    for ng, group in groups.values():
        batch = batched_all_first_hops(ng, group, metric)
        if batch is None:
            continue
        for view in group:
            view._first_hops[token] = batch[view.owner]
            primed += 1
    return primed


# ---------------------------------------------------------------------- legacy networkx core
#
# The pre-compact-graph implementations, kept verbatim so ``benchmarks/record.py`` can
# measure the speedup of the flat-adjacency core against them and so the property tests can
# cross-validate the compact solvers against an independent traversal of the same graphs.


def _best_values_from_nx(
    graph: nx.Graph,
    source: NodeId,
    metric: Metric,
    excluded: Iterable[NodeId] = (),
) -> Dict[NodeId, float]:
    excluded_set = set(excluded)
    if source in excluded_set or source not in graph:
        return {}
    best: Dict[NodeId, float] = {}
    counter = 0  # tie-breaker so heap entries never compare nodes of different types
    heap: List[Tuple[object, int, NodeId, float]] = [
        (metric.sort_key(metric.identity), counter, source, metric.identity)
    ]
    while heap:
        _, __, node, value = heapq.heappop(heap)
        if node in best:
            continue
        best[node] = value
        for neighbor in graph.neighbors(node):
            if neighbor in best or neighbor in excluded_set:
                continue
            link_value = metric.link_value_from_attributes(graph.edges[node, neighbor])
            candidate = metric.combine(value, link_value)
            counter += 1
            heapq.heappush(heap, (metric.sort_key(candidate), counter, neighbor, candidate))
    return best


def _first_hops_to_nx(view: LocalView, target: NodeId, metric: Metric) -> FirstHopResult:
    owner = view.owner
    if target == owner:
        raise ValueError("the owner trivially reaches itself; first hops are undefined")
    if target not in view.graph:
        return FirstHopResult(target=target, best_value=metric.worst, first_hops=frozenset())

    from_target = _best_values_from_nx(view.graph, target, metric, excluded=(owner,))

    candidate_values: Dict[NodeId, float] = {}
    for neighbor in view.one_hop:
        link_value = view.direct_link_value(neighbor, metric)
        if neighbor == target:
            remainder = metric.identity
        elif neighbor in from_target:
            remainder = from_target[neighbor]
        else:
            continue
        path_start = metric.combine(metric.identity, link_value)
        candidate_values[neighbor] = metric.combine(path_start, remainder)

    if not candidate_values:
        return FirstHopResult(target=target, best_value=metric.worst, first_hops=frozenset())

    best_value = metric.optimum(candidate_values.values())
    first_hops = frozenset(
        neighbor
        for neighbor, value in candidate_values.items()
        if metric.values_equal(value, best_value)
    )
    return FirstHopResult(target=target, best_value=best_value, first_hops=first_hops)


def _all_first_hops_owner_dijkstra_nx(view: LocalView, metric: Metric) -> Dict[NodeId, FirstHopResult]:
    owner = view.owner
    graph = view.graph
    distances = _best_values_from_nx(graph, owner, metric)

    first_hops: Dict[NodeId, set] = {node: set() for node in distances}
    worklist = deque()

    for neighbor in view.one_hop:
        if neighbor not in distances:
            continue
        link_value = view.direct_link_value(neighbor, metric)
        direct = metric.combine(metric.identity, link_value)
        if metric.values_equal(direct, distances[neighbor]):
            first_hops[neighbor].add(neighbor)
            worklist.append(neighbor)

    while worklist:
        node = worklist.popleft()
        node_value = distances[node]
        node_hops = first_hops[node]
        for successor in graph.neighbors(node):
            if successor == owner or successor not in distances:
                continue
            link_value = metric.link_value_from_attributes(graph.edges[node, successor])
            if not metric.values_equal(metric.combine(node_value, link_value), distances[successor]):
                continue
            successor_hops = first_hops[successor]
            if not node_hops <= successor_hops:
                successor_hops |= node_hops
                worklist.append(successor)

    results: Dict[NodeId, FirstHopResult] = {}
    for target in view.known_targets():
        if target in distances and first_hops[target]:
            results[target] = FirstHopResult(
                target=target,
                best_value=distances[target],
                first_hops=frozenset(first_hops[target]),
            )
        else:
            results[target] = FirstHopResult(
                target=target, best_value=metric.worst, first_hops=frozenset()
            )
    return results


def _all_first_hops_bottleneck_forest_nx(view: LocalView, metric: Metric) -> Dict[NodeId, FirstHopResult]:
    owner = view.owner
    graph = view.graph
    nodes = [node for node in graph.nodes if node != owner]
    if not nodes:
        return {
            target: FirstHopResult(target=target, best_value=metric.worst, first_hops=frozenset())
            for target in view.known_targets()
        }

    parent: Dict[NodeId, NodeId] = {node: node for node in nodes}

    def find(node: NodeId) -> NodeId:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    edges = []
    for a, b in graph.edges:
        if a == owner or b == owner:
            continue
        value = metric.link_value_from_attributes(graph.edges[a, b])
        edges.append((metric.sort_key(value), a, b, value))
    edges.sort()

    forest: Dict[NodeId, List[Tuple[NodeId, float]]] = {node: [] for node in nodes}
    for _, a, b, value in edges:
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            continue
        parent[root_a] = root_b
        forest[a].append((b, value))
        forest[b].append((a, value))

    one_hop_links = {
        neighbor: view.direct_link_value(neighbor, metric) for neighbor in view.one_hop
    }

    results: Dict[NodeId, FirstHopResult] = {}
    for target in view.known_targets():
        bottleneck: Dict[NodeId, float] = {target: metric.identity}
        stack = [target]
        while stack:
            node = stack.pop()
            node_value = bottleneck[node]
            for neighbor, link_value in forest[node]:
                if neighbor in bottleneck:
                    continue
                bottleneck[neighbor] = metric.combine(node_value, link_value)
                stack.append(neighbor)

        candidates: Dict[NodeId, float] = {}
        for neighbor, direct in one_hop_links.items():
            start = metric.combine(metric.identity, direct)
            if neighbor == target:
                candidates[neighbor] = start
                continue
            remainder = bottleneck.get(neighbor)
            if remainder is None:
                continue
            candidates[neighbor] = metric.combine(start, remainder)

        if not candidates:
            results[target] = FirstHopResult(
                target=target, best_value=metric.worst, first_hops=frozenset()
            )
            continue
        best_value = metric.optimum(candidates.values())
        first_hops = frozenset(
            neighbor
            for neighbor, value in candidates.items()
            if metric.values_equal(value, best_value)
        )
        results[target] = FirstHopResult(target=target, best_value=best_value, first_hops=first_hops)
    return results


# ---------------------------------------------------------------------- enumeration


def enumerate_best_paths(
    graph: nx.Graph,
    source: NodeId,
    target: NodeId,
    metric: Metric,
    max_paths: int = 1000,
) -> List[List[NodeId]]:
    """Enumerate every QoS-optimal *simple* path between two nodes.

    Intended for tests, documentation and the paper's worked examples; complexity is
    exponential in the worst case, hence the ``max_paths`` safety valve (a
    :class:`RuntimeError` is raised when it is exceeded so callers never silently get a
    truncated answer).
    """
    if source not in graph or target not in graph:
        return []
    best_value = best_value_between(graph, source, target, metric)
    if not metric.is_usable(best_value):
        return []

    results: List[List[NodeId]] = []

    def extend(path: List[NodeId], value: float) -> None:
        node = path[-1]
        if node == target:
            if metric.values_equal(value, best_value):
                results.append(list(path))
                if len(results) > max_paths:
                    raise RuntimeError(f"more than {max_paths} optimal paths between {source} and {target}")
            return
        for neighbor in graph.neighbors(node):
            if neighbor in path:
                continue
            link_value = metric.link_value_from_attributes(graph.edges[node, neighbor])
            extended = metric.combine(value, link_value)
            # A prefix can only be extended into an optimal path if it is at least as good as
            # the optimum (path values are monotonically non-improving under extension).
            if metric.is_better_or_equal(extended, best_value):
                extend(path + [neighbor], extended)

    extend([source], metric.identity)
    return sorted(results)


def path_value(graph: nx.Graph, path: Sequence[NodeId], metric: Metric) -> float:
    """The QoS value of an explicit node path evaluated on ``graph``'s true link weights."""
    if len(path) == 0:
        raise ValueError("a path needs at least one node")
    value = metric.identity
    for u, v in zip(path, path[1:]):
        if not graph.has_edge(u, v):
            raise KeyError(f"path uses the non-existent link ({u}, {v})")
        value = metric.combine(value, metric.link_value_from_attributes(graph.edges[u, v]))
    return value
