"""QoS-weighted relative neighborhood graph (RNG) reduction.

The topology-filtering baseline of Moraru & Simplot-Ryl (the paper's reference [7]) first
reduces the local view with a relative neighborhood graph [Toussaint 1980] using the QoS
metric as the weight function, and then advertises the first hops of the best remaining
two-hop paths.  The reduction rule, transposed to QoS weights, is:

    a link (a, b) is removed when some common neighbor c offers a *strictly better* value on
    both legs (a, c) and (c, b) than the direct link (a, b) does.

For bandwidth this removes (a, b) when both replacement legs are wider; for delay when both
are shorter.  Removing such a link never removes the last optimal two-hop detour, which is
why the baseline preserves QoS-optimal two-hop paths while shrinking the advertised set.
"""

from __future__ import annotations

from typing import Set, Tuple

import networkx as nx

from repro.metrics.base import Metric
from repro.utils.ids import NodeId


def qos_rng_reduce(graph: nx.Graph, metric: Metric) -> nx.Graph:
    """Return a copy of ``graph`` with every RNG-dominated link removed.

    The input graph is not modified.  Edge attributes are preserved on the surviving links.
    """
    reduced = graph.copy()
    for a, b in list(graph.edges):
        if _is_dominated(graph, a, b, metric):
            reduced.remove_edge(a, b)
    return reduced


def dominated_links(graph: nx.Graph, metric: Metric) -> Set[Tuple[NodeId, NodeId]]:
    """The set of links the reduction removes (canonically oriented), useful for display."""
    removed: Set[Tuple[NodeId, NodeId]] = set()
    for a, b in graph.edges:
        if _is_dominated(graph, a, b, metric):
            removed.add((a, b) if a <= b else (b, a))
    return removed


def _is_dominated(graph: nx.Graph, a: NodeId, b: NodeId, metric: Metric) -> bool:
    direct = metric.link_value_from_attributes(graph.edges[a, b])
    for witness in set(graph.neighbors(a)) & set(graph.neighbors(b)):
        leg_a = metric.link_value_from_attributes(graph.edges[a, witness])
        leg_b = metric.link_value_from_attributes(graph.edges[witness, b])
        if metric.is_better(leg_a, direct) and metric.is_better(leg_b, direct):
            return True
    return False
