"""Batched numpy solver kernels over the shared network-level CSR.

These kernels compute, for *many owners at once*, exactly what the scalar per-view fast
paths of :mod:`repro.localview.paths` compute for one owner: the auto-method
``all_first_hops`` result.  All owners' two-hop windows are stacked into one flat row
space and solved together with array operations; the scalar code's per-edge Python
interpreter work (heap pushes, dict lookups, tuple unpacking) collapses into a handful
of vectorized passes.

Bit-identity is the design constraint, not an aspiration; the differential suite pins
``SelectionResult`` equality (including tie sets) against the scalar solvers on every
topology it generates.  The arguments:

**Additive kernel** (:func:`_batched_owner_dijkstra`).  The scalar solver is Dijkstra
with plain float addition.  For non-negative weights the float labels it produces are
the unique least fixpoint of ``d[v] = min(seed[v], min over incident (u, v) of
fl(d[u] + w))`` where ``fl`` is one IEEE-754 double addition: every relaxation candidate
is the *fold-left* float sum of some path's weights, float addition of a non-negative
weight is monotone non-decreasing, and the standard Dijkstra optimality induction goes
through verbatim under those two facts.  The batched kernel runs Bellman-Ford-style
Jacobi iteration to that same fixpoint with ``np.minimum.at`` -- each candidate is the
**same single** ``dist[u] + w`` double addition the scalar code performs, and ``min``
over floats is order-independent, so the converged labels are bit-identical whatever
order numpy relaxes edges in.  That *is* the pinned canonical summation order: per-edge
fold-left accumulation, combined only through exact ``min``; no wider intermediate
precision, no pairwise/blocked re-association (which is also why the kernel never uses
``np.add.reduce`` over path weights).  ``tests/test_networkgraph.py`` compares the label
arrays against the scalar solver with ``==``, not ``approx``.

Reachability is tracked in a separate boolean array (the scalar solver encodes
"unvisited" as ``None`` so that a legitimately infinite link weight still counts as
reachable -- a float ``inf`` label alone cannot distinguish the two).

The tight-edge tests reuse the scalar code's exact float expressions: the seed test
``diff <= rel_tol * larger or diff <= rel_tol`` and the one-sided propagation test
``not (diff > rel_tol and diff > rel_tol * candidate)``, evaluated in float64 exactly
as the scalar code evaluates them (NaN from ``inf - inf`` compares False on both sides,
matching the scalar semantics).  First-hop sets propagate as per-owner bitmask lanes
(uint64) or-ed to a fixpoint with ``np.bitwise_or.at``; an or-monotone fixpoint is
unique, so Jacobi iteration reaches exactly the scalar worklist's result.

**Concave kernel** (:func:`_batched_bottleneck_forest`).  Bottleneck values carry no
arithmetic at all -- every value is the exact ``min``/``max`` of actual link weights --
and all maximum-bottleneck spanning forests of a graph give identical pairwise
bottleneck values.  So the kernel may build its per-owner Kruskal forest by filtering
**one shared argsorted edge order** (:meth:`NetworkGraph.sorted_edges`) instead of
re-sorting per view, and relax a ``(max, min)``-semiring fixpoint over the forest with
numpy; the resulting per-(neighbor, target) candidate values equal the scalar solver's
floats bit for bit.  One subtlety survives: ``Metric.optimum`` is a *first-wins* scan
under tolerant comparison, so when several candidate floats are distinct yet within
``rel_tol`` of the maximum, the scalar best value depends on the scan order.  The
kernel detects exactly those (rare) targets vectorially and replays the scalar scan for
them alone; everywhere else the float maximum provably equals the scalar scan's result.

Both kernels return plain Python floats (via ``.tolist()``, an exact bit-preserving
conversion) inside ordinary :class:`FirstHopResult` objects, so downstream consumers
(selection, JSON sinks) never see numpy scalars.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.localview.compactgraph import specialized_kind
from repro.localview.networkgraph import NetworkGraph, row_slots
from repro.localview.paths import FirstHopResult
from repro.metrics.base import Metric, MetricKind
from repro.obs import runtime as obs
from repro.utils.ids import NodeId

_NEG_INF = -math.inf


def batched_all_first_hops(
    ng: NetworkGraph, views: List, metric: Metric
) -> Optional[Dict[NodeId, Dict[NodeId, FirstHopResult]]]:
    """Auto-method ``all_first_hops`` for every view at once, or None when not batchable.

    ``views`` must all be attached to ``ng`` (their declared one-/two-hop sets are then
    windows of its rows by construction).  Returns ``{owner: {target: FirstHopResult}}``
    with exactly the payload the scalar auto dispatch produces, or None when the metric
    is not specialized / lacks an attribute, in which case callers fall back to the
    scalar path (which is trivially bit-identical to itself).

    Telemetry (when enabled): each batched solve counts one
    ``kernel.batched_dispatches`` plus ``kernel.batched_views`` per owner solved; an
    unbatchable combination counts ``kernel.unbatchable_groups`` (its views then surface
    as ``kernel.scalar_dispatches`` when the scalar auto path solves them).
    """
    kind = specialized_kind(metric)
    if kind == "additive" and metric.kind is MetricKind.ADDITIVE and metric.prefix_optimal:
        w_slots = ng.slot_values(metric)
        if w_slots is not None:
            result = _batched_owner_dijkstra(ng, views, metric, w_slots)
            obs.add("kernel.batched_dispatches")
            obs.add("kernel.batched_views", len(views))
            return result
    elif kind == "concave" and metric.kind is MetricKind.CONCAVE:
        if ng.edge_values(metric) is not None:
            result = _batched_bottleneck_forest(ng, views, metric)
            obs.add("kernel.batched_dispatches")
            obs.add("kernel.batched_views", len(views))
            return result
    obs.add("kernel.unbatchable_groups")
    return None


def batched_additive_labels(
    ng: NetworkGraph, owners: List[NodeId], metric: Metric
) -> Optional[Dict[NodeId, Dict[NodeId, float]]]:
    """Owner-rooted additive distance labels over each owner's window, batched.

    The regression surface for the canonical-summation-order guarantee: returns, per
    owner, ``{node: label}`` for every *reached* window node, with labels bit-identical
    to the scalar Dijkstra's (compared with ``==`` in the tests).  None when the metric
    is not batchable.
    """
    kind = specialized_kind(metric)
    if kind != "additive":
        return None
    w_slots = ng.slot_values(metric)
    if w_slots is None:
        return None
    stack = _stack_windows(ng, owners, w_slots)
    dist, reached = _relax_to_fixpoint(stack)
    nodes = ng.nodes
    out: Dict[NodeId, Dict[NodeId, float]] = {}
    for owner, off, members, _deg in stack.meta:
        V = members.size
        dist_l = dist[off : off + V].tolist()
        reach_l = reached[off : off + V].tolist()
        members_l = members.tolist()
        out[owner] = {
            nodes[members_l[i]]: dist_l[i] for i in range(V) if reach_l[i]
        }
    return out


# ---------------------------------------------------------------------- window stacking


class _Stack:
    """All owners' windows concatenated into one flat row space."""

    __slots__ = ("src", "dst", "w", "owner_rows", "meta", "rows")

    def __init__(self, src, dst, w, owner_rows, meta, rows):
        self.src = src  # int64 directed-edge source rows
        self.dst = dst  # int64 directed-edge destination rows
        self.w = w  # float64 directed-edge weights
        self.owner_rows = owner_rows  # int64, one stacked row per owner
        self.meta = meta  # [(owner, offset, members_global, one_hop_count)]
        self.rows = rows  # total stacked row count


def _stack_windows(ng: NetworkGraph, owners: Iterable[NodeId], w_slots) -> _Stack:
    """Cut every owner's two-hop window and stack them with disjoint row offsets.

    Local rows are ``[owner, sorted one-hop, sorted two-hop]``.  Directed edges: every
    slot of the owner's and the one-hop rows (those rows are fully visible in the view),
    plus the reverse direction of slots whose destination is a two-hop member (the
    two-hop row itself is only partially visible, so its in-window directions must be
    mirrored rather than gathered from its own row).
    """
    indptr, indices = ng.indptr, ng.indices
    index = ng.index
    n = len(ng.nodes)
    owners = list(owners)
    N = len(owners)
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)
    if N == 0:
        return _Stack(empty_i, empty_i, empty_f, empty_i, [], 0)
    # The whole stacking runs vectorized over every owner at once.  Per-owner node
    # sets live in an (owner, node) key space of size N*n: membership flags and local
    # row numbers are arrays indexed by ``owner_idx * n + global_node``, so no state
    # needs resetting between owners and every lookup is one fancy index.
    g = np.asarray([index[o] for o in owners], dtype=np.int64)
    deg = indptr[g + 1] - indptr[g]
    rc = deg + 1  # fully-visible rows per owner: the owner plus its one-hop set
    rows_all = np.empty(int(rc.sum()), dtype=np.int64)
    rc_off = np.cumsum(rc) - rc
    rows_all[rc_off] = g
    onemask = np.ones(rows_all.size, dtype=bool)
    onemask[rc_off] = False
    one_slots = np.repeat(indptr[g], deg) + _seg_arange(deg)
    rows_all[onemask] = indices[one_slots]
    owner_of_row = np.repeat(np.arange(N, dtype=np.int64), rc)

    rdeg = indptr[rows_all + 1] - indptr[rows_all]
    slots = np.repeat(indptr[rows_all], rdeg) + _seg_arange(rdeg)
    srcs = np.repeat(rows_all, rdeg)
    dsts = indices[slots]
    edge_owner = np.repeat(owner_of_row, rdeg)

    member2d = np.zeros(N * n, dtype=bool)
    member2d[owner_of_row * n + rows_all] = True
    dst_keys = edge_owner * n + dsts
    in_rows = member2d[dst_keys]
    two2d = np.zeros(N * n, dtype=bool)
    two2d[dst_keys[~in_rows]] = True
    # Keys sort by owner first, node second: the scan yields each owner's two-hop
    # set contiguously and already sorted (global index order == identifier order).
    two_keys = np.flatnonzero(two2d)
    two_owner = two_keys // n
    two_gid = two_keys - two_owner * n
    tc = np.bincount(two_owner, minlength=N).astype(np.int64)

    V = rc + tc
    off = np.cumsum(V) - V  # per-owner row offsets
    rows_total = int(V.sum())
    local2d = np.zeros(N * n, dtype=np.int64)  # owner rows keep local index 0
    local2d[np.repeat(np.arange(N, dtype=np.int64), deg) * n + rows_all[onemask]] = (
        _seg_arange(deg) + 1
    )
    local2d[two_keys] = _seg_arange(tc) + np.repeat(deg + 1, tc)

    ebase = off[edge_owner]
    src_lo = local2d[edge_owner * n + srcs] + ebase
    dst_lo = local2d[dst_keys] + ebase
    w = w_slots[slots]
    rev = ~in_rows  # destination is a two-hop member: mirror the direction
    src_full = np.concatenate((src_lo, dst_lo[rev]))
    dst_full = np.concatenate((dst_lo, src_lo[rev]))
    w_full = np.concatenate((w, w[rev]))

    members_all = np.empty(rows_total, dtype=np.int64)
    members_all[np.repeat(off, rc) + _seg_arange(rc)] = rows_all
    members_all[np.repeat(off + rc, tc) + _seg_arange(tc)] = two_gid
    off_l = off.tolist()
    deg_l = deg.tolist()
    bounds = np.concatenate((off, [rows_total])).tolist()
    meta = [
        (owners[i], off_l[i], members_all[bounds[i] : bounds[i + 1]], deg_l[i])
        for i in range(N)
    ]
    return _Stack(
        src=src_full,
        dst=dst_full,
        w=w_full,
        owner_rows=off,
        meta=meta,
        rows=rows_total,
    )


def _seg_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]-1, 0..counts[1]-1, ...]`` concatenated, as one int64 array."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offs = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(offs, counts)


def _relax_to_fixpoint(stack: _Stack):
    """Additive labels + reachability over the stacked windows (see module docstring).

    Edges are grouped by destination once (a stable argsort) so each Jacobi sweep is a
    gather + one float addition per edge + segmented ``minimum.reduceat`` instead of the
    unbuffered ``np.minimum.at`` scatter.  ``min`` over floats is order-independent, so
    regrouping the candidates changes nothing about the converged labels: every
    candidate is still the same single ``dist[u] + w`` double addition.
    """
    dist = np.full(stack.rows, np.inf, dtype=np.float64)
    reached = np.zeros(stack.rows, dtype=bool)
    if stack.owner_rows.size:
        dist[stack.owner_rows] = 0.0
        reached[stack.owner_rows] = True
    if not stack.src.size:
        return dist, reached
    by_dst = np.argsort(stack.dst, kind="stable")
    src = stack.src[by_dst]
    dst = stack.dst[by_dst]
    w = stack.w[by_dst]
    starts = np.flatnonzero(np.r_[True, dst[1:] != dst[:-1]])
    group_dst = dst[starts]
    if np.isfinite(w).all():
        # All-finite weights: a node is reached exactly when its label is finite, so
        # reachability needs no tracking of its own inside the sweep loop.
        while True:
            cand = dist[src] + w  # the one scalar-identical float addition per edge
            seg_min = np.minimum.reduceat(cand, starts)
            old_dist = dist[group_dst]
            new_dist = np.minimum(old_dist, seg_min)
            if not (new_dist < old_dist).any():
                break
            dist[group_dst] = new_dist
        return dist, np.isfinite(dist) | reached
    while True:
        with np.errstate(invalid="ignore"):
            cand = dist[src] + w  # the one scalar-identical float addition per edge
            seg_min = np.minimum.reduceat(cand, starts)
        seg_reach = np.logical_or.reduceat(reached[src], starts)
        old_dist = dist[group_dst]
        old_reach = reached[group_dst]
        new_dist = np.minimum(old_dist, seg_min)
        changed = (new_dist < old_dist).any() or (seg_reach & ~old_reach).any()
        if not changed:
            break
        dist[group_dst] = new_dist
        reached[group_dst] = old_reach | seg_reach
    return dist, reached


# ---------------------------------------------------------------------- additive kernel


def _batched_owner_dijkstra(
    ng: NetworkGraph, views: List, metric: Metric, w_slots
) -> Dict[NodeId, Dict[NodeId, FirstHopResult]]:
    indptr = ng.indptr
    rel_tol = metric.rel_tol
    worst = metric.worst
    nodes = ng.nodes
    index = ng.index
    stack = _stack_windows(ng, [view.owner for view in views], w_slots)
    dist, reached = _relax_to_fixpoint(stack)

    # Seed bits: the direct link (owner, n_i) is tight for bit i exactly per the scalar
    # seed test.  Bit i = the i-th *sorted* one-hop neighbor (CSR rows are sorted); the
    # scalar code numbers bits in frozenset-iteration order instead, but decoded
    # first-hop *sets* are bit-order independent.
    lanes = 1
    for _owner, _off, _members, deg in stack.meta:
        lanes = max(lanes, (deg + 63) // 64)
    masks = np.zeros((stack.rows, lanes), dtype=np.uint64)
    s_rows_parts: List[np.ndarray] = []
    s_bits_parts: List[np.ndarray] = []
    s_links_parts: List[np.ndarray] = []
    for owner, off, _members, deg in stack.meta:
        if deg == 0:
            continue
        g = index[owner]
        s_rows_parts.append(np.arange(off + 1, off + 1 + deg, dtype=np.int64))
        s_bits_parts.append(np.arange(deg, dtype=np.int64))
        s_links_parts.append(w_slots[indptr[g] : indptr[g] + deg])
    if s_rows_parts:
        s_rows = np.concatenate(s_rows_parts)
        s_bits = np.concatenate(s_bits_parts)
        s_links = np.concatenate(s_links_parts)
        d = dist[s_rows]
        with np.errstate(invalid="ignore"):
            diff = np.abs(s_links - d)
            larger = np.maximum(s_links, d)
            tight = reached[s_rows] & ((diff <= rel_tol * larger) | (diff <= rel_tol))
        r = s_rows[tight]
        b = s_bits[tight]
        np.bitwise_or.at(
            masks, (r, b >> 6), np.uint64(1) << (b & 63).astype(np.uint64)
        )

    # Tight propagation edges: both endpoints reached, neither the owner row, and the
    # scalar one-sided slack test does not reject (NaN comparisons are False, matching
    # the scalar inf-label semantics).
    src, dst, w = stack.src, stack.dst, stack.w
    if src.size:
        is_owner = np.zeros(stack.rows, dtype=bool)
        is_owner[stack.owner_rows] = True
        usable = reached[src] & reached[dst] & ~is_owner[src] & ~is_owner[dst]
        u_src = src[usable]
        u_dst = dst[usable]
        with np.errstate(invalid="ignore"):
            cand = dist[u_src] + w[usable]
            diff = cand - dist[u_dst]
            skip = (diff > rel_tol) & (diff > rel_tol * cand)
        t_src = u_src[~skip]
        t_dst = u_dst[~skip]
        if t_src.size:
            # Group the (fixed) tight-edge set by destination once; each sweep is a
            # gather + segmented or.reduceat (an or-monotone fixpoint is unique, so the
            # sweep schedule cannot change the converged masks).
            by_dst = np.argsort(t_dst, kind="stable")
            t_src = t_src[by_dst]
            t_dst = t_dst[by_dst]
            t_starts = np.flatnonzero(np.r_[True, t_dst[1:] != t_dst[:-1]])
            t_group = t_dst[t_starts]
            while True:
                seg_or = np.bitwise_or.reduceat(masks[t_src], t_starts, axis=0)
                old = masks[t_group]
                new = old | seg_or
                if (new == old).all():
                    break
                masks[t_group] = new

    # Decode per owner, in known_targets() (sorted-identifier) order.  Global index
    # order == identifier order, so merge-sorting each view's (individually sorted)
    # one- and two-hop blocks reproduces known_targets() exactly; one argsort over
    # view-segregated keys replaces a per-view argsort call.
    n = len(nodes)
    counts = [members.size - 1 for (_o, _off, members, _d) in stack.meta]
    if stack.meta:
        keys = np.concatenate(
            [
                members[1:] + i * n
                for i, (_o, _off, members, _d) in enumerate(stack.meta)
            ]
        )
        order_all = np.argsort(keys, kind="stable").tolist()
    else:
        order_all = []
    results: Dict[NodeId, Dict[NodeId, FirstHopResult]] = {}
    block = 0
    for view, (owner, off, members, deg), count in zip(views, stack.meta, counts):
        V = members.size
        dist_l = dist[off : off + V].tolist()
        reach_l = reached[off : off + V].tolist()
        mask_l = _combine_lanes(masks[off : off + V], lanes)
        members_l = members.tolist()
        bit_owner = [nodes[g] for g in members_l[1 : deg + 1]]
        decoded: Dict[int, frozenset] = {}
        res: Dict[NodeId, FirstHopResult] = {}
        for p in order_all[block : block + count]:
            li = p - block + 1
            target = nodes[members_l[li]]
            m = mask_l[li]
            if m and reach_l[li]:
                fh = decoded.get(m)
                if fh is None:
                    sel = []
                    mm = m
                    while mm:
                        low = mm & -mm
                        sel.append(bit_owner[low.bit_length() - 1])
                        mm ^= low
                    fh = frozenset(sel)
                    decoded[m] = fh
                res[target] = FirstHopResult(
                    target=target, best_value=dist_l[li], first_hops=fh
                )
            else:
                res[target] = FirstHopResult(
                    target=target, best_value=worst, first_hops=frozenset()
                )
        block += count
        results[view.owner] = res
    return results


def _combine_lanes(rows: np.ndarray, lanes: int) -> List[int]:
    """uint64 lane matrix -> per-row Python int bitmasks."""
    combined = rows[:, 0].tolist()
    for lane in range(1, lanes):
        shift = 64 * lane
        combined = [m | (c << shift) for m, c in zip(combined, rows[:, lane].tolist())]
    return combined


# ---------------------------------------------------------------------- concave kernel


def _batched_bottleneck_forest(
    ng: NetworkGraph, views: List, metric: Metric
) -> Dict[NodeId, Dict[NodeId, FirstHopResult]]:
    indptr, indices, slot_edge = ng.indptr, ng.indices, ng.slot_edge
    index = ng.index
    nodes = ng.nodes
    w_edges = ng.edge_values(metric)
    w_slots = ng.slot_values(metric)
    order = ng.sorted_edges(metric)
    edge_u, edge_v = ng.edge_u, ng.edge_v
    n = len(nodes)
    m = int(w_edges.size)
    rel_tol = metric.rel_tol
    worst = metric.worst
    isclose = math.isclose
    visible = np.zeros(m, dtype=bool)
    member = np.zeros(n, dtype=bool)
    local = np.zeros(n, dtype=np.int64)
    results: Dict[NodeId, Dict[NodeId, FirstHopResult]] = {}
    for view in views:
        g = index[view.owner]
        one = indices[indptr[g] : indptr[g + 1]]
        deg = int(one.size)
        res: Dict[NodeId, FirstHopResult] = {}
        if deg == 0:
            # An isolated owner: every known target (normally none) is unreachable.
            for target in view.known_targets():
                res[target] = FirstHopResult(
                    target=target, best_value=worst, first_hops=frozenset()
                )
            results[view.owner] = res
            continue
        slots, _ = row_slots(indptr, one)
        dsts = indices[slots]
        keep = dsts != g  # owner-free: drop the back-links to the owner
        dsts_k = dsts[keep]
        # Sorted unique two-hop members via a flag scan (global index order ==
        # identifier order): mark every owner-free destination, unmark the one-hop
        # rows, and what is left is exactly the two-hop set, already sorted.
        member[dsts_k] = True
        member[one] = False
        two = np.flatnonzero(member)
        member[two] = False
        local[one] = np.arange(deg, dtype=np.int64)
        local[two] = np.arange(deg, deg + two.size, dtype=np.int64)
        V = deg + int(two.size)

        # Kruskal over the shared best-first order, filtered to this view's visible
        # owner-free edges (every such edge has >= 1 endpoint among the one-hop rows).
        eids = slot_edge[slots[keep]]
        visible[eids] = True
        vis_sorted = order[visible[order]]
        lu = local[edge_u[vis_sorted]].tolist()
        lv = local[edge_v[vis_sorted]].tolist()
        lw = w_edges[vis_sorted].tolist()
        visible[eids] = False
        # Kruskal with a merge ("reconstruction") tree: leaves are the V window-local
        # nodes; each accepted edge appends an internal node carrying the edge's weight.
        # Edges arrive best-first, so the accepted edge is the *worst* link on the
        # (unique) forest path between the two merged components -- the bottleneck
        # between any two leaves is therefore exactly the weight of their lowest common
        # ancestor in this tree (an exact link weight, no arithmetic, so the values
        # equal the scalar forest-DFS floats bit for bit).  Leaves carry the metric
        # identity (+inf): the neighbor-is-target diagonal falls out automatically.
        # Union-find with direct root pointers and small-to-large relabeling: the
        # accept/reject test per edge is two list lookups, and relabel work totals
        # O(V log V) per view.  Connectivity (and hence the accepted edge sequence
        # and the merge tree) is identical to any other union-find schedule.
        parent = list(range(V))  # node -> its component's current root, always direct
        comp_members: List[Optional[List[int]]] = [[i] for i in range(V)]
        comp_tree = list(range(V))  # component root -> its current merge-tree node
        tparent: List[int] = list(range(V))
        tweight: List[float] = [math.inf] * V
        accepted = 0
        limit = V - 1
        for a, b, value in zip(lu, lv, lw):
            ra = parent[a]
            rb = parent[b]
            if ra == rb:
                continue
            ma = comp_members[ra]
            mb = comp_members[rb]
            if len(ma) > len(mb):
                ra, rb = rb, ra
                ma, mb = mb, ma
            for x in ma:
                parent[x] = rb
            mb.extend(ma)
            comp_members[ra] = None
            t = len(tparent)
            tparent.append(t)
            tweight.append(value)
            tparent[comp_tree[ra]] = t
            tparent[comp_tree[rb]] = t
            comp_tree[rb] = t
            accepted += 1
            if accepted == limit:
                break

        # B[t, i] = bottleneck of the forest path from one-hop neighbor i to node t
        # (-inf = unreachable, +inf on the diagonal), as the LCA weight in the merge
        # tree, computed for all (target, neighbor) pairs at once by binary lifting.
        T = len(tparent)
        up0 = np.asarray(tparent, dtype=np.int64)
        tw = np.asarray(tweight, dtype=np.float64)
        # Internal nodes are appended after their children, so every non-root parent id
        # exceeds the child's: one descending pass settles depths.
        depth_l = [0] * T
        maxd = 0
        for x in range(T - 1, -1, -1):
            p = tparent[x]
            if p != x:
                d = depth_l[p] + 1
                depth_l[x] = d
                if d > maxd:
                    maxd = d
        depth = np.asarray(depth_l, dtype=np.int64)
        # Lifts of up to 2^ceil(log2(maxd)) reach any ancestor: both the depth
        # equalization (jumps <= maxd) and the descent start at most maxd below root.
        levels = max(1, maxd.bit_length())
        ups = [up0]
        for _ in range(1, levels):
            ups.append(ups[-1][ups[-1]])
        # Both endpoints ride one (2, V, deg) array so every lifting step is a single
        # fancy-index + where instead of two.
        t = np.empty((2, V, deg), dtype=np.int64)
        t[0] = np.arange(V, dtype=np.int64)[:, None]
        t[1] = np.arange(deg, dtype=np.int64)[None, :]
        diff = depth[t[0]] - depth[t[1]]
        amt = np.empty((2, V, deg), dtype=np.int64)
        np.maximum(diff, 0, out=amt[0])  # lift the deeper endpoint by |depth gap|
        np.maximum(-diff, 0, out=amt[1])
        for k in range(levels):
            t = np.where((amt & (1 << k)) != 0, ups[k][t], t)
        for k in range(levels - 1, -1, -1):
            u = ups[k][t]
            t = np.where(u[0] != u[1], u, t)
        ta, tb = t[0], t[1]
        same = ta == tb
        lca = np.where(same, ta, up0[ta])
        connected = same | (up0[ta] == up0[tb])
        B = np.where(connected, tw[lca], _NEG_INF)
        diag = np.arange(deg)

        direct = w_slots[indptr[g] : indptr[g] + deg]  # owner row, sorted-neighbor order
        M = np.minimum(B, direct[None, :])
        M[diag, diag] = direct  # neighbor == target: the direct link, no bottleneck leg
        best = M.max(axis=1)
        best_col = best[:, None]
        with np.errstate(invalid="ignore"):
            finite = np.isfinite(M) & np.isfinite(best_col)
            close = np.abs(M - best_col) <= np.maximum(
                rel_tol * np.maximum(np.abs(M), np.abs(best_col)), rel_tol
            )
        eqmask = (M == best_col) | (finite & close)
        # A candidate that is a *different float* from the maximum yet within tolerance
        # makes Metric.optimum's first-wins scan order-dependent: replay the scalar scan
        # for exactly those targets.
        rare = (eqmask & (M != best_col)).any(axis=1)

        members = np.concatenate((one, two))
        members_l = members.tolist()
        order_t = np.argsort(members, kind="stable").tolist() if V else []
        best_l = best.tolist()
        rare_l = rare.tolist()
        one_nodes = [nodes[i] for i in members_l[:deg]]
        # One nonzero pass over the whole (V, deg) tie mask; per-target column runs
        # are then plain list slices (eq_rows comes out row-major, i.e. sorted).
        eq_rows, eq_cols = np.nonzero(eqmask)
        row_bounds = np.searchsorted(eq_rows, np.arange(V + 1)).tolist()
        eq_cols_l = eq_cols.tolist()
        decoded: Dict[tuple, frozenset] = {}  # tie columns -> first-hop set, per view
        col_of = None
        for p in order_t:
            target = nodes[members_l[p]]
            b_val = best_l[p]
            if b_val == _NEG_INF:
                res[target] = FirstHopResult(
                    target=target, best_value=worst, first_hops=frozenset()
                )
            elif rare_l[p]:
                if col_of is None:
                    col_of = {node: c for c, node in enumerate(one_nodes)}
                row = M[p].tolist()
                hops: List[NodeId] = []
                values: List[float] = []
                for neighbor in view.one_hop:  # the scalar scan order
                    value = row[col_of[neighbor]]
                    if value == _NEG_INF:
                        continue
                    hops.append(neighbor)
                    values.append(value)
                b_val = metric.optimum(values)
                fh = frozenset(
                    neighbor
                    for neighbor, value in zip(hops, values)
                    if value == b_val
                    or isclose(value, b_val, rel_tol=rel_tol, abs_tol=rel_tol)
                )
                res[target] = FirstHopResult(target=target, best_value=b_val, first_hops=fh)
            else:
                key = tuple(eq_cols_l[row_bounds[p] : row_bounds[p + 1]])
                fh = decoded.get(key)
                if fh is None:
                    fh = frozenset(one_nodes[c] for c in key)
                    decoded[key] = fh
                res[target] = FirstHopResult(target=target, best_value=b_val, first_hops=fh)
        results[view.owner] = res
    return results
