"""Neighbor and two-hop neighbor tables, populated from HELLO messages.

Each entry carries an expiry time so that the discrete-event simulation behaves correctly
when nodes disappear (entries simply age out); the static graph-level experiments never
expire anything because they query the converged state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.olsr.messages import HelloMessage
from repro.utils.ids import NodeId


@dataclass
class NeighborEntry:
    """State kept about one symmetric one-hop neighbor."""

    neighbor: NodeId
    weights: Dict[str, float]
    expires_at: float = math.inf
    is_mpr_selector: bool = False
    """True when the neighbor's last HELLO declared this node as one of its MPRs."""


@dataclass
class TwoHopEntry:
    """State kept about one link (neighbor -> two-hop neighbor) reported in a HELLO."""

    neighbor: NodeId
    two_hop: NodeId
    weights: Dict[str, float]
    expires_at: float = math.inf


class NeighborTable:
    """The owner's knowledge of its one- and two-hop neighborhood."""

    def __init__(self, owner: NodeId):
        self.owner = owner
        self._neighbors: Dict[NodeId, NeighborEntry] = {}
        self._two_hop: Dict[tuple[NodeId, NodeId], TwoHopEntry] = {}

    # ------------------------------------------------------------------ updates

    def record_link(
        self,
        neighbor: NodeId,
        weights: Mapping[str, float],
        expires_at: float = math.inf,
        is_mpr_selector: Optional[bool] = None,
    ) -> None:
        """Record (or refresh) the direct link to ``neighbor``."""
        entry = self._neighbors.get(neighbor)
        if entry is None:
            entry = NeighborEntry(neighbor=neighbor, weights=dict(weights), expires_at=expires_at)
            self._neighbors[neighbor] = entry
        else:
            entry.weights = dict(weights)
            entry.expires_at = max(entry.expires_at, expires_at) if math.isfinite(entry.expires_at) else expires_at
        if is_mpr_selector is not None:
            entry.is_mpr_selector = is_mpr_selector

    def update_from_hello(
        self,
        hello: HelloMessage,
        link_weights: Mapping[str, float],
        now: float = 0.0,
        hold_time: float = math.inf,
    ) -> None:
        """Process a HELLO heard directly from a neighbor.

        ``link_weights`` are the receiver's own measurement of the link to the HELLO's
        originator (QoS measurement is out of the paper's scope; the simulation reads the
        ground-truth weights from the topology).
        """
        originator = hello.originator
        if originator == self.owner:
            return
        expires = now + hold_time if math.isfinite(hold_time) else math.inf
        self.record_link(
            originator,
            link_weights,
            expires_at=expires,
            is_mpr_selector=hello.declares_mpr(self.owner),
        )
        # Refresh the two-hop entries reported by this originator (replacing earlier ones).
        self._two_hop = {
            key: entry for key, entry in self._two_hop.items() if key[0] != originator
        }
        for report in hello.links:
            if report.neighbor == self.owner:
                continue
            self._two_hop[(originator, report.neighbor)] = TwoHopEntry(
                neighbor=originator,
                two_hop=report.neighbor,
                weights=dict(report.weights),
                expires_at=expires,
            )

    def expire(self, now: float) -> None:
        """Drop every entry whose validity time has passed."""
        self._neighbors = {
            node: entry for node, entry in self._neighbors.items() if entry.expires_at > now
        }
        self._two_hop = {
            key: entry
            for key, entry in self._two_hop.items()
            if entry.expires_at > now and key[0] in self._neighbors
        }

    # ------------------------------------------------------------------ queries

    def neighbors(self) -> FrozenSet[NodeId]:
        return frozenset(self._neighbors)

    def neighbor_weights(self, neighbor: NodeId) -> Dict[str, float]:
        return dict(self._neighbors[neighbor].weights)

    def mpr_selectors(self) -> FrozenSet[NodeId]:
        """Neighbors whose last HELLO declared this node as an MPR."""
        return frozenset(
            node for node, entry in self._neighbors.items() if entry.is_mpr_selector
        )

    def two_hop_neighbors(self) -> FrozenSet[NodeId]:
        """Strict two-hop neighbors (excluding the owner and its one-hop neighbors)."""
        one_hop = self.neighbors()
        return frozenset(
            entry.two_hop
            for entry in self._two_hop.values()
            if entry.two_hop != self.owner and entry.two_hop not in one_hop
        )

    def neighbor_link_table(self) -> Dict[NodeId, Dict[str, float]]:
        """``{neighbor: link weights}`` -- the first argument of :meth:`LocalView.from_tables`."""
        return {node: dict(entry.weights) for node, entry in self._neighbors.items()}

    def two_hop_link_table(self) -> Dict[NodeId, Dict[NodeId, Dict[str, float]]]:
        """``{neighbor: {reported neighbor: link weights}}`` for :meth:`LocalView.from_tables`."""
        table: Dict[NodeId, Dict[NodeId, Dict[str, float]]] = {}
        for (neighbor, two_hop), entry in self._two_hop.items():
            table.setdefault(neighbor, {})[two_hop] = dict(entry.weights)
        return table

    def __len__(self) -> int:
        return len(self._neighbors)
