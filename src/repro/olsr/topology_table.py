"""Topology table, populated from flooded TC messages.

Each TC from an originator ``o`` advertises links ``(o, s)`` towards the nodes ``s`` that
selected ``o`` (its advertised/MPR selectors), together with their QoS in the QOLSR
extension.  The union of the freshest such announcements is the partial topology every node
routes on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import networkx as nx

from repro.olsr.messages import TcMessage
from repro.utils.ids import NodeId


@dataclass
class TopologyEntry:
    """One advertised link: originator -> selector, with its QoS weights and freshness."""

    originator: NodeId
    selector: NodeId
    weights: Dict[str, float]
    ansn: int
    expires_at: float = math.inf


class TopologyTable:
    """A node's TC-learned view of the rest of the network."""

    def __init__(self, owner: NodeId):
        self.owner = owner
        self._entries: Dict[Tuple[NodeId, NodeId], TopologyEntry] = {}
        self._latest_ansn: Dict[NodeId, int] = {}

    # ------------------------------------------------------------------ updates

    def update_from_tc(self, tc: TcMessage, now: float = 0.0, hold_time: float = math.inf) -> bool:
        """Process a TC message.  Returns False when it was stale and ignored."""
        latest = self._latest_ansn.get(tc.originator)
        if latest is not None and tc.ansn < latest:
            return False
        if latest is None or tc.ansn > latest:
            # Newer announcement: forget everything previously advertised by this originator.
            self._entries = {
                key: entry for key, entry in self._entries.items() if key[0] != tc.originator
            }
            self._latest_ansn[tc.originator] = tc.ansn
        expires = now + hold_time if math.isfinite(hold_time) else math.inf
        for link in tc.advertised:
            self._entries[(tc.originator, link.selector)] = TopologyEntry(
                originator=tc.originator,
                selector=link.selector,
                weights=dict(link.weights),
                ansn=tc.ansn,
                expires_at=expires,
            )
        return True

    def expire(self, now: float) -> None:
        """Drop entries whose validity time has passed."""
        self._entries = {key: entry for key, entry in self._entries.items() if entry.expires_at > now}

    # ------------------------------------------------------------------ queries

    def entries(self) -> Iterable[TopologyEntry]:
        return list(self._entries.values())

    def advertised_links(self) -> Dict[Tuple[NodeId, NodeId], Dict[str, float]]:
        """Every advertised link (undirected canonical orientation) with its weights."""
        links: Dict[Tuple[NodeId, NodeId], Dict[str, float]] = {}
        for entry in self._entries.values():
            key = (
                (entry.originator, entry.selector)
                if entry.originator <= entry.selector
                else (entry.selector, entry.originator)
            )
            links[key] = dict(entry.weights)
        return links

    def as_graph(self) -> nx.Graph:
        """The advertised topology as a weighted graph (used for routing-table computation)."""
        graph = nx.Graph()
        for (u, v), weights in self.advertised_links().items():
            graph.add_edge(u, v, **weights)
        return graph

    def __len__(self) -> int:
        return len(self._entries)
