"""Duplicate detection for flooded messages (RFC 3626's duplicate set).

A node must process and retransmit each flooded message at most once; the duplicate set
remembers (originator, sequence number) pairs it has already considered, with an expiry so
the memory does not grow without bound in long simulations.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.utils.ids import NodeId


class DuplicateSet:
    """Remembers which flooded messages have already been processed / retransmitted."""

    def __init__(self) -> None:
        self._seen: Dict[Tuple[NodeId, int], float] = {}
        self._retransmitted: Dict[Tuple[NodeId, int], float] = {}

    def already_processed(self, originator: NodeId, sequence_number: int) -> bool:
        return (originator, sequence_number) in self._seen

    def mark_processed(
        self, originator: NodeId, sequence_number: int, expires_at: float = math.inf
    ) -> None:
        self._seen[(originator, sequence_number)] = expires_at

    def already_retransmitted(self, originator: NodeId, sequence_number: int) -> bool:
        return (originator, sequence_number) in self._retransmitted

    def mark_retransmitted(
        self, originator: NodeId, sequence_number: int, expires_at: float = math.inf
    ) -> None:
        self._retransmitted[(originator, sequence_number)] = expires_at

    def expire(self, now: float) -> None:
        self._seen = {key: expiry for key, expiry in self._seen.items() if expiry > now}
        self._retransmitted = {
            key: expiry for key, expiry in self._retransmitted.items() if expiry > now
        }

    def __len__(self) -> int:
        return len(self._seen)
