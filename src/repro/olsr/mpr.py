"""RFC 3626 multipoint-relay (MPR) selection.

The classical OLSR heuristic, metric-blind by design: it only cares about covering the whole
two-hop neighborhood with as few one-hop neighbors as possible.

1. Start with an empty MPR set; only strict two-hop neighbors reachable through a one-hop
   neighbor need covering.
2. Add every one-hop neighbor that is the *only* one covering some two-hop neighbor (the
   paper's related-work section cites [3]: roughly 75 % of MPRs are selected here).
3. While some two-hop neighbor is uncovered, greedily add the one-hop neighbor covering the
   most still-uncovered two-hop neighbors, breaking ties by higher degree then by smaller
   identifier.

Both FNBP and the topology-filtering baseline keep this set for TC flooding and add their
QoS-aware ANS on top of it, following Moraru & Simplot-Ryl's split between flooding and
routing sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.localview.view import LocalView
from repro.utils.ids import NodeId


def coverage_map(view: LocalView) -> Dict[NodeId, Set[NodeId]]:
    """For each one-hop neighbor, the set of strict two-hop neighbors it covers."""
    return {
        neighbor: view.neighbors_of(neighbor) & view.two_hop
        for neighbor in view.one_hop
    }


def rfc3626_mpr(view: LocalView) -> FrozenSet[NodeId]:
    """Compute the RFC 3626 greedy MPR set for the owner of ``view``."""
    cover = coverage_map(view)
    uncovered: Set[NodeId] = set().union(*cover.values()) if cover else set()
    mpr: Set[NodeId] = set()

    # Phase 1: neighbors that are the sole cover of some two-hop neighbor.
    for two_hop in sorted(uncovered):
        providers = [neighbor for neighbor, covered in cover.items() if two_hop in covered]
        if len(providers) == 1:
            mpr.add(providers[0])
    for neighbor in mpr:
        uncovered -= cover[neighbor]

    # Phase 2: greedy coverage of the remainder.
    while uncovered:
        best = max(
            (neighbor for neighbor in view.one_hop if neighbor not in mpr),
            key=lambda neighbor: (
                len(cover[neighbor] & uncovered),
                len(view.neighbors_of(neighbor)),
                -neighbor,
            ),
        )
        gained = cover[best] & uncovered
        if not gained:
            # Remaining two-hop neighbors are not coverable (inconsistent tables); stop
            # rather than loop forever.
            break
        mpr.add(best)
        uncovered -= gained

    return frozenset(mpr)


def mpr_selectors(mpr_sets: Dict[NodeId, FrozenSet[NodeId]]) -> Dict[NodeId, FrozenSet[NodeId]]:
    """Invert per-node MPR sets into per-node MPR-selector sets.

    ``mpr_selectors(sets)[m]`` is the set of nodes that chose ``m`` as an MPR -- the set a
    real OLSR node advertises in its TC messages.
    """
    selectors: Dict[NodeId, Set[NodeId]] = {}
    for node, selected in mpr_sets.items():
        for relay in selected:
            selectors.setdefault(relay, set()).add(node)
    return {node: frozenset(chosen_by) for node, chosen_by in selectors.items()}
