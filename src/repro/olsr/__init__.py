"""The OLSR protocol substrate: messages, tables, MPR selection and the node state machine."""

from repro.olsr import constants
from repro.olsr.duplicate_set import DuplicateSet
from repro.olsr.messages import (
    AdvertisedLink,
    DataPacket,
    HelloMessage,
    LinkReport,
    Packet,
    TcMessage,
    next_sequence_number,
)
from repro.olsr.mpr import coverage_map, mpr_selectors, rfc3626_mpr
from repro.olsr.neighbor_table import NeighborEntry, NeighborTable, TwoHopEntry
from repro.olsr.node import NodeStatistics, OlsrNode
from repro.olsr.routing_table import RouteEntry, RoutingTable
from repro.olsr.topology_table import TopologyEntry, TopologyTable

__all__ = [
    "constants",
    "HelloMessage",
    "TcMessage",
    "DataPacket",
    "Packet",
    "LinkReport",
    "AdvertisedLink",
    "next_sequence_number",
    "rfc3626_mpr",
    "coverage_map",
    "mpr_selectors",
    "NeighborTable",
    "NeighborEntry",
    "TwoHopEntry",
    "TopologyTable",
    "TopologyEntry",
    "DuplicateSet",
    "RoutingTable",
    "RouteEntry",
    "OlsrNode",
    "NodeStatistics",
]
