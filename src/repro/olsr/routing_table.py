"""Per-node routing-table computation.

An OLSR node computes next hops from what it knows: its own links (neighbor table) plus the
TC-learned advertised topology.  The original protocol uses hop count; the QoS variants use
the QoS metric, which is what this implementation does -- it is the in-protocol counterpart
of :class:`repro.routing.hop_by_hop.HopByHopRouter` and the simulator's nodes use it to
forward data packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import networkx as nx

from repro.localview.compactgraph import CompactGraph
from repro.localview.paths import best_values_from
from repro.metrics.base import Metric
from repro.metrics.ordering import preferred_neighbor
from repro.olsr.neighbor_table import NeighborTable
from repro.olsr.topology_table import TopologyTable
from repro.utils.ids import NodeId


@dataclass(frozen=True)
class RouteEntry:
    """One routing-table row: destination, chosen next hop and the expected path value."""

    destination: NodeId
    next_hop: NodeId
    expected_value: float


class RoutingTable:
    """Next-hop table computed from the node's own knowledge."""

    def __init__(self, owner: NodeId, metric: Metric):
        self.owner = owner
        self.metric = metric
        self._routes: Dict[NodeId, RouteEntry] = {}

    # ------------------------------------------------------------------ computation

    def recompute(self, neighbors: NeighborTable, topology: TopologyTable) -> None:
        """Rebuild the table from the current neighbor and topology tables."""
        metric = self.metric
        owner = self.owner
        knowledge = self._knowledge_graph(neighbors, topology)
        self._routes = {}

        destinations = [node for node in knowledge.nodes if node != owner]
        if not destinations:
            return

        # One flat snapshot serves every per-destination solve (excluded nodes are handled
        # at solver level); heterogeneous tables whose merged links miss the metric's
        # attribute fall back to the lazy networkx traversal.
        compact = CompactGraph.try_from_networkx(knowledge, metric)
        solver_graph = compact if compact is not None else knowledge
        for destination in destinations:
            entry = self._best_next_hop(knowledge, solver_graph, neighbors, destination)
            if entry is not None:
                self._routes[destination] = entry

    def _knowledge_graph(self, neighbors: NeighborTable, topology: TopologyTable) -> nx.Graph:
        graph = topology.as_graph()
        graph.add_node(self.owner)
        for neighbor, weights in neighbors.neighbor_link_table().items():
            graph.add_edge(self.owner, neighbor, **weights)
        # Two-hop reports give additional usable links around the owner.
        for neighbor, reported in neighbors.two_hop_link_table().items():
            for other, weights in reported.items():
                if not graph.has_edge(neighbor, other):
                    graph.add_edge(neighbor, other, **weights)
        return graph

    def _best_next_hop(
        self,
        knowledge: nx.Graph,
        solver_graph,
        neighbors: NeighborTable,
        destination: NodeId,
    ) -> Optional[RouteEntry]:
        metric = self.metric
        owner = self.owner
        one_hop = neighbors.neighbors()
        if destination in one_hop and knowledge.has_edge(owner, destination):
            direct_value = metric.link_value_from_attributes(knowledge.edges[owner, destination])
        else:
            direct_value = None

        from_destination = best_values_from(solver_graph, destination, metric, excluded=(owner,))
        hops_from_destination = self._hop_distances(knowledge, destination)
        candidates: Dict[NodeId, tuple[float, float]] = {}
        for neighbor in one_hop:
            if not knowledge.has_edge(owner, neighbor):
                continue
            link_value = metric.link_value_from_attributes(knowledge.edges[owner, neighbor])
            start = metric.combine(metric.identity, link_value)
            if neighbor == destination:
                candidates[neighbor] = (start, 1.0)
                continue
            remainder = from_destination.get(neighbor)
            if remainder is None:
                continue
            hop_estimate = 1.0 + hops_from_destination.get(neighbor, float("inf"))
            candidates[neighbor] = (metric.combine(start, remainder), hop_estimate)

        if not candidates:
            return None
        best_value = metric.optimum(value for value, _ in candidates.values())
        if not metric.is_usable(best_value):
            return None
        # Among the QoS-optimal next hops keep the hop-shortest ones (bottleneck metrics tie
        # often; preferring hop progress keeps independent per-node decisions consistent),
        # then apply the paper's preference order.
        best_neighbors = {
            neighbor: hops
            for neighbor, (value, hops) in candidates.items()
            if metric.values_equal(value, best_value)
        }
        fewest_hops = min(best_neighbors.values())
        shortlist = [neighbor for neighbor, hops in best_neighbors.items() if hops == fewest_hops]
        chosen = preferred_neighbor(
            shortlist,
            metric,
            lambda neighbor: metric.link_value_from_attributes(knowledge.edges[owner, neighbor]),
        )
        return RouteEntry(destination=destination, next_hop=chosen, expected_value=best_value)

    def _hop_distances(self, knowledge: nx.Graph, destination: NodeId) -> Dict[NodeId, float]:
        """BFS hop distances from the destination over the knowledge graph minus the owner."""
        distances: Dict[NodeId, float] = {destination: 0.0}
        frontier = [destination]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in knowledge.neighbors(node):
                    if neighbor == self.owner or neighbor in distances:
                        continue
                    distances[neighbor] = distances[node] + 1.0
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    # ------------------------------------------------------------------ queries

    def next_hop(self, destination: NodeId) -> Optional[NodeId]:
        entry = self._routes.get(destination)
        return entry.next_hop if entry else None

    def entry(self, destination: NodeId) -> Optional[RouteEntry]:
        return self._routes.get(destination)

    def destinations(self) -> list[NodeId]:
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
